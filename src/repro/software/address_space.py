"""Demand-paged address spaces over a physical frame pool.

The MPC620 provides "support for demand-paged virtual-memory address
translation"; this module is the software half: page tables mapping
virtual pages to physical frames with read/write/execute protection,
a shared physical allocator per node, and the fault types the MMU
delivers.  The user-level communication path (and its protection story)
is built on these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.memory.address import is_power_of_two


class Protection(enum.Flag):
    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXECUTE = enum.auto()
    RW = READ | WRITE


class TranslationFault(RuntimeError):
    """Access to an unmapped virtual page."""


class ProtectionFault(RuntimeError):
    """Access violating the page's protection bits."""


class OutOfMemory(RuntimeError):
    """The physical frame pool is exhausted."""


class PhysicalMemory:
    """One node's frame pool."""

    def __init__(self, total_bytes: int, page_bytes: int = 4096):
        if not is_power_of_two(page_bytes):
            raise ValueError(f"page size must be a power of two, got {page_bytes}")
        if total_bytes < page_bytes:
            raise ValueError("physical memory smaller than one page")
        self.page_bytes = page_bytes
        self.total_frames = total_bytes // page_bytes
        self._free: Set[int] = set(range(self.total_frames))
        self._owner: Dict[int, str] = {}

    @property
    def free_frames(self) -> int:
        return len(self._free)

    def allocate(self, owner: str) -> int:
        if not self._free:
            raise OutOfMemory("no free frames")
        frame = min(self._free)
        self._free.remove(frame)
        self._owner[frame] = owner
        return frame

    def release(self, frame: int) -> None:
        if frame in self._free:
            raise ValueError(f"frame {frame} already free")
        self._owner.pop(frame, None)
        self._free.add(frame)

    def owner_of(self, frame: int) -> Optional[str]:
        return self._owner.get(frame)


@dataclass(frozen=True)
class PageTableEntry:
    frame: int
    protection: Protection
    pinned: bool = False


class AddressSpace:
    """One user process's view of memory."""

    def __init__(self, name: str, physical: PhysicalMemory):
        self.name = name
        self.physical = physical
        self.page_bytes = physical.page_bytes
        self._pages: Dict[int, PageTableEntry] = {}
        self._page_shift = physical.page_bytes.bit_length() - 1

    # -- mapping ---------------------------------------------------------------

    def page_of(self, vaddr: int) -> int:
        return vaddr >> self._page_shift

    def map_range(self, vaddr: int, nbytes: int,
                  protection: Protection = Protection.RW) -> None:
        """Allocate frames and map ``nbytes`` starting at ``vaddr``."""
        if nbytes <= 0:
            raise ValueError("mapping size must be positive")
        first = self.page_of(vaddr)
        last = self.page_of(vaddr + nbytes - 1)
        for page in range(first, last + 1):
            if page in self._pages:
                raise ValueError(
                    f"{self.name}: page {page:#x} already mapped")
            frame = self.physical.allocate(owner=self.name)
            self._pages[page] = PageTableEntry(frame, protection)

    def unmap_range(self, vaddr: int, nbytes: int) -> None:
        first = self.page_of(vaddr)
        last = self.page_of(vaddr + nbytes - 1)
        for page in range(first, last + 1):
            entry = self._pages.get(page)
            if entry is None:
                raise TranslationFault(
                    f"{self.name}: unmapping unmapped page {page:#x}")
            if entry.pinned:
                raise ValueError(
                    f"{self.name}: cannot unmap pinned page {page:#x}")
        for page in range(first, last + 1):
            entry = self._pages.pop(page)
            self.physical.release(entry.frame)

    # -- translation -------------------------------------------------------------

    def translate(self, vaddr: int,
                  access: Protection = Protection.READ) -> int:
        """Virtual to physical; raises the MMU's faults."""
        entry = self._pages.get(self.page_of(vaddr))
        if entry is None:
            raise TranslationFault(
                f"{self.name}: no mapping for {vaddr:#x}")
        if access and not (entry.protection & access) == access:
            raise ProtectionFault(
                f"{self.name}: {access} on page with {entry.protection}")
        offset = vaddr & (self.page_bytes - 1)
        return entry.frame * self.page_bytes + offset

    def is_mapped(self, vaddr: int) -> bool:
        return self.page_of(vaddr) in self._pages

    def mapped_pages(self) -> Iterator[Tuple[int, PageTableEntry]]:
        return iter(sorted(self._pages.items()))

    # -- pinning (only the DMA path needs this) -----------------------------------

    def pin_range(self, vaddr: int, nbytes: int) -> int:
        """Pin pages for DMA; returns how many pages were newly pinned."""
        first = self.page_of(vaddr)
        last = self.page_of(vaddr + nbytes - 1)
        newly = 0
        for page in range(first, last + 1):
            entry = self._pages.get(page)
            if entry is None:
                raise TranslationFault(
                    f"{self.name}: pinning unmapped page {page:#x}")
            if not entry.pinned:
                self._pages[page] = PageTableEntry(entry.frame,
                                                   entry.protection,
                                                   pinned=True)
                newly += 1
        return newly

    def unpin_range(self, vaddr: int, nbytes: int) -> None:
        first = self.page_of(vaddr)
        last = self.page_of(vaddr + nbytes - 1)
        for page in range(first, last + 1):
            entry = self._pages.get(page)
            if entry is not None and entry.pinned:
                self._pages[page] = PageTableEntry(entry.frame,
                                                   entry.protection,
                                                   pinned=False)

    def pinned_pages(self) -> int:
        return sum(1 for _, e in self._pages.items() if e.pinned)
