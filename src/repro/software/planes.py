"""The dual-plane software split (paper Section 4).

"In a first implementation, one part of the duplicated network is used
exclusively for user-level communication, while the second part is
reserved for Linux."  :class:`SoftwareStack` owns both planes of a
PowerMANNA system: user messages go through plane 0 with no kernel
involvement, OS traffic (paging, daemons, control messages) stays on
plane 1.  The isolation property — kernel noise cannot perturb user
latency — is what the split buys, and the tests measure it directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.machine import PowerMannaSystem
from repro.msg.api import CommWorld
from repro.sim.process import Process


class PlaneAssignment(enum.Enum):
    USER = 0
    SYSTEM = 1


@dataclass
class OsTrafficPattern:
    """Background kernel traffic: periodic control messages."""

    message_bytes: int = 1024
    period_ns: float = 20_000.0
    pairs: int = 4


class SoftwareStack:
    """LinuxPPC-style plane ownership over a PowerMannaSystem."""

    def __init__(self, system: Optional[PowerMannaSystem] = None):
        self.system = system or PowerMannaSystem.cluster()
        if len(self.system.worlds) < 2:
            raise ValueError("the software split needs both network planes")
        self._os_noise_running = False

    @property
    def user_world(self) -> CommWorld:
        return self.system.world(PlaneAssignment.USER.value)

    @property
    def system_world(self) -> CommWorld:
        return self.system.world(PlaneAssignment.SYSTEM.value)

    def world_for(self, assignment: PlaneAssignment) -> CommWorld:
        return self.system.world(assignment.value)

    # -- OS background traffic ------------------------------------------------

    def start_os_noise(self, pattern: OsTrafficPattern = OsTrafficPattern(),
                       ) -> List[Process]:
        """Continuous kernel chatter on the system plane."""
        sim = self.system.sim
        world = self.system_world
        nodes = world.fabric.node_ids()
        processes = []

        def chatter(src: int, dst: int):
            while True:
                recv = world.recv(dst)
                yield world.send(src, dst, pattern.message_bytes)
                yield recv
                yield sim.timeout(pattern.period_ns)

        for index in range(pattern.pairs):
            src = nodes[(2 * index) % len(nodes)]
            dst = nodes[(2 * index + 1) % len(nodes)]
            processes.append(sim.process(chatter(src, dst)))
        self._os_noise_running = True
        return processes

    # -- measurements ----------------------------------------------------------

    def user_latency_ns(self, a: int = 0, b: int = 1, nbytes: int = 8,
                        reps: int = 4) -> float:
        """User-plane one-way latency — with or without OS noise running."""
        return self.user_world.one_way_latency_ns(a, b, nbytes, reps=reps)

    def isolation_experiment(self, nbytes: int = 8) -> tuple[float, float]:
        """(quiet, noisy) user latencies on two fresh systems.

        The duplicated network means the second number must equal the
        first: the OS cannot steal user-plane cycles.
        """
        quiet_stack = SoftwareStack()
        quiet = quiet_stack.user_latency_ns(nbytes=nbytes)

        noisy_stack = SoftwareStack()
        noisy_stack.start_os_noise()
        noisy = noisy_stack.user_latency_ns(nbytes=nbytes)
        return quiet, noisy
