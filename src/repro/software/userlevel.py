"""The two send paths, priced (paper Section 3.3).

**User-level PIO (PowerMANNA):** the sending CPU's MMU translates every
address inline — the cost is at most a TLB miss, never a system call.  Per
message: driver setup + per-page translation (TLB-hit nearly free).

**DMA NIC (Myrinet-style):** the NIC reads host memory by physical
address, so the pages must be *pinned* (one system call when not cached)
and the NIC's translation table must hold the page (table miss = another
system call to refill).  With heavy buffer reuse these amortise; with
fresh buffers every message pays them.

:func:`reuse_sweep` reproduces the qualitative result of the user-level
communication literature the paper cites (refs [9], [12]): the DMA path
approaches the PIO path only when buffers are reused many times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.software.address_space import AddressSpace, Protection


@dataclass(frozen=True)
class UserLevelPathConfig:
    """PowerMANNA's MMU-inline path."""

    driver_setup_ns: float = 1150.0     # the PIO driver's per-message cost
    tlb_hit_ns: float = 0.0             # translation rides the load/store
    tlb_miss_ns: float = 280.0          # hardware table walk
    tlb_hit_rate: float = 0.98


@dataclass(frozen=True)
class DmaPathConfig:
    """The pin-and-DMA path of a NIC behind an I/O bus."""

    driver_setup_ns: float = 1500.0     # descriptor build + doorbell
    pin_syscall_ns: float = 9000.0      # mmap/pin round trip into the kernel
    nic_table_refill_ns: float = 4000.0  # ioctl to install a translation
    nic_table_entries: int = 64         # NIC translation-table reach (pages)


@dataclass(frozen=True)
class SendPathCosts:
    """Per-message software cost of both paths at one reuse level."""

    reuse: int
    user_level_ns: float
    dma_ns: float

    @property
    def dma_penalty(self) -> float:
        if self.user_level_ns <= 0:
            return float("inf")
        return self.dma_ns / self.user_level_ns


def user_level_send_cost_ns(nbytes: int, space: AddressSpace,
                            vaddr: int,
                            config: UserLevelPathConfig = UserLevelPathConfig(),
                            ) -> float:
    """Software cost of one user-level send from ``vaddr``.

    Translation happens page by page as the CPU copies; protection is
    enforced by the very same translations (a fault aborts the send).
    """
    pages = range(space.page_of(vaddr),
                  space.page_of(vaddr + max(1, nbytes) - 1) + 1)
    cost = config.driver_setup_ns
    for page in pages:
        space.translate(page * space.page_bytes, Protection.READ)
        expected_tlb = (config.tlb_hit_rate * config.tlb_hit_ns
                        + (1.0 - config.tlb_hit_rate) * config.tlb_miss_ns)
        cost += expected_tlb
    return cost


class NicTranslationTable:
    """The DMA NIC's little LRU page table."""

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError("NIC table needs at least one entry")
        self.entries = entries
        self._table: Dict[Tuple[str, int], None] = {}
        self.refills = 0

    def lookup(self, space: str, page: int) -> bool:
        key = (space, page)
        if key in self._table:
            del self._table[key]
            self._table[key] = None
            return True
        if len(self._table) >= self.entries:
            oldest = next(iter(self._table))
            del self._table[oldest]
        self._table[key] = None
        self.refills += 1
        return False


def dma_send_cost_ns(nbytes: int, space: AddressSpace, vaddr: int,
                     nic_table: NicTranslationTable,
                     config: DmaPathConfig = DmaPathConfig()) -> float:
    """Software cost of one DMA-path send from ``vaddr``.

    Pinning is a syscall per not-yet-pinned page range; NIC-table misses
    each cost a kernel refill.
    """
    cost = config.driver_setup_ns
    newly_pinned = space.pin_range(vaddr, max(1, nbytes))
    if newly_pinned:
        cost += config.pin_syscall_ns
    pages = range(space.page_of(vaddr),
                  space.page_of(vaddr + max(1, nbytes) - 1) + 1)
    for page in pages:
        if not nic_table.lookup(space.name, page):
            cost += config.nic_table_refill_ns
    return cost


def reuse_sweep(nbytes: int = 4096,
                reuse_levels: Tuple[int, ...] = (1, 2, 4, 16, 64),
                distinct_buffers: int = 128,
                user_config: UserLevelPathConfig = UserLevelPathConfig(),
                dma_config: DmaPathConfig = DmaPathConfig(),
                ) -> List[SendPathCosts]:
    """Average per-message cost of both paths versus buffer reuse.

    ``reuse`` = how many messages each buffer sends before the application
    moves to the next buffer (rotating over ``distinct_buffers`` so the
    NIC table experiences realistic pressure).
    """
    from repro.software.address_space import PhysicalMemory

    results = []
    for reuse in reuse_levels:
        physical = PhysicalMemory(64 * 1024 * 1024)
        space = AddressSpace("app", physical)
        buffers = []
        for index in range(distinct_buffers):
            vaddr = 0x1000_0000 + index * 2 * nbytes
            space.map_range(vaddr, nbytes)
            buffers.append(vaddr)

        nic_table = NicTranslationTable(dma_config.nic_table_entries)
        messages = distinct_buffers * reuse
        user_total = dma_total = 0.0
        for message in range(messages):
            vaddr = buffers[(message // reuse) % distinct_buffers]
            user_total += user_level_send_cost_ns(nbytes, space, vaddr,
                                                  user_config)
            dma_total += dma_send_cost_ns(nbytes, space, vaddr, nic_table,
                                          dma_config)
        results.append(SendPathCosts(reuse=reuse,
                                     user_level_ns=user_total / messages,
                                     dma_ns=dma_total / messages))
    return results
