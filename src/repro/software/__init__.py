"""PowerMANNA system software (paper Section 4 and the Section 3.3
user-level-communication argument).

The node runs LinuxPPC; user-level MPI drives one network plane while the
OS keeps the other.  The paper's case for the CPU-driven network interface
rests on the MMU: because the CPU (and therefore its MMU) performs every
copy, user-level communication needs *no* system calls — no
logical-to-physical translation calls, no page pinning — and protection
falls out of ordinary address-space isolation.  A DMA NIC, by contrast,
needs pages pinned and its own translation table.

This package implements both worlds so the argument is executable:

* :mod:`repro.software.address_space` — page tables, frame allocation,
  protection bits, translation faults;
* :mod:`repro.software.userlevel` — the cost model of the two send paths
  (MMU-inline vs pin-and-DMA) and the buffer-reuse experiment;
* :mod:`repro.software.planes` — the dual-plane OS/user split and its
  isolation property.
"""

from repro.software.address_space import (
    AddressSpace,
    PhysicalMemory,
    Protection,
    ProtectionFault,
    TranslationFault,
)
from repro.software.userlevel import (
    DmaPathConfig,
    SendPathCosts,
    UserLevelPathConfig,
    dma_send_cost_ns,
    reuse_sweep,
    user_level_send_cost_ns,
)
from repro.software.planes import PlaneAssignment, SoftwareStack

__all__ = [
    "AddressSpace",
    "DmaPathConfig",
    "PhysicalMemory",
    "PlaneAssignment",
    "Protection",
    "ProtectionFault",
    "SendPathCosts",
    "SoftwareStack",
    "TranslationFault",
    "UserLevelPathConfig",
    "dma_send_cost_ns",
    "reuse_sweep",
    "user_level_send_cost_ns",
]
