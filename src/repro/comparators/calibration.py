"""Calibration anchors for the comparator models.

Every number here is traceable: either quoted in the PowerMANNA paper
itself (Section 5.2) or taken from the user-level-communication literature
it cites — Bhoedjang/Ruhl/Bal, "User-Level Network Interface Protocols",
IEEE Computer 31(11), 1998 (ref [9]) and Araki et al., "User-Space
Communication: A Quantitative Study", SC'98 (ref [12]).  The DMA-NIC model
parameters in :mod:`repro.comparators.models` are chosen so the model
reproduces these anchors; the tests assert that it does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CalibrationPoint:
    """One published measurement the model must reproduce.

    Attributes:
        metric: "latency_us", "gap_us" or "bandwidth_mb_s".
        nbytes: message size of the measurement.
        value: the published value.
        tolerance: acceptable relative error of the model at this anchor.
        source: citation string.
    """

    metric: str
    nbytes: int
    value: float
    tolerance: float
    source: str


_PAPER = "Behr/Pletner/Sodan, HPCA 2000, Section 5.2"
_REF9 = "Bhoedjang/Ruhl/Bal, IEEE Computer 31(11), 1998 (paper ref [9])"
_REF12 = "Araki et al., SC'98 (paper ref [12])"

BIP_CALIBRATION: Tuple[CalibrationPoint, ...] = (
    CalibrationPoint("latency_us", 8, 6.4, 0.10, _PAPER),
    CalibrationPoint("bandwidth_mb_s", 65536, 126.0, 0.10, _REF9),
    CalibrationPoint("latency_us", 4096, 41.0, 0.30, _REF9),
)

FM_CALIBRATION: Tuple[CalibrationPoint, ...] = (
    CalibrationPoint("latency_us", 8, 9.2, 0.10, _PAPER),
    CalibrationPoint("bandwidth_mb_s", 65536, 70.0, 0.15, _REF12),
)

GM_CALIBRATION: Tuple[CalibrationPoint, ...] = (
    CalibrationPoint("latency_us", 8, 13.0, 0.20, _REF9),
    CalibrationPoint("bandwidth_mb_s", 65536, 100.0, 0.15, _REF9),
)

POWERMANNA_ANCHORS: Tuple[CalibrationPoint, ...] = (
    # The machine's own published behaviour, used to sanity-check the
    # full-fidelity simulation rather than a parametric model.
    CalibrationPoint("latency_us", 8, 2.75, 0.15, _PAPER),
    CalibrationPoint("bandwidth_mb_s", 65536, 60.0, 0.10,
                     _PAPER + " (single-link 60 Mbyte/s ceiling)"),
)


@dataclass(frozen=True)
class EquivalenceBand:
    """How closely the flow fidelity tier must track the flit tier.

    ``rel_tol`` is the maximum relative error allowed for ``metric`` at
    any message size in any small-machine topology of the equivalence
    suite (``tests/network/test_topo_flow.py``).  The bands were set
    from the measured worst case across the six generator families at
    sizes 8..16384 bytes (5.7% latency, 2.6% gap, 6.5% unidirectional,
    11.1% bidirectional) with ~2x headroom, so a model regression trips
    them long before the flow tier drifts into a different regime.
    """

    metric: str
    rel_tol: float


FLOW_EQUIVALENCE: Tuple[EquivalenceBand, ...] = (
    EquivalenceBand("one_way_latency_ns", 0.10),
    EquivalenceBand("send_gap_ns", 0.08),
    EquivalenceBand("unidirectional_mb_s", 0.12),
    EquivalenceBand("bidirectional_mb_s", 0.18),
)
