"""Parametric models of BIP, FM and GM on Myrinet.

Each factory returns a :class:`~repro.ni.dma.DmaNicModel` whose constants
are fitted to the calibration anchors in
:mod:`repro.comparators.calibration`; ``tests/comparators`` assert the fit.
BIP is the raw-hardware path (zero copy, minimal protocol); FM adds
software flow control (a per-byte host copy); GM is the stock
driver-based stack the paper found "too slow for a fair comparison".
"""

from __future__ import annotations

from typing import Dict

from repro.ni.dma import DmaNicModel


def bip_model() -> DmaNicModel:
    """BIP (Basic Interface for Parallelism) on Myrinet/Pentium Pro 200."""
    return DmaNicModel(
        name="BIP/Myrinet",
        host_overhead_send_ns=2300.0,   # descriptor build + doorbell
        host_overhead_recv_ns=1300.0,
        dma_setup_ns=1200.0,
        pci_mb_s=132.0,          # 32-bit/33 MHz PCI ceiling
        link_mb_s=126.0,         # what BIP extracts from the 1.28 Gb/s link
        wire_ns=900.0,
        pipelined=True,
        per_byte_software_ns=0.0,  # zero-copy user-level path
    )


def fm_model() -> DmaNicModel:
    """FM (Fast Messages): adds software flow control and a receive copy."""
    return DmaNicModel(
        name="FM/Myrinet",
        host_overhead_send_ns=2600.0,
        host_overhead_recv_ns=2600.0,
        dma_setup_ns=1400.0,
        pci_mb_s=132.0,
        link_mb_s=132.0,
        wire_ns=900.0,
        pipelined=True,
        per_byte_software_ns=14.2,  # the flow-control copy: ~70 Mbyte/s host path
    )


def gm_model() -> DmaNicModel:
    """GM, the stock Myrinet driver stack under Linux 2.2."""
    return DmaNicModel(
        name="GM/Myrinet",
        host_overhead_send_ns=3500.0,
        host_overhead_recv_ns=3500.0,
        dma_setup_ns=2000.0,
        pci_mb_s=132.0,
        link_mb_s=100.0,
        wire_ns=900.0,
        pipelined=True,
        per_byte_software_ns=0.0,
    )


_FACTORIES = {
    "bip": bip_model,
    "fm": fm_model,
    "gm": gm_model,
}


def comparator(name: str) -> DmaNicModel:
    """Look up a comparator model by short name ('bip', 'fm', 'gm')."""
    try:
        return _FACTORIES[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown comparator {name!r}; available: {sorted(_FACTORIES)}"
        ) from None


def all_comparators() -> Dict[str, DmaNicModel]:
    return {name: factory() for name, factory in _FACTORIES.items()}
