"""Comparator communication systems: BIP, FM and GM on Myrinet.

The paper compares PowerMANNA's measured communication performance against
BIP and FM numbers *quoted from the literature* (ref [9], measured on a
Pentium Pro 200 cluster with Myrinet) because its own Linux 2.2 GM stack
"was too slow for a fair comparison".  The reproduction does the same:
these are parametric :class:`~repro.ni.dma.DmaNicModel` instances whose
calibration constants live in :mod:`repro.comparators.calibration` with
their provenance.
"""

from repro.comparators.calibration import (
    BIP_CALIBRATION,
    FM_CALIBRATION,
    GM_CALIBRATION,
    CalibrationPoint,
)
from repro.comparators.models import bip_model, comparator, fm_model, gm_model

__all__ = [
    "BIP_CALIBRATION",
    "CalibrationPoint",
    "FM_CALIBRATION",
    "GM_CALIBRATION",
    "bip_model",
    "comparator",
    "fm_model",
    "gm_model",
]
