"""Shared simulation resources: FIFO stores, mutex-style resources, signals.

These are the building blocks for every hardware queue in the library: link
FIFOs, crossbar input buffers, the dispatcher's transaction queues and the
network-interface send/receive FIFOs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, SimulationError, Simulator, _heappush


class FifoStore:
    """A bounded FIFO of items with blocking put/get.

    ``capacity`` is measured in *items*; hardware models choose the item
    granularity (bytes, flits, 64-bit words, cache lines).  ``put`` blocks
    while full, ``get`` blocks while empty — this is exactly the soft flow
    control ("stop" signal) of the PowerMANNA link protocol when the FIFO
    models a receive buffer.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 name: str = "fifo"):
        if capacity <= 0:
            raise SimulationError(f"FIFO capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._put_name = name + ".put"
        self._get_name = name + ".get"
        self.items: Deque[Any] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._getters: Deque[Event] = deque()
        self.total_put = 0
        self.total_got = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self.items

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` has been enqueued."""
        return self._put(Event(self.sim, self._put_name), item)

    def put_pooled(self, item: Any) -> Event:
        """Like :meth:`put` with a recycled event — only for call sites
        that ``yield`` the event immediately (see
        :meth:`~repro.sim.engine.Simulator.pooled_event`)."""
        return self._put(self.sim.pooled_event(self._put_name), item)

    def _put(self, event: Event, item: Any) -> Event:
        items = self.items
        if not self._putters and len(items) < self.capacity:
            # Accepted immediately — same trigger order as _settle (put
            # event first, then the getter it satisfies, if any).
            items.append(item)
            self.total_put += 1
            if len(items) > self.high_water:
                self.high_water = len(items)
            # Inline event.trigger(item): the event is fresh, so the
            # double-trigger check cannot fire.
            event._triggered = True
            event._value = item
            sim = self.sim
            _heappush(sim._queue, (sim._now, next(sim._tiebreak), event))
            getters = self._getters
            if getters:
                gev = getters.popleft()
                got = items.popleft()
                self.total_got += 1
                gev.trigger(got)
                if getters and items:
                    self._settle()
            return event
        # Queued behind other putters, or the store is full.  No match is
        # possible (the head putter is still blocked, and a waiting getter
        # implies the store is empty), so skip the settle loop.
        self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        return self._get(Event(self.sim, self._get_name))

    def get_pooled(self) -> Event:
        """Like :meth:`get` with a recycled event — only for call sites
        that ``yield`` the event immediately."""
        return self._get(self.sim.pooled_event(self._get_name))

    def _get(self, event: Event) -> Event:
        items = self.items
        if items and not self._getters:
            got = items.popleft()
            self.total_got += 1
            event._triggered = True
            event._value = got
            sim = self.sim
            _heappush(sim._queue, (sim._now, next(sim._tiebreak), event))
            if self._putters:
                self._settle()
            return event
        self._getters.append(event)
        if items:
            self._settle()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when full."""
        if self.is_full:
            return False
        self.items.append(item)
        self.total_put += 1
        self.high_water = max(self.high_water, len(self.items))
        self._settle()
        return True

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self.is_empty:
            return False, None
        item = self.items.popleft()
        self.total_got += 1
        self._settle()
        return True, item

    def peek(self) -> Any:
        if self.is_empty:
            raise SimulationError(f"peek on empty FIFO {self.name!r}")
        return self.items[0]

    def _settle(self) -> None:
        """Match putters to free slots and getters to items."""
        items = self.items
        putters = self._putters
        getters = self._getters
        capacity = self.capacity
        progressed = True
        while progressed:
            progressed = False
            if putters and len(items) < capacity:
                event, item = putters.popleft()
                items.append(item)
                self.total_put += 1
                if len(items) > self.high_water:
                    self.high_water = len(items)
                event.trigger(item)
                progressed = True
            if getters and items:
                event = getters.popleft()
                item = items.popleft()
                self.total_got += 1
                event.trigger(item)
                progressed = True


class Resource:
    """A mutex/semaphore with FIFO queueing and occupancy statistics.

    Used to model arbitrated shared hardware: the snoop/address phase of the
    node bus, crossbar output ports, the memory controller's banks.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._acquire_name = name + ".acquire"
        self.in_use = 0
        self._waiters: Deque[tuple[Event, float]] = deque()
        # Statistics for contention analysis.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.busy_time = 0.0
        self._last_change = 0.0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event firing once a slot is held.

        The event's value is the wait time spent queued.
        """
        event = Event(self.sim, self._acquire_name)
        if self.in_use < self.capacity:
            self._grant(event, self.sim.now)
        else:
            self._waiters.append((event, self.sim.now))
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._account()
        self.in_use -= 1
        if self._waiters:
            event, requested_at = self._waiters.popleft()
            self._grant(event, requested_at)

    def _grant(self, event: Event, requested_at: float) -> None:
        self._account()
        self.in_use += 1
        self.total_acquisitions += 1
        waited = self.sim.now - requested_at
        self.total_wait_time += waited
        event.trigger(waited)

    def _account(self, now: Optional[float] = None) -> None:
        now = self.sim.now if now is None else now
        self.busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def sync(self, now: Optional[float] = None) -> None:
        """Fold occupancy forward so the raw ``busy_time`` attribute is
        current.

        ``busy_time`` is otherwise only accounted on state changes
        (acquire/release), so reading it at end of run while a slot is
        still held reports a stale value — :meth:`utilization` corrects
        for that in its own arithmetic, but any consumer of the raw
        counter must call this first.
        """
        self._account(now)

    def utilization(self, now: Optional[float] = None) -> float:
        """Time-averaged fraction of capacity in use."""
        now = self.sim.now if now is None else now
        if now <= 0:
            return 0.0
        busy = self.busy_time + self.in_use * (now - self._last_change)
        return busy / (now * self.capacity)

    def wait_pressure(self, now: Optional[float] = None) -> float:
        """Granted wait time plus the wait accrued by still-queued
        requests — a live congestion signal that grows while waiters sit
        in the queue, not only when they are finally granted."""
        now = self.sim.now if now is None else now
        queued = sum(now - requested_at for _, requested_at in self._waiters)
        return self.total_wait_time + queued


class Signal:
    """A level-style condition that processes can wait on.

    Unlike :class:`~repro.sim.engine.Event`, a Signal can fire repeatedly;
    each ``wait()`` returns a fresh one-shot event for the *next* firing.
    Models the "stop" wire of the link protocol and doorbell-style
    notifications.
    """

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._wait_name = name + ".wait"
        self._waiters: list[Event] = []
        self.fire_count = 0

    def wait(self) -> Event:
        event = Event(self.sim, self._wait_name)
        self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; return how many were woken."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.trigger(value)
        self.fire_count += 1
        return len(waiters)
