"""Structured event tracing.

A :class:`Tracer` records (time, component, event, payload) tuples so that
tests can assert on the *order* of hardware events (e.g. route command
consumed before payload flits forwarded) and examples can print readable
timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    time: float
    component: str
    event: str
    payload: Any = None

    def __str__(self) -> str:
        suffix = f" {self.payload!r}" if self.payload is not None else ""
        return f"[{self.time:12.2f} ns] {self.component}: {self.event}{suffix}"


class Tracer:
    """Collects trace records; disabled tracers cost one predicate call."""

    def __init__(self, enabled: bool = True, limit: int = 1_000_000):
        self.enabled = enabled
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self.dropped_by_event: Dict[str, int] = {}

    def record(self, time: float, component: str, event: str,
               payload: Any = None) -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.limit:
            self.dropped += 1
            self.dropped_by_event[event] = \
                self.dropped_by_event.get(event, 0) + 1
            return
        self.records.append(TraceRecord(time, component, event, payload))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(self, component: Optional[str] = None,
               event: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None,
               ) -> List[TraceRecord]:
        out = []
        for rec in self.records:
            if component is not None and rec.component != component:
                continue
            if event is not None and rec.event != event:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, event: str) -> Optional[TraceRecord]:
        for rec in self.records:
            if rec.event == event:
                return rec
        return None

    def counts_by_event(self, include_dropped: bool = True) -> Dict[str, int]:
        """Occurrences per event name.

        Records dropped past ``limit`` are counted too (their event name is
        known at drop time), so totals stay accurate on saturated tracers;
        pass ``include_dropped=False`` for stored-records-only counts.
        """
        counts: Dict[str, int] = {}
        for rec in self.records:
            counts[rec.event] = counts.get(rec.event, 0) + 1
        if include_dropped:
            for event, dropped in self.dropped_by_event.items():
                counts[event] = counts.get(event, 0) + dropped
        return counts

    def dump(self, limit: int = 100, tail: int = 0) -> str:
        """Readable timeline: first ``limit`` records, optionally the last
        ``tail`` records, and a drop summary when the tracer saturated."""
        shown = self.records[:limit]
        lines = [str(rec) for rec in shown]
        remaining = self.records[limit:]
        if tail > 0 and remaining:
            tail_records = remaining[-tail:]
            skipped = len(remaining) - len(tail_records)
            if skipped:
                lines.append(f"... {skipped} more records")
            lines.extend(str(rec) for rec in tail_records)
        elif remaining:
            lines.append(f"... {len(remaining)} more records")
        if self.dropped:
            lines.append(
                f"[{self.dropped} records dropped after limit {self.limit}]")
        return "\n".join(lines)


NULL_TRACER = Tracer(enabled=False)
