"""Generator-based simulation processes.

A process wraps a Python generator.  Each value the generator yields must be
an :class:`~repro.sim.engine.Event`; the process suspends until the event
fires and is resumed with the event's value::

    def producer(sim, fifo):
        while True:
            yield sim.timeout(10.0)
            yield fifo.put("item")

    sim.process(producer(sim, fifo))

A process is itself an event that fires (with the generator's return value)
when the generator finishes, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Event, SimulationError, Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator, resumable by the events it yields."""

    __slots__ = ("_generator", "_send", "_waiting_on")

    def __init__(self, sim: Simulator, generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?")
        super().__init__(sim, name=getattr(generator, "__name__", "process"))
        self._generator = generator
        self._send = generator.send
        self._waiting_on: Event | None = None
        # Bootstrap: resume once at the current time.
        start = Event(sim, "start")
        start.callbacks.append(self._resume)
        start.trigger()

    @property
    def finished(self) -> bool:
        return self.triggered

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.finished:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waited = self._waiting_on
        if waited is not None and not waited.processed:
            # Detach from the event we were waiting on.
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        poke = Event(self.sim, f"interrupt:{self.name}")
        poke.callbacks.append(lambda _e: self._step(Interrupt(cause), throw=True))
        poke.trigger()

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        # The per-event hot path: _step with the throw branch and the extra
        # call frame peeled off.
        self._waiting_on = None
        try:
            target = self._send(event._value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        try:
            processed = target._processed
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Events") from None
        if processed:
            # Already fired: resume immediately (but via the queue, to keep
            # deterministic ordering).
            poke = Event(self.sim, "immediate")
            poke.callbacks.append(lambda _e: self._step(target._value))
            poke.trigger()
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def _step(self, value: Any, throw: bool = False) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        try:
            processed = target._processed
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Events") from None
        if processed:
            # Already fired: resume immediately (but via the queue, to keep
            # deterministic ordering).
            poke = Event(self.sim, "immediate")
            poke.callbacks.append(lambda _e: self._step(target._value))
            poke.trigger()
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)
