"""Event queue and simulator core.

Time is a float measured in **nanoseconds**.  All hardware models in the
library convert cycles to nanoseconds through :class:`repro.sim.clock.Clock`
so that components in different clock domains (180 MHz CPUs, 60 MHz links)
compose on one timeline.

The event loop is the hot path of every network figure, so the kernel
keeps allocation off the per-event path where it can: the run loops pop
the heap inline, events with a single waiter (the dominant case — one
process blocked on one FIFO slot or timeout) dispatch without building a
fresh callback list, and the link/crossbar/driver processes draw their
delays from a :meth:`Simulator.pooled_timeout` free list instead of
allocating a new :class:`Timeout` per flit.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Iterable, Optional

_heappush = heapq.heappush


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double triggers, negative delays)."""


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, is *triggered* with an optional value, and
    once processed invokes its callbacks.  Processes waiting on an event are
    resumed with the event's value.
    """

    # ``delay`` lives here (not on Timeout) so the recycled-object pool can
    # hand the same instance back as either a pooled event or a pooled
    # timeout; see :meth:`Simulator.pooled_event`.
    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_processed",
                 "_pooled", "name", "delay")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._processed = False
        self._pooled = False
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Schedule this event to fire now (at the current simulation time)."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        sim = self.sim
        _heappush(sim._queue, (sim._now, next(sim._tiebreak), self))
        return self

    def succeed(self, value: Any = None) -> "Event":
        """Alias of :meth:`trigger`, for simpy familiarity."""
        return self.trigger(value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._triggered = True
        self._value = value
        _heappush(sim._queue, (sim._now + delay, next(sim._tiebreak), self))


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a dict mapping the fired event(s) to their values at the
    moment the first fires.  On firing, the combinator deregisters its
    callback from the events that have *not* fired, so waiting repeatedly
    alongside a long-lived event (e.g. a persistent link-down event polled
    in a loop) does not accumulate dead callbacks on it.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf of no events")
        for event in self.events:
            if event.processed:
                self._collect(event)
                break
            event.callbacks.append(self._collect)

    def _collect(self, _event: Event) -> None:
        if self._triggered:
            return
        fired = {e: e.value for e in self.events if e.processed}
        self.trigger(fired)
        collect = self._collect
        for event in self.events:
            if not event.processed and event.callbacks:
                try:
                    event.callbacks.remove(collect)
                except ValueError:
                    pass


class AllOf(Event):
    """Fires when every one of several events has fired."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if not event.processed:
                self._remaining += 1
                event.callbacks.append(self._collect)
        if self._remaining == 0:
            self.trigger({e: e.value for e in self.events})

    def _collect(self, _event: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self._triggered:
            self.trigger({e: e.value for e in self.events})
            collect = self._collect
            for event in self.events:
                if not event.processed and event.callbacks:
                    try:
                        event.callbacks.remove(collect)
                    except ValueError:
                        pass


class Simulator:
    """The event loop: a priority queue of (time, tiebreak, event)."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._tiebreak = itertools.count()
        self._running = False
        self._timeout_pool: list[Timeout] = []
        self.events_processed = 0
        # Periodic telemetry sampling (repro.obs.timeline).  With no
        # sampler attached ``_sample_due`` stays at +inf, so the run
        # loops pay one float compare per event and nothing else.  The
        # import is function-level: repro.obs pulls in sim.stats, which
        # triggers this module via sim/__init__.
        self._sampler = None
        self._sample_due = math.inf
        from repro.obs import OBS

        if OBS.enabled:
            OBS.timeline.attach(self)

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- event factories -------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value=value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A :class:`Timeout` drawn from a free list.

        Once processed, the timeout is recycled for a later call, so hot
        process loops (link pumps, drivers, the crossbar) do not allocate
        a fresh object per flit.  Callers must drop their reference after
        the timeout fires — i.e. use it only as ``yield
        sim.pooled_timeout(...)`` — because the object is reused; code
        that stores a timeout and inspects it later (``timer in fired``)
        must use :meth:`timeout`.
        """
        pool = self._timeout_pool
        if not pool:
            timeout = Timeout(self, delay, value=value)
            timeout._pooled = True
            return timeout
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        timeout = pool.pop()
        timeout._triggered = True
        timeout._processed = False
        timeout._value = value
        timeout.delay = delay
        if timeout.callbacks:
            timeout.callbacks.clear()
        _heappush(self._queue,
                  (self._now + delay, next(self._tiebreak), timeout))
        return timeout

    def pooled_event(self, name: str = "") -> Event:
        """An :class:`Event` drawn from the same free list.

        The same caveat as :meth:`pooled_timeout` applies: use only at
        call sites that ``yield`` the event immediately and never touch it
        again afterwards (FIFO put/get in the link, NI and crossbar pumps).
        Code that stores the event — combinators, ``cancel_get`` watchdog
        patterns, tests reading ``.value`` after the run — must use
        :meth:`event`.
        """
        pool = self._timeout_pool
        if not pool:
            event = Event(self, name)
            event._pooled = True
            return event
        event = pool.pop()
        event._triggered = False
        event._processed = False
        event._value = None
        event.name = name
        if event.callbacks:
            event.callbacks.clear()
        return event

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator) -> "Process":
        """Start a new process from a generator; see :mod:`repro.sim.process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._tiebreak), event))

    def step(self) -> float:
        """Process one event; return its timestamp."""
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("time ran backwards")
        self._now = when
        if when >= self._sample_due:
            self._sample_due = self._sampler.tick(self._sample_due, when)
        event._processed = True
        callbacks = event.callbacks
        if len(callbacks) == 1:
            callback = callbacks[0]
            callbacks.clear()
            callback(event)
        else:
            event.callbacks = []
            for callback in callbacks:
                callback(event)
        if event._pooled:
            self._timeout_pool.append(event)
        self.events_processed += 1
        return when

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or simulated time exceeds ``until``.

        Returns the final simulation time.  ``max_events`` is a runaway
        backstop: the loop processes at most ``max_events`` events and
        raises :class:`SimulationError` the moment more work would exceed
        that budget.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        events = 0
        queue = self._queue
        pool = self._timeout_pool
        heappop = heapq.heappop
        try:
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                if events >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?")
                _, _, event = heappop(queue)
                if when < self._now:
                    raise SimulationError("time ran backwards")
                self._now = when
                if when >= self._sample_due:
                    self._sample_due = self._sampler.tick(
                        self._sample_due, when)
                event._processed = True
                callbacks = event.callbacks
                if len(callbacks) == 1:
                    callback = callbacks[0]
                    callbacks.clear()
                    callback(event)
                else:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                if event._pooled:
                    pool.append(event)
                events += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
            self.events_processed += events
        return self._now

    def run_until_complete(self, process: "Process",
                           max_events: int = 50_000_000) -> Any:
        """Run until ``process`` terminates and return its value.

        Unlike :meth:`run`, this stops as soon as the process finishes, so
        it works in the presence of perpetual background processes (OS
        noise, daemons) that would keep the event queue busy forever.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        events = 0
        queue = self._queue
        pool = self._timeout_pool
        heappop = heapq.heappop
        try:
            while queue and not process._triggered:
                if events >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?")
                when, _, event = heappop(queue)
                if when < self._now:
                    raise SimulationError("time ran backwards")
                self._now = when
                if when >= self._sample_due:
                    self._sample_due = self._sampler.tick(
                        self._sample_due, when)
                event._processed = True
                callbacks = event.callbacks
                if len(callbacks) == 1:
                    callback = callbacks[0]
                    callbacks.clear()
                    callback(event)
                else:
                    event.callbacks = []
                    for callback in callbacks:
                        callback(event)
                if event._pooled:
                    pool.append(event)
                events += 1
        finally:
            self._running = False
            self.events_processed += events
        if not process.finished:
            raise SimulationError(
                f"event queue drained but process {process!r} never finished "
                "(deadlock: it is waiting on an event nobody will trigger)")
        return process.value

    def pending_events(self) -> int:
        return len(self._queue)
