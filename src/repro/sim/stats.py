"""Statistics collection for simulation components.

Counters, histograms and time series used by caches (hit/miss counts), the
network (latency distributions) and the benchmark harness (QUIPS curves,
bandwidth sweeps).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Counter:
    """A named bundle of integer counters with arithmetic helpers."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def keys(self) -> Iterable[str]:
        return self._counts.keys()

    def total(self) -> int:
        return sum(self._counts.values())

    def ratio(self, numerator: str, denominator_keys: Iterable[str]) -> float:
        """Fraction ``numerator / sum(denominators)``, 0.0 when empty."""
        denom = sum(self[k] for k in denominator_keys)
        if denom == 0:
            return 0.0
        return self[numerator] / denom

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name} {self._counts}>"


class Histogram:
    """A streaming histogram with exact quantiles (keeps all samples).

    Simulation runs in this library produce at most a few hundred thousand
    samples per histogram, so exact storage is fine and keeps the quantile
    semantics simple.
    """

    def __init__(self, name: str = "histogram"):
        self.name = name
        self._samples: List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def stddev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples) / (n - 1))

    def quantile(self, q: float) -> float:
        """Exact q-quantile by nearest-rank; q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        rank = min(len(self._samples) - 1, max(0, math.ceil(q * len(self._samples)) - 1))
        return self._samples[rank]

    def buckets(self, edges: List[float]) -> List[int]:
        """Counts per bucket for sorted ``edges`` (n+1 buckets)."""
        self._ensure_sorted()
        counts = [0] * (len(edges) + 1)
        for x in self._samples:
            counts[bisect_right(edges, x)] += 1
        return counts


@dataclass
class TimeSeries:
    """Ordered (time, value) samples with integration helpers.

    Used to build the HINT QUIPS-versus-time curve and bandwidth sweeps.
    """

    name: str = "series"
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"time series {self.name!r} requires nondecreasing time; "
                f"got {time} after {self.points[-1][0]}")
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def last(self) -> Tuple[float, float]:
        if not self.points:
            raise ValueError(f"time series {self.name!r} is empty")
        return self.points[-1]

    def value_at(self, time: float) -> float:
        """Step-interpolated value at ``time`` (value of last sample <= t)."""
        if not self.points:
            raise ValueError(f"time series {self.name!r} is empty")
        result = self.points[0][1]
        for t, v in self.points:
            if t > time:
                break
            result = v
        return result

    def integrate(self) -> float:
        """Trapezoidal integral of value over time."""
        total = 0.0
        for (t0, v0), (t1, v1) in zip(self.points, self.points[1:]):
            total += 0.5 * (v0 + v1) * (t1 - t0)
        return total

    def peak(self) -> Tuple[float, float]:
        """(time, value) of the maximum value."""
        if not self.points:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(self.points, key=lambda p: p[1])
