"""Statistics collection for simulation components.

Counters, histograms and time series used by caches (hit/miss counts), the
network (latency distributions) and the benchmark harness (QUIPS curves,
bandwidth sweeps).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class Counter:
    """A named bundle of integer counters with arithmetic helpers."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def keys(self) -> Iterable[str]:
        return self._counts.keys()

    def total(self) -> int:
        return sum(self._counts.values())

    def ratio(self, numerator: str, denominator_keys: Iterable[str]) -> float:
        """Fraction ``numerator / sum(denominators)``, 0.0 when empty."""
        denom = sum(self[k] for k in denominator_keys)
        if denom == 0:
            return 0.0
        return self[numerator] / denom

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name} {self._counts}>"


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    O(1) per sample and O(1) memory (five markers): the incremental fast
    path behind :meth:`Histogram.p50`/:meth:`Histogram.p99`, which would
    otherwise re-sort the sample list on every ``add``/``quantile``
    interleave.  Exact below five samples, a tight estimate beyond.
    """

    __slots__ = ("q", "_initial", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"P2 quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        if not self._heights:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._heights = sorted(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                q = self.q
                self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                                 3.0 + 2.0 * q, 5.0]
            return
        h, n = self._heights, self._positions
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x >= h[i]:
                    k = i
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in range(1, 4):
            d = self._desired[i] - n[i]
            if ((d >= 1.0 and n[i + 1] - n[i] > 1.0)
                    or (d <= -1.0 and n[i - 1] - n[i] < -1.0)):
                d = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, d)
                h[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        if not self._heights:
            if not self._initial:
                return 0.0
            ordered = sorted(self._initial)
            rank = min(len(ordered) - 1,
                       max(0, math.ceil(self.q * len(ordered)) - 1))
            return ordered[rank]
        return self._heights[2]


class Histogram:
    """A streaming histogram with exact quantiles (keeps all samples).

    Simulation runs in this library produce at most a few hundred thousand
    samples per histogram, so exact storage is fine and keeps the quantile
    semantics simple.  For the interleaved add/read pattern of live
    observability exporters — where exact :meth:`quantile` would re-sort
    per read — :meth:`p50`/:meth:`p99` are maintained incrementally by P²
    estimators, and :meth:`summary` packages the O(1) statistics.
    """

    # Below this size exact quantiles are cheaper than estimator error.
    P2_EXACT_LIMIT = 512

    def __init__(self, name: str = "histogram"):
        self.name = name
        self._samples: List[float] = []
        self._sorted = True
        self._sum = 0.0
        self._min: float = math.inf
        self._max: float = -math.inf
        self._p2_p50 = P2Quantile(0.5)
        self._p2_p99 = P2Quantile(0.99)
        self._p2_p999 = P2Quantile(0.999)

    def add(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._p2_p50.add(value)
        self._p2_p99.add(value)
        self._p2_p999.add(value)

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[float]:
        """A copy of the raw samples (the merge/serialisation surface)."""
        return list(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)

    def minimum(self) -> float:
        return self._min if self._samples else 0.0

    def maximum(self) -> float:
        return self._max if self._samples else 0.0

    def stddev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples) / (n - 1))

    def quantile(self, q: float) -> float:
        """Exact q-quantile by nearest-rank; q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        rank = min(len(self._samples) - 1, max(0, math.ceil(q * len(self._samples)) - 1))
        return self._samples[rank]

    def buckets(self, edges: List[float]) -> List[int]:
        """Counts per bucket for sorted ``edges`` (n+1 buckets)."""
        self._ensure_sorted()
        counts = [0] * (len(edges) + 1)
        for x in self._samples:
            counts[bisect_right(edges, x)] += 1
        return counts

    # -- incremental fast path (no sorting) --------------------------------

    def _fast_quantile(self, q: float, estimator: P2Quantile) -> float:
        """Exact when cheap (already sorted, or few samples); P² otherwise."""
        if self._sorted or len(self._samples) <= self.P2_EXACT_LIMIT:
            return self.quantile(q)
        return estimator.value()

    def p50(self) -> float:
        """Median without re-sorting on large, actively-growing histograms."""
        return self._fast_quantile(0.5, self._p2_p50)

    def p99(self) -> float:
        """99th percentile via the same incremental fast path as p50."""
        return self._fast_quantile(0.99, self._p2_p99)

    def p999(self) -> float:
        """99.9th percentile — campaign tail analysis past p99."""
        return self._fast_quantile(0.999, self._p2_p999)

    def merge_sorted(self, samples: Iterable[float]) -> None:
        """Fold another histogram's samples into this one, exactly.

        The combined sample list is re-sorted and the running sum is
        recomputed with :func:`math.fsum`, so the merged histogram's
        count/mean/min/max and exact quantiles depend only on the final
        sample *multiset* — merging in any order or grouping produces the
        same statistics (the property the parallel sweep merge relies on).
        The P² estimators are re-fed the sorted samples so later
        incremental reads stay consistent.
        """
        incoming = list(samples)
        if not incoming:
            return
        combined = self._samples + incoming
        combined.sort()
        self._samples = combined
        self._sorted = True
        self._sum = math.fsum(combined)
        self._min = combined[0]
        self._max = combined[-1]
        self._p2_p50 = P2Quantile(0.5)
        self._p2_p99 = P2Quantile(0.99)
        self._p2_p999 = P2Quantile(0.999)
        for value in combined:
            self._p2_p50.add(value)
            self._p2_p99.add(value)
            self._p2_p999.add(value)

    def summary(self) -> Dict[str, float]:
        """The exporter-facing digest; never sorts past P2_EXACT_LIMIT."""
        n = len(self._samples)
        return {
            "count": n,
            "mean": self.mean(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.quantile(0.5) if self._sorted or n <= self.P2_EXACT_LIMIT
            else self._p2_p50.value(),
            "p99": self.quantile(0.99) if self._sorted or n <= self.P2_EXACT_LIMIT
            else self._p2_p99.value(),
            "p999": self.quantile(0.999) if self._sorted or n <= self.P2_EXACT_LIMIT
            else self._p2_p999.value(),
        }


@dataclass
class TimeSeries:
    """Ordered (time, value) samples with integration helpers.

    Used to build the HINT QUIPS-versus-time curve and bandwidth sweeps.
    """

    name: str = "series"
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"time series {self.name!r} requires nondecreasing time; "
                f"got {time} after {self.points[-1][0]}")
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def last(self) -> Tuple[float, float]:
        if not self.points:
            raise ValueError(f"time series {self.name!r} is empty")
        return self.points[-1]

    def value_at(self, time: float) -> float:
        """Step-interpolated value at ``time`` (value of last sample <= t)."""
        if not self.points:
            raise ValueError(f"time series {self.name!r} is empty")
        result = self.points[0][1]
        for t, v in self.points:
            if t > time:
                break
            result = v
        return result

    def integrate(self) -> float:
        """Trapezoidal integral of value over time."""
        total = 0.0
        for (t0, v0), (t1, v1) in zip(self.points, self.points[1:]):
            total += 0.5 * (v0 + v1) * (t1 - t0)
        return total

    def peak(self) -> Tuple[float, float]:
        """(time, value) of the maximum value."""
        if not self.points:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(self.points, key=lambda p: p[1])
