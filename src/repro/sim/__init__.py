"""Discrete-event simulation kernel used by every PowerMANNA substrate.

The kernel is a small, simpy-flavoured engine: processes are Python
generators that ``yield`` events (timeouts, FIFO gets/puts, resource
requests), and a central :class:`~repro.sim.engine.Simulator` advances
virtual time.  Components that model clocked hardware use
:class:`~repro.sim.clock.Clock` to convert between cycles and the
simulator's time unit (nanoseconds throughout this library).
"""

from repro.sim.engine import Event, Simulator, Timeout
from repro.sim.process import Process
from repro.sim.resources import FifoStore, Resource, Signal
from repro.sim.clock import Clock
from repro.sim.stats import Counter, Histogram, TimeSeries

__all__ = [
    "Clock",
    "Counter",
    "Event",
    "FifoStore",
    "Histogram",
    "Process",
    "Resource",
    "Signal",
    "Simulator",
    "TimeSeries",
    "TimeSeries",
    "Timeout",
]
