"""Clock domains: convert between cycles and nanoseconds.

PowerMANNA mixes several clock domains — 180 MHz processors and L2 caches,
60 MHz node bus and communication links — so every timed component carries a
:class:`Clock` and schedules in nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Clock:
    """An ideal clock of a given frequency.

    Attributes:
        mhz: frequency in MHz.
    """

    mhz: float

    def __post_init__(self):
        if self.mhz <= 0:
            raise ValueError(f"clock frequency must be positive, got {self.mhz}")

    @property
    def hz(self) -> float:
        return self.mhz * 1e6

    @property
    def period_ns(self) -> float:
        """Length of one cycle in nanoseconds."""
        return 1e3 / self.mhz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.period_ns

    def cycles_to_us(self, cycles: float) -> float:
        return self.cycles_to_ns(cycles) / 1e3

    def cycles_to_seconds(self, cycles: float) -> float:
        return self.cycles_to_ns(cycles) / 1e9

    def __str__(self) -> str:
        return f"{self.mhz:g} MHz"
