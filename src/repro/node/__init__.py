"""The PowerMANNA node: ADSP bus switch, central dispatcher, node assembly.

Two design decisions let the dual-MPC620 node fit one board without
sacrificing performance (paper Section 2):

1. instead of shared address/data buses, a **multi-master bus switch**
   built from eleven ADSP (address/data path switch) slices gives every
   device a point-to-point path (:mod:`repro.node.adsp`);
2. one central **dispatcher** absorbs the MPC620's protocol complexity —
   pipelining, split transactions, intervention, out-of-order completion,
   snooping — and presents a simple interface to every other unit
   (:mod:`repro.node.dispatcher`).

:mod:`repro.node.node` assembles processors, memory and link interfaces
into node models for PowerMANNA and the two comparator machines.
"""

from repro.node.adsp import AdspSwitch, SwitchBusyError
from repro.node.dispatcher import BusTransaction, Dispatcher, TransactionKind
from repro.node.node import NodeModel, build_node

__all__ = [
    "AdspSwitch",
    "BusTransaction",
    "Dispatcher",
    "NodeModel",
    "SwitchBusyError",
    "TransactionKind",
    "build_node",
]
