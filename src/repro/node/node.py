"""Node assembly: CPUs + memory hierarchy + fabric into one model.

A :class:`NodeModel` is the unit the node benchmarks (HINT, MatMult,
SMP speedup) run against: it owns the per-CPU pipeline and stall models
and the shared :class:`~repro.memory.mp.MultiprocessorMemory`, and it can
replay address traces on any subset of its CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.cpu.model import CpuSpec
from repro.cpu.pipeline import PipelineModel, make_stall_model
from repro.memory.cache import AccessType
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.mp import (
    FabricConfig,
    MultiprocessorMemory,
    replay_traces,
)
from repro.memory.trace_gen import MemRef


@dataclass
class TraceRunResult:
    """Outcome of replaying traces on the node."""

    elapsed_ns: float
    per_cpu_ns: List[float]
    steps: int


class NodeModel:
    """One SMP node of a Table-1 machine."""

    def __init__(self, cpu: CpuSpec, hierarchy: HierarchyConfig,
                 fabric: FabricConfig, num_cpus: int = 2,
                 name: str = "node"):
        if num_cpus < 1:
            raise ValueError("a node needs at least one CPU")
        self.cpu = cpu
        self.hierarchy = hierarchy
        self.fabric = fabric
        self.num_cpus = num_cpus
        self.name = name
        self.pipeline = PipelineModel(cpu)
        self.memory = MultiprocessorMemory(hierarchy, num_cpus, fabric,
                                           name=name)
        self._stall = make_stall_model(cpu, hierarchy.l1_hit_ns)

    # -- trace execution ----------------------------------------------------

    def run_traces(self, traces: Sequence[Iterable[MemRef]],
                   compute_ns_per_access: float,
                   use_fast_path: bool = True,
                   backend: str = "fast",
                   ) -> TraceRunResult:
        """Replay one ``(addr, AccessType)`` stream per active CPU.

        ``compute_ns_per_access`` is the kernel's average compute time
        charged before each reference (from the pipeline model).

        Each call is a fresh timing epoch (local clocks restart at zero;
        DRAM/bus reservations are cleared) while cache contents persist —
        so a warming replay followed by a measured replay behaves like two
        timed sections of one program.

        The replay normally takes the batched fast path of
        :func:`repro.memory.mp.replay_traces` (identical semantics,
        counters and timing); ``use_fast_path=False`` forces the
        reference per-access path, and ``backend="numpy"`` routes
        single-CPU replays through the vectorized engine (same
        equivalence contract; traces may be ``repro.memory.vec``
        structured arrays from the ``trace_gen`` array emitters).
        """
        self.memory.reset_timing()
        results = replay_traces(self.memory, traces, compute_ns_per_access,
                                [self._stall] * len(traces),
                                use_fast_path=use_fast_path,
                                backend=backend)
        per_cpu = [r.finish_ns for r in results]
        return TraceRunResult(elapsed_ns=max(per_cpu), per_cpu_ns=per_cpu,
                              steps=sum(r.steps for r in results))

    def reset(self) -> None:
        self.memory.reset()

    # -- convenience ---------------------------------------------------------

    def describe(self) -> str:
        h = self.hierarchy
        return (f"{self.name}: {self.num_cpus}x {self.cpu.name} @ "
                f"{self.cpu.clock}, L1 {h.l1.size_bytes // 1024}K/"
                f"{h.l1.line_bytes}B lines, L2 {h.l2.size_bytes // 1024}K, "
                f"fabric {self.fabric.kind.value}")


def build_node(cpu: CpuSpec, hierarchy: HierarchyConfig, fabric: FabricConfig,
               num_cpus: int = 2, name: str = "node") -> NodeModel:
    """Factory kept for symmetry with the other subsystem builders."""
    return NodeModel(cpu, hierarchy, fabric, num_cpus=num_cpus, name=name)
