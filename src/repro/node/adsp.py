"""The ADSP multi-master bus switch.

A single ADSP gate array carries a 36-bit slice of a three-way switch;
eleven slices side by side form the node's full address/data path (Figure
2).  Functionally the switch lets independent device pairs transfer
concurrently — CPU0<->memory in parallel with CPU1<->link-interface — which
a shared bus cannot.  The model tracks live point-to-point connections,
rejects conflicting ones, and accumulates concurrency statistics (which the
Figure-8 analysis leans on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.sim.engine import Simulator
from repro.sim.stats import Counter


class SwitchBusyError(RuntimeError):
    """A requested path conflicts with a live connection."""


@dataclass(frozen=True)
class AdspConfig:
    """Physical organisation of the switch.

    Attributes:
        slice_bits: width of one ADSP gate array (36 in hardware).
        num_slices: slices forming the full path (11 on the node board).
        ways: how many simultaneous connections one switch supports
            ("a 36-bit slice of a three-way bus switch").
    """

    slice_bits: int = 36
    num_slices: int = 11
    ways: int = 3

    def __post_init__(self):
        if self.slice_bits <= 0 or self.num_slices <= 0:
            raise ValueError("slice geometry must be positive")
        if self.ways < 2:
            raise ValueError("a switch needs at least two ways")

    @property
    def path_bits(self) -> int:
        """Total switched width: 11 slices x 36 bits = 396 bits, enough for
        the 40-bit address plus a 128-bit data path with tags and parity."""
        return self.slice_bits * self.num_slices


class AdspSwitch:
    """Connection bookkeeping for the multi-master switch.

    Devices are registered by name; a *connection* couples two devices for
    the duration of a data phase.  Up to ``ways`` connections may be live
    simultaneously, and a device can serve only one connection at a time.
    """

    def __init__(self, sim: Simulator, config: AdspConfig = AdspConfig(),
                 name: str = "adsp"):
        self.sim = sim
        self.config = config
        self.name = name
        self.devices: Set[str] = set()
        self._live: Dict[FrozenSet[str], float] = {}
        self._busy_devices: Set[str] = set()
        self.stats = Counter(name)
        self._concurrency_time: Dict[int, float] = {}
        self._last_change = 0.0

    def register(self, device: str) -> None:
        if device in self.devices:
            raise ValueError(f"device {device!r} already registered")
        self.devices.add(device)

    def connect(self, a: str, b: str) -> FrozenSet[str]:
        """Open a point-to-point path between devices ``a`` and ``b``."""
        self._check_devices(a, b)
        pair = frozenset((a, b))
        if pair in self._live:
            raise SwitchBusyError(f"{self.name}: path {a}<->{b} already open")
        if len(self._live) >= self.config.ways:
            raise SwitchBusyError(
                f"{self.name}: all {self.config.ways} ways in use")
        conflict = self._busy_devices & pair
        if conflict:
            raise SwitchBusyError(
                f"{self.name}: device(s) {sorted(conflict)} busy")
        self._account()
        self._live[pair] = self.sim.now
        self._busy_devices |= pair
        self.stats.incr("connections")
        return pair

    def disconnect(self, pair: FrozenSet[str]) -> float:
        """Close a path; returns how long it was held (ns)."""
        if pair not in self._live:
            raise SwitchBusyError(f"{self.name}: path {set(pair)} not open")
        self._account()
        opened = self._live.pop(pair)
        self._busy_devices -= pair
        return self.sim.now - opened

    def can_connect(self, a: str, b: str) -> bool:
        self._check_devices(a, b)
        pair = frozenset((a, b))
        return (pair not in self._live
                and len(self._live) < self.config.ways
                and not (self._busy_devices & pair))

    def live_connections(self) -> List[Tuple[str, str]]:
        return [tuple(sorted(pair)) for pair in self._live]

    def _check_devices(self, a: str, b: str) -> None:
        if a == b:
            raise ValueError(f"cannot connect device {a!r} to itself")
        missing = {a, b} - self.devices
        if missing:
            raise KeyError(f"{self.name}: unknown device(s) {sorted(missing)}")

    # -- concurrency statistics ------------------------------------------------

    def _account(self) -> None:
        level = len(self._live)
        elapsed = self.sim.now - self._last_change
        if elapsed > 0:
            self._concurrency_time[level] = (
                self._concurrency_time.get(level, 0.0) + elapsed)
        self._last_change = self.sim.now

    def mean_concurrency(self) -> float:
        """Time-averaged number of simultaneous connections."""
        self._account()
        total = sum(self._concurrency_time.values())
        if total == 0:
            return 0.0
        weighted = sum(level * t for level, t in self._concurrency_time.items())
        return weighted / total

    def concurrency_profile(self) -> Dict[int, float]:
        """Fraction of time spent at each concurrency level."""
        self._account()
        total = sum(self._concurrency_time.values())
        if total == 0:
            return {}
        return {level: t / total
                for level, t in sorted(self._concurrency_time.items())}
