"""The central PowerMANNA dispatcher.

The dispatcher is the one unit that speaks the MPC620's full bus protocol:
it sequences address/snoop phases, runs data phases over the ADSP switch as
split transactions with tagged out-of-order completion, and keeps all of
this invisible to the memory, link interfaces and PCI bridge (Figure 3).

The model is a discrete-event component: masters submit
:class:`BusTransaction` objects and wait on the returned process; the
dispatcher pipelines address phases (serial, per the snoop protocol)
against data phases (parallel, as many as the switch has ways).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults import FAULTS
from repro.memory.dram import InterleavedDram
from repro.memory.snoop import AddressPhaseSequencer, SnoopConfig
from repro.node.adsp import AdspSwitch
from repro.obs import OBS
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.sim.stats import Counter, Histogram

_tags = itertools.count(1)


class TransactionKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    READ_EXCLUSIVE = "rwitm"
    INTERVENTION = "intervention"  # cache-to-cache transfer
    IO = "io"                      # memory-mapped link-interface access


@dataclass
class BusTransaction:
    """One master's bus request.

    Attributes:
        master: requesting device name (must be registered on the switch).
        kind: transaction type.
        addr: physical address.
        nbytes: transfer length (a cache line for cacheable traffic).
        target: responding device; None lets the dispatcher pick memory
            (or the intervening cache for INTERVENTION).
        tag: MPC620-style transaction tag for out-of-order completion.
    """

    master: str
    kind: TransactionKind
    addr: int
    nbytes: int
    target: Optional[str] = None
    tag: int = field(default_factory=lambda: next(_tags))
    issued_at: Optional[float] = None
    completed_at: Optional[float] = None

    @property
    def latency_ns(self) -> float:
        if self.issued_at is None or self.completed_at is None:
            raise ValueError(f"transaction {self.tag} not completed")
        return self.completed_at - self.issued_at

    @property
    def needs_snoop(self) -> bool:
        return self.kind in (TransactionKind.READ, TransactionKind.WRITE,
                             TransactionKind.READ_EXCLUSIVE,
                             TransactionKind.INTERVENTION)


class Dispatcher:
    """Central protocol engine over one ADSP switch and the node memory."""

    def __init__(self, sim: Simulator, switch: AdspSwitch,
                 dram: InterleavedDram, snoop: SnoopConfig,
                 memory_device: str = "memory",
                 io_access_ns: float = 100.0,
                 name: str = "dispatcher"):
        self.sim = sim
        self.switch = switch
        self.dram = dram
        self.sequencer = AddressPhaseSequencer(snoop, name=f"{name}.addr")
        self.memory_device = memory_device
        self.io_access_ns = io_access_ns
        self.name = name
        self.stats = Counter(name)
        self.latencies = Histogram(f"{name}.latency_ns")
        self.completed_tags: list[int] = []
        self._device_gates: Dict[str, Resource] = {}
        if memory_device not in switch.devices:
            switch.register(memory_device)

    def _gate(self, device: str) -> Resource:
        gate = self._device_gates.get(device)
        if gate is None:
            gate = Resource(self.sim, capacity=1,
                            name=f"{self.name}.gate.{device}")
            self._device_gates[device] = gate
        return gate

    def submit(self, txn: BusTransaction) -> Process:
        """Start a transaction; the returned process fires at completion."""
        if txn.master not in self.switch.devices:
            raise KeyError(f"{self.name}: unknown master {txn.master!r}")
        return self.sim.process(self._run(txn))

    def _run(self, txn: BusTransaction):
        txn.issued_at = self.sim.now
        txn_span = 0
        if OBS.enabled:
            txn_span = OBS.tracer.begin(
                "bus.txn", self.name, self.sim.now, category="node",
                kind=txn.kind.value, master=txn.master, tag=txn.tag)
        if FAULTS.enabled:
            # Node hang: the protocol engine freezes before arbitration —
            # every master on this node sees the stall.
            stall = FAULTS.engine.stall_ns("node_hang", self.name,
                                           self.sim.now)
            if stall > 0:
                self.stats.incr("hangs")
                if OBS.enabled:
                    OBS.metrics.incr("faults.dispatcher_hangs",
                                     dispatcher=self.name)
                yield self.sim.pooled_timeout(stall)
        # 1. Address phase: serialised across all masters (snoop protocol).
        #    The sequencer's conservative-time accounting composes with the
        #    event-driven world through a plain timeout to its grant.
        if txn.needs_snoop:
            grant, done = self.sequencer.occupy(self.sim.now)
            wait = done - self.sim.now
            if wait > 0:
                yield self.sim.pooled_timeout(wait)
            self.stats.incr("address_phases")

        # 2. Data phase.  Memory reads are *split transactions*: the
        #    request is posted to the DRAM banks with no path held, and the
        #    switch connection is only made for the data-transfer window —
        #    so independent transactions overlap and complete out of order.
        target = txn.target or self.memory_device
        if target == self.memory_device and txn.kind != TransactionKind.IO:
            done = self.dram.service(self.sim.now, txn.addr, txn.nbytes)
            transfer = self.dram.config.transfer_ns(txn.nbytes)
            lead = max(0.0, done - transfer - self.sim.now)
            if lead:
                yield self.sim.pooled_timeout(lead)
            yield from self._data_phase(txn.master, target, transfer)
        elif txn.kind == TransactionKind.IO:
            yield from self._data_phase(txn.master, target, self.io_access_ns)
        else:
            # Cache-to-cache intervention: the owning cache streams the line.
            transfer = self.dram.config.transfer_ns(txn.nbytes)
            yield from self._data_phase(txn.master, target, transfer)
            self.stats.incr("interventions")

        txn.completed_at = self.sim.now
        self.completed_tags.append(txn.tag)
        self.stats.incr("completed")
        self.latencies.add(txn.latency_ns)
        if OBS.enabled:
            OBS.tracer.end(txn_span, self.sim.now)
            OBS.metrics.incr("bus.completed", dispatcher=self.name,
                             kind=txn.kind.value)
            OBS.metrics.observe("bus.latency_ns", txn.latency_ns,
                                dispatcher=self.name)
        return txn

    def _data_phase(self, master: str, target: str, duration_ns: float):
        """Hold a switch path between ``master`` and ``target`` for the
        transfer window (sub-generator used by :meth:`_run`)."""
        master_gate, target_gate = self._gate(master), self._gate(target)
        yield master_gate.acquire()
        yield target_gate.acquire()
        pair = self.switch.connect(master, target)
        try:
            yield self.sim.pooled_timeout(duration_ns)
        finally:
            self.switch.disconnect(pair)
            target_gate.release()
            master_gate.release()

    # -- analysis ---------------------------------------------------------------

    def out_of_order_completions(self) -> int:
        """How many transactions completed out of tag order — evidence the
        split-transaction pipeline actually reorders independent work."""
        inversions = 0
        for earlier, later in zip(self.completed_tags, self.completed_tags[1:]):
            if later < earlier:
                inversions += 1
        return inversions
