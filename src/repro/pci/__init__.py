"""The optional PCI subsystem of a PowerMANNA node.

Paper Section 2: "Each node can, if required, be extended by a PCI
(Peripheral Component Interconnect) bridge with two PCI mezzanine slots
(PMC-P1386.1) to connect required peripheral devices like disks, 3D
graphics or LAN network controllers."

The bridge is one more master on the ADSP switch: device DMA flows
through the central dispatcher like any other transaction, which is how
the node keeps I/O from monopolising the memory path.  The package
provides the 33 MHz/32-bit bus model, two PMC slots with arbitration, and
disk/LAN device models that generate realistic DMA traffic for the
interference experiments.
"""

from repro.pci.bridge import PciBridge, PciBusConfig
from repro.pci.devices import DiskController, LanController

__all__ = [
    "DiskController",
    "LanController",
    "PciBridge",
    "PciBusConfig",
]
