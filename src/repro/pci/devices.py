"""PMC peripheral models: a disk controller and a LAN controller.

Both are traffic generators over :class:`~repro.pci.bridge.PciBridge`:
the disk issues large sequential DMAs gated by media bandwidth and seek
time; the LAN controller issues frame-sized DMAs at wire rate.  They
exist to exercise the node's I/O path in the interference tests — the
point of the switched node design is that a busy disk steals far less
from the CPUs than it would on a shared bus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pci.bridge import PciBridge
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.stats import Counter


@dataclass(frozen=True)
class DiskConfig:
    """Late-90s SCSI disk."""

    media_mb_s: float = 18.0
    seek_ns: float = 6_000_000.0      # 6 ms average seek + rotation
    block_bytes: int = 64 * 1024

    def __post_init__(self):
        if self.media_mb_s <= 0 or self.block_bytes <= 0:
            raise ValueError("disk parameters must be positive")


class DiskController:
    """Sequential/random block reads DMA'd into node memory."""

    def __init__(self, sim: Simulator, bridge: PciBridge, slot: int = 0,
                 config: DiskConfig = DiskConfig(), name: str = "disk"):
        self.sim = sim
        self.bridge = bridge
        self.slot = slot
        self.config = config
        self.name = name
        self.stats = Counter(name)

    def read_blocks(self, addr: int, blocks: int,
                    sequential: bool = True) -> Process:
        """Process: read ``blocks`` into memory starting at ``addr``."""

        def job():
            offset = 0
            for index in range(blocks):
                if not sequential or index == 0:
                    yield self.sim.timeout(self.config.seek_ns)
                    self.stats.incr("seeks")
                media_ns = (self.config.block_bytes * 1e3
                            / self.config.media_mb_s)
                yield self.sim.timeout(media_ns)
                yield self.sim.process(self.bridge.dma(
                    self.slot, addr + offset, self.config.block_bytes,
                    write=True))
                offset += self.config.block_bytes
                self.stats.incr("blocks")
            return blocks

        return self.sim.process(job())


@dataclass(frozen=True)
class LanConfig:
    """Fast-Ethernet-class NIC on the second PMC slot."""

    wire_mb_s: float = 12.5           # 100 Mbit/s
    frame_bytes: int = 1500
    interframe_ns: float = 960.0

    def __post_init__(self):
        if self.wire_mb_s <= 0 or self.frame_bytes <= 0:
            raise ValueError("LAN parameters must be positive")


class LanController:
    """Receive-side frame stream DMA'd into host buffers."""

    def __init__(self, sim: Simulator, bridge: PciBridge, slot: int = 1,
                 config: LanConfig = LanConfig(), name: str = "lan"):
        self.sim = sim
        self.bridge = bridge
        self.slot = slot
        self.config = config
        self.name = name
        self.stats = Counter(name)

    def receive_frames(self, addr: int, frames: int) -> Process:
        """Process: receive ``frames`` back-to-back at wire rate."""

        def job():
            for index in range(frames):
                wire_ns = (self.config.frame_bytes * 1e3
                           / self.config.wire_mb_s)
                yield self.sim.timeout(wire_ns + self.config.interframe_ns)
                yield self.sim.process(self.bridge.dma(
                    self.slot, addr + index * 2048,
                    self.config.frame_bytes, write=True))
                self.stats.incr("frames")
            return frames

        return self.sim.process(job())
