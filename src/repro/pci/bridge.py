"""The PCI bridge: two PMC slots behind one more switch master.

Device DMA is a two-stage affair: the transfer crosses the PCI bus
(arbitrated between the two mezzanine slots, 132 Mbyte/s ceiling) and then
the node's memory path as dispatcher transactions issued by the bridge.
The bridge chops large DMAs into bus-friendly bursts so a disk cannot
hold the node memory path for milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.node.dispatcher import BusTransaction, Dispatcher, TransactionKind
from repro.sim.clock import Clock
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import Counter, Histogram


@dataclass(frozen=True)
class PciBusConfig:
    """Classic 32-bit/33 MHz PCI."""

    clock: Clock = Clock(33.0)
    bus_bytes: int = 4
    arbitration_ns: float = 120.0     # grant + address phase per burst
    burst_bytes: int = 256            # bridge posting-buffer granularity
    slots: int = 2                    # PMC-P1386.1 mezzanine slots

    def __post_init__(self):
        if self.bus_bytes not in (4, 8):
            raise ValueError("PCI is 32- or 64-bit")
        if self.burst_bytes < self.bus_bytes:
            raise ValueError("burst must cover at least one bus word")
        if self.slots < 1:
            raise ValueError("need at least one slot")

    @property
    def bandwidth_mb_s(self) -> float:
        """Theoretical ceiling: 33 MHz x 4 B = 132 Mbyte/s."""
        return self.clock.mhz * self.bus_bytes

    def transfer_ns(self, nbytes: int) -> float:
        return nbytes * 1e3 / self.bandwidth_mb_s


class PciBridge:
    """Bridge between the PCI bus and the node's dispatcher."""

    def __init__(self, sim: Simulator, dispatcher: Dispatcher,
                 config: PciBusConfig = PciBusConfig(),
                 name: str = "pci"):
        self.sim = sim
        self.dispatcher = dispatcher
        self.config = config
        self.name = name
        self.bus = Resource(sim, capacity=1, name=f"{name}.bus")
        self.stats = Counter(name)
        self.dma_latency = Histogram(f"{name}.dma_ns")
        if name not in dispatcher.switch.devices:
            dispatcher.switch.register(name)

    def dma(self, slot: int, addr: int, nbytes: int, write: bool):
        """Process: one device DMA to/from node memory.

        Returns (as the process value) the completion time.  The transfer
        is burst by burst: PCI bus arbitration + bus transfer overlapped
        with a dispatcher memory transaction per burst.
        """
        if not 0 <= slot < self.config.slots:
            raise ValueError(f"{self.name} has slots 0..{self.config.slots - 1}")
        if nbytes <= 0:
            raise ValueError("DMA length must be positive")
        started = self.sim.now
        remaining = nbytes
        offset = 0
        kind = TransactionKind.WRITE if write else TransactionKind.READ
        while remaining > 0:
            burst = min(self.config.burst_bytes, remaining)
            yield self.bus.acquire()
            try:
                yield self.sim.timeout(self.config.arbitration_ns
                                       + self.config.transfer_ns(burst))
            finally:
                self.bus.release()
            txn = BusTransaction(master=self.name, kind=kind,
                                 addr=addr + offset, nbytes=burst)
            yield self.dispatcher.submit(txn)
            remaining -= burst
            offset += burst
            self.stats.incr("bursts")
        self.stats.incr("dmas")
        self.stats.incr("bytes", nbytes)
        elapsed = self.sim.now - started
        self.dma_latency.add(elapsed)
        return self.sim.now

    def throughput_mb_s(self, elapsed_ns: Optional[float] = None) -> float:
        elapsed = self.sim.now if elapsed_ns is None else elapsed_ns
        if elapsed <= 0:
            return 0.0
        return self.stats["bytes"] * 1e3 / elapsed
