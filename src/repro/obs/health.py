"""SLO health gates over sampled timelines and end-of-run metrics.

A :class:`HealthSpec` is a small JSON document of threshold rules::

    {
      "rules": [
        {"series": "xbar.out_queue", "stat": "p99", "op": "<", "value": 8},
        {"series": "link.util", "stat": "mean", "op": "in",
         "value": [0.0, 0.95], "labels": {"link": "n0.0->plane0.0"}},
        {"metric": "sliding.retransmissions", "op": "<", "value": 100,
         "divide_by": "sliding.transmissions"}
      ]
    }

evaluated at the end of a run (``--health spec.json`` on the CLI) against
the session's :class:`~repro.obs.timeline.Timeline` and
:class:`~repro.obs.metrics.MetricsRegistry`.  Any violated rule fails the
run with a non-zero exit, which is what lets CI and chaos campaigns gate
on behaviour ("p99 crossbar queue under 8", "retransmit rate under 1%")
instead of only on crashes.

Rules name either a ``series`` (a timeline statistic: ``mean``, ``min``,
``max``, ``p50``, ``p99``, ``last`` — quantiles are over per-interval bin
means, so a p99 rule reads "in 99% of sampled intervals") or a ``metric``
(a registry instrument: counters/gauges by value, histograms by any
summary statistic).  ``divide_by`` turns a counter rule into a rate.
Missing data violates the rule unless ``allow_missing`` is set: a gate
that silently passes because sampling was off is worse than a failure.
"""

from __future__ import annotations

import json
import operator
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
}

_SERIES_STATS = ("mean", "min", "max", "p50", "p99", "last")


@dataclass(frozen=True)
class HealthRule:
    """One threshold: a statistic of a series or metric vs a bound."""

    series: Optional[str] = None
    metric: Optional[str] = None
    stat: str = "mean"
    op: str = "<"
    value: Any = 0.0
    labels: Optional[Dict[str, str]] = None
    divide_by: Optional[str] = None
    allow_missing: bool = False

    def __post_init__(self):
        if (self.series is None) == (self.metric is None):
            raise ValueError(
                "a health rule names exactly one of 'series' or 'metric'")
        if self.op != "in" and self.op not in _OPS:
            raise ValueError(f"unknown health op {self.op!r} "
                             f"(expected one of {sorted(_OPS)} or 'in')")
        if self.op == "in":
            if (not isinstance(self.value, (list, tuple))
                    or len(self.value) != 2):
                raise ValueError("'in' rules take a [lo, hi] value")
        if self.series is not None and self.stat not in _SERIES_STATS:
            raise ValueError(f"unknown series stat {self.stat!r} "
                             f"(expected one of {_SERIES_STATS})")
        if self.divide_by is not None and self.metric is None:
            raise ValueError("'divide_by' only applies to metric rules")

    @property
    def target(self) -> str:
        return self.series if self.series is not None else self.metric

    def describe(self) -> str:
        kind = "series" if self.series is not None else "metric"
        label = ""
        if self.labels:
            inner = ", ".join(f"{k}={v}"
                              for k, v in sorted(self.labels.items()))
            label = "{" + inner + "}"
        name = f"{self.target}{label}"
        if self.divide_by:
            name = f"{name}/{self.divide_by}"
        if self.op == "in":
            lo, hi = self.value
            return f"{self.stat} {kind} {name} in [{lo:g}, {hi:g}]"
        return f"{self.stat} {kind} {name} {self.op} {self.value:g}"

    def check(self, observed: Optional[float]) -> bool:
        if observed is None:
            return self.allow_missing
        if self.op == "in":
            lo, hi = self.value
            return float(lo) <= observed <= float(hi)
        return _OPS[self.op](observed, float(self.value))


@dataclass(frozen=True)
class RuleResult:
    rule: HealthRule
    observed: Optional[float]
    passed: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.describe(),
            "observed": self.observed,
            "passed": self.passed,
        }


@dataclass
class HealthReport:
    """Every rule's verdict; ``ok`` is the gate CI keys its exit on."""

    results: List[RuleResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def violations(self) -> List[RuleResult]:
        return [r for r in self.results if not r.passed]

    def to_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok,
                "results": [r.to_dict() for r in self.results]}


@dataclass(frozen=True)
class HealthSpec:
    """An ordered set of health rules loaded from JSON."""

    rules: Tuple[HealthRule, ...] = ()

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "HealthSpec":
        if not isinstance(payload, dict) or "rules" not in payload:
            raise ValueError("a health spec is {'rules': [...]}")
        rules = []
        for i, entry in enumerate(payload["rules"]):
            if not isinstance(entry, dict):
                raise ValueError(f"rule {i} is not an object")
            known = {"series", "metric", "stat", "op", "value", "labels",
                     "divide_by", "allow_missing"}
            unknown = set(entry) - known
            if unknown:
                raise ValueError(
                    f"rule {i} has unknown fields {sorted(unknown)}")
            rules.append(HealthRule(**entry))
        return cls(rules=tuple(rules))

    @classmethod
    def load(cls, path: str) -> "HealthSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def evaluate(self, timeline=None, metrics=None) -> HealthReport:
        """Check every rule against a timeline and/or metrics registry."""
        report = HealthReport()
        for rule in self.rules:
            if rule.series is not None:
                observed = _series_value(timeline, rule)
            else:
                observed = _metric_value(metrics, rule)
            report.results.append(
                RuleResult(rule=rule, observed=observed,
                           passed=rule.check(observed)))
        return report


def _series_value(timeline, rule: HealthRule) -> Optional[float]:
    if timeline is None or not getattr(timeline, "enabled", False):
        return None
    matches = timeline.series_named(rule.series, rule.labels)
    matches = [ts for ts in matches if ts.sample_count()]
    if not matches:
        return None
    # Across a label fan-out (every link, every port) the rule gates the
    # worst offender for upper bounds and the full range for the rest.
    values = [ts.stat(rule.stat) for ts in matches]
    if rule.op in ("<", "<="):
        return max(values)
    if rule.op in (">", ">="):
        return min(values)
    return sum(values) / len(values)


def _metric_value(metrics, rule: HealthRule) -> Optional[float]:
    if metrics is None:
        return None
    total = _instrument_total(metrics, rule.metric, rule)
    if total is None:
        return None
    if rule.divide_by is not None:
        denom = _instrument_total(metrics, rule.divide_by, rule)
        if not denom:
            return None
        return total / denom
    return total


def _instrument_total(metrics, name: str,
                      rule: HealthRule) -> Optional[float]:
    want = sorted((str(k), str(v)) for k, v in (rule.labels or {}).items())
    found = False
    total = 0.0
    for inst in metrics.instruments():
        if inst.name != name:
            continue
        if want and not set(want) <= set(inst.labels):
            continue
        found = True
        if inst.kind == "histogram":
            summary = inst.summary()
            stat = rule.stat if rule.stat in summary else "mean"
            total += float(summary[stat])
        else:
            total += float(inst.value)
    return total if found else None


def format_health(report: HealthReport) -> str:
    """The CLI rendering: one line per rule, violations flagged."""
    lines = ["Health gates:"]
    for result in report.results:
        mark = "PASS" if result.passed else "FAIL"
        observed = ("missing" if result.observed is None
                    else f"{result.observed:g}")
        lines.append(f"  [{mark}] {result.rule.describe()} "
                     f"(observed {observed})")
    verdict = "healthy" if report.ok else (
        f"{len(report.violations)} violation(s)")
    lines.append(f"  => {verdict}")
    return "\n".join(lines)
