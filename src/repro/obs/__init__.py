"""repro.obs — the unified observability layer.

One ambient :data:`OBS` context object is shared by every instrumented
component in the library (caches, TLBs, coherence, links, crossbars, link
interfaces, drivers, dispatcher, messaging, EARTH).  It is *disabled* by
default: every instrumentation site is written as ::

    from repro.obs import OBS
    ...
    if OBS.enabled:
        OBS.metrics.incr("cache.miss", cache=self.name, level=self.level)

so an uninstrumented run pays exactly one attribute test per call site.
Enabling is scoped::

    from repro.obs import observe

    with observe() as session:
        run_the_experiment()
    session.write_trace("trace.json")          # Perfetto / chrome://tracing
    session.write_metrics_json("metrics.json")

The context object is a stable singleton whose *backends* are swapped, so
components may safely cache a reference to ``OBS`` itself (never to
``OBS.metrics``/``OBS.tracer``) at import or construction time.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Iterator, Optional

from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetricsRegistry,
    format_series,
)
from repro.obs.spans import (
    NULL_SPAN_TRACER,
    NullSpanTracer,
    Span,
    SpanNode,
    SpanTracer,
)
from repro.obs.timeline import (
    DEFAULT_SAMPLE_INTERVAL_NS,
    NULL_TIMELINE,
    NullTimeline,
    TimeSeries,
    Timeline,
)


class Observability:
    """The ambient observability context (one predicate when disabled)."""

    __slots__ = ("enabled", "metrics", "tracer", "timeline")

    def __init__(self):
        self.enabled = False
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.tracer: SpanTracer = NULL_SPAN_TRACER
        self.timeline: Timeline = NULL_TIMELINE

    def activate(self, metrics: MetricsRegistry, tracer: SpanTracer,
                 timeline: Timeline = NULL_TIMELINE) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.timeline = timeline
        self.enabled = True

    def deactivate(self) -> None:
        self.enabled = False
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_SPAN_TRACER
        self.timeline = NULL_TIMELINE

    def label_scope(self, **labels):
        """Ambient metric labels for a block; no-op context when disabled."""
        if not self.enabled:
            return nullcontext(self.metrics)
        return self.metrics.label_scope(**labels)


OBS = Observability()


class ObservationSession:
    """One enabled observation window: a registry plus a span tracer."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None,
                 span_limit: int = 1_000_000,
                 sample_interval_ns: Optional[float] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer(
            limit=span_limit)
        self.timeline: Timeline = (
            Timeline(sample_interval_ns) if sample_interval_ns
            else NULL_TIMELINE)

    # -- artifact shortcuts -------------------------------------------------

    def write_trace(self, path: str) -> None:
        from repro.obs.export import write_trace

        write_trace(path, self.tracer)

    def write_timeline_json(self, path: str) -> None:
        from repro.obs.export import write_timeline_json

        write_timeline_json(path, self.timeline)

    def write_metrics_json(self, path: str) -> None:
        from repro.obs.export import write_metrics_json

        write_metrics_json(path, self.metrics)

    def write_metrics_csv(self, path: str) -> None:
        from repro.obs.export import write_metrics_csv

        write_metrics_csv(path, self.metrics)


@contextmanager
def observe(metrics: Optional[MetricsRegistry] = None,
            tracer: Optional[SpanTracer] = None,
            span_limit: int = 1_000_000,
            sample_interval_ns: Optional[float] = None
            ) -> Iterator[ObservationSession]:
    """Enable instrumentation for the block; restores the prior state
    afterwards (nesting swaps backends, it does not merge them).

    Passing ``sample_interval_ns`` arms periodic simulated-time sampling:
    every :class:`~repro.sim.engine.Simulator` constructed inside the
    block samples its registered gauge probes into ``session.timeline``.
    """
    session = ObservationSession(metrics=metrics, tracer=tracer,
                                 span_limit=span_limit,
                                 sample_interval_ns=sample_interval_ns)
    previous = (OBS.enabled, OBS.metrics, OBS.tracer, OBS.timeline)
    OBS.activate(session.metrics, session.tracer, session.timeline)
    try:
        yield session
    finally:
        OBS.enabled, OBS.metrics, OBS.tracer, OBS.timeline = previous


__all__ = [
    "DEFAULT_SAMPLE_INTERVAL_NS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_SPAN_TRACER",
    "NULL_TIMELINE",
    "NullMetricsRegistry",
    "NullSpanTracer",
    "NullTimeline",
    "OBS",
    "Observability",
    "ObservationSession",
    "Span",
    "SpanNode",
    "SpanTracer",
    "TimeSeries",
    "Timeline",
    "format_series",
    "observe",
]
