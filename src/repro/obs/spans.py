"""Span tracing: one message's lifetime as a causal tree.

The flat :class:`repro.sim.trace.Tracer` answers "did X happen before Y";
spans answer "where did the time go".  A :class:`Span` is an interval with
a component, a parent, and arbitrary attributes; spans that belong to one
network message carry its ``message_id`` and are automatically parented to
the message's *root* span (opened by the sending driver, closed at
delivery), so the send-PIO / NI-inject / link / crossbar / drain stages of
a single message form one tree even though five independent simulation
processes record them.

:func:`SpanTracer.breakdown` turns a message tree into a critical-path
attribution: the root interval is swept left to right and every instant is
charged to the *latest-started* stage covering it (the stage furthest down
the pipeline — exactly the resource the message was waiting on), with
uncovered gaps reported as ``(untracked)``.  The segment durations sum to
the root duration by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Span:
    """One timed interval in a trace.

    ``end_ns`` is None while the span is open; ``parent_id`` links the
    causal tree and ``message_id`` groups spans of one network message.
    """

    span_id: int
    name: str
    component: str
    start_ns: float
    category: str = "span"
    end_ns: Optional[float] = None
    parent_id: Optional[int] = None
    message_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> float:
        if self.end_ns is None:
            raise ValueError(f"span {self.span_id} ({self.name}) still open")
        return self.end_ns - self.start_ns

    def __str__(self) -> str:
        end = f"{self.end_ns:.1f}" if self.end_ns is not None else "..."
        return (f"[{self.start_ns:12.1f} -> {end:>12}] {self.component}: "
                f"{self.name}")


class SpanTracer:
    """Collects spans; bounded, with drop accounting like the flat tracer."""

    def __init__(self, limit: int = 1_000_000):
        self.limit = limit
        self.spans: Dict[int, Span] = {}
        self.dropped = 0
        self._ids = itertools.count(1)
        self._open_roots: Dict[int, int] = {}    # message_id -> open root span
        self._root_by_message: Dict[int, int] = {}

    # -- recording ----------------------------------------------------------

    def begin(self, name: str, component: str, start_ns: float, *,
              category: str = "span", message: Optional[int] = None,
              parent: Optional[int] = None, root: bool = False,
              **attrs: Any) -> int:
        """Open a span; returns its id (0 when dropped — safe to end()).

        ``root=True`` registers the span as the root of ``message``'s tree;
        later spans carrying the same ``message`` are parented to it
        automatically unless they name an explicit ``parent``.
        """
        if len(self.spans) >= self.limit:
            self.dropped += 1
            return 0
        span_id = next(self._ids)
        if message is not None:
            if root:
                self._open_roots[message] = span_id
                self._root_by_message[message] = span_id
            elif parent is None:
                parent = self._open_roots.get(message)
        span = Span(span_id=span_id, name=name, component=component,
                    start_ns=start_ns, category=category, parent_id=parent,
                    message_id=message, attrs=dict(attrs))
        self.spans[span_id] = span
        return span_id

    def end(self, span_id: int, end_ns: float, **attrs: Any) -> None:
        """Close a span (ignores the 0 id that a dropped begin returned)."""
        span = self.spans.get(span_id)
        if span is None:
            return
        span.end_ns = end_ns
        if attrs:
            span.attrs.update(attrs)

    def end_message(self, message_id: int, end_ns: float,
                    **attrs: Any) -> None:
        """Close ``message_id``'s root span (delivery observed)."""
        span_id = self._open_roots.pop(message_id, None)
        if span_id is not None:
            self.end(span_id, end_ns, **attrs)

    # -- fan-out transport ----------------------------------------------------

    def encode(self) -> Dict[str, Any]:
        """The tracer as a picklable payload for cross-process transport.

        Spans ship in span-id order (their recording order) so a later
        :meth:`merge_point` reallocates ids deterministically; the
        message-root table and drop count ride along.
        """
        spans = [(s.span_id, s.name, s.component, s.start_ns, s.category,
                  s.end_ns, s.parent_id, s.message_id, dict(s.attrs))
                 for _, s in sorted(self.spans.items())]
        return {"spans": spans,
                "roots": dict(self._root_by_message),
                "dropped": self.dropped}

    def max_message_id(self) -> int:
        """Largest message id any span references (0 when none)."""
        ids = [s.message_id for s in self.spans.values()
               if s.message_id is not None]
        ids.extend(self._root_by_message)
        return max(ids, default=0)

    def merge_point(self, payload: Dict[str, Any],
                    message_offset: int = 0) -> int:
        """Fold one captured sweep point's spans into this tracer.

        Span ids are reallocated from this tracer's counter in the
        payload's recording order (parent links follow the same map), and
        every message id is shifted by ``message_offset`` so points that
        each counted messages from 1 stay distinct after the merge.
        Returns the largest *shifted* message id, i.e. the offset the next
        point should build on.  Merging the same payloads in the same
        order therefore reproduces identical span ids and message ids no
        matter which worker produced each payload — the ``--jobs N``
        byte-identity property.
        """
        idmap: Dict[int, int] = {}
        top = message_offset
        for (old_id, name, component, start_ns, category, end_ns,
             parent_id, message_id, attrs) in payload["spans"]:
            if len(self.spans) >= self.limit:
                self.dropped += 1
                continue
            new_id = next(self._ids)
            idmap[old_id] = new_id
            if message_id is not None:
                message_id += message_offset
                top = max(top, message_id)
            self.spans[new_id] = Span(
                span_id=new_id, name=name, component=component,
                start_ns=start_ns, category=category, end_ns=end_ns,
                parent_id=idmap.get(parent_id) if parent_id is not None
                else None,
                message_id=message_id, attrs=dict(attrs))
        for message_id, root_id in sorted(payload["roots"].items()):
            if root_id in idmap:
                shifted = message_id + message_offset
                top = max(top, shifted)
                self._root_by_message[shifted] = idmap[root_id]
        self.dropped += payload.get("dropped", 0)
        return top

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans.values())

    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans.values() if s.finished]

    def message_ids(self) -> List[int]:
        return sorted(self._root_by_message)

    def root_of(self, message_id: int) -> Optional[Span]:
        span_id = self._root_by_message.get(message_id)
        return self.spans.get(span_id) if span_id is not None else None

    def spans_of(self, message_id: int) -> List[Span]:
        return [s for s in self.spans.values() if s.message_id == message_id]

    def children_of(self, span_id: int) -> List[Span]:
        kids = [s for s in self.spans.values() if s.parent_id == span_id]
        kids.sort(key=lambda s: (s.start_ns, s.span_id))
        return kids

    def tree(self, message_id: int) -> "SpanNode":
        """The message's spans as one rooted tree (raises if no root)."""
        root = self.root_of(message_id)
        if root is None:
            raise KeyError(f"no root span recorded for message {message_id}")
        return self._node(root)

    def _node(self, span: Span) -> "SpanNode":
        return SpanNode(span, [self._node(c)
                               for c in self.children_of(span.span_id)])

    # -- critical path ---------------------------------------------------------------

    def breakdown(self, message_id: int) -> List[Tuple[str, float]]:
        """Critical-path attribution of one message's root interval.

        Returns ordered ``(stage, duration_ns)`` segments whose durations
        sum exactly to the root span's duration; ``stage`` is
        ``component/name`` of the covering span, or ``(untracked)`` for
        gaps no stage accounts for.
        """
        root = self.root_of(message_id)
        if root is None or not root.finished:
            raise KeyError(f"message {message_id} has no finished root span")
        stages = [s for s in self.spans_of(message_id)
                  if s.finished and s.span_id != root.span_id]
        cuts = {root.start_ns, root.end_ns}
        for s in stages:
            cuts.add(min(max(s.start_ns, root.start_ns), root.end_ns))
            cuts.add(min(max(s.end_ns, root.start_ns), root.end_ns))
        edges = sorted(cuts)

        segments: List[Tuple[str, float]] = []
        for left, right in zip(edges, edges[1:]):
            if right <= left:
                continue
            covering = [s for s in stages
                        if s.start_ns <= left and s.end_ns >= right]
            if covering:
                # Latest-started stage = furthest down the pipeline.
                owner = max(covering, key=lambda s: (s.start_ns, s.span_id))
                label = f"{owner.component}/{owner.name}"
            else:
                label = "(untracked)"
            if segments and segments[-1][0] == label:
                segments[-1] = (label, segments[-1][1] + (right - left))
            else:
                segments.append((label, right - left))
        return segments

    def breakdown_totals(self, message_id: int) -> Dict[str, float]:
        """Per-stage totals of :meth:`breakdown` (order-insensitive)."""
        totals: Dict[str, float] = {}
        for stage, dur in self.breakdown(message_id):
            totals[stage] = totals.get(stage, 0.0) + dur
        return totals


@dataclass
class SpanNode:
    """One node of a rendered span tree."""

    span: Span
    children: List["SpanNode"]

    def depth(self) -> int:
        return 1 + max((c.depth() for c in self.children), default=0)

    def count(self) -> int:
        return 1 + sum(c.count() for c in self.children)

    def render(self, indent: int = 0) -> str:
        lines = [" " * indent + str(self.span)]
        for child in self.children:
            lines.append(child.render(indent + 2))
        return "\n".join(lines)


class NullSpanTracer(SpanTracer):
    """Disabled tracer: begin/end are no-ops (call sites also guard)."""

    def begin(self, name, component, start_ns, **kwargs) -> int:
        return 0

    def end(self, span_id, end_ns, **attrs) -> None:
        pass

    def end_message(self, message_id, end_ns, **attrs) -> None:
        pass


NULL_SPAN_TRACER = NullSpanTracer(limit=0)
