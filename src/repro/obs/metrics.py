"""Labeled metrics: Counter/Gauge/Histogram instruments in one registry.

A :class:`MetricsRegistry` is the single sink every instrumented component
records into.  Instruments are identified by a *name* plus a set of string
*labels* (``cache.miss{level=l2, node=3}``), so one logical metric fans out
into as many series as there are label combinations.  Two scoping
mechanisms compose:

* **hierarchical component scoping** — ``registry.scope("node3")`` returns
  a view whose metric names are prefixed (``node3.cache.miss``) and which
  shares the parent's storage;
* **ambient label scoping** — ``with registry.label_scope(n=96):`` stamps
  every series recorded inside the block with the extra labels, which is
  how a benchmark harness attributes counts to the experiment cell
  (machine, matrix size, message size) that produced them.

The registry itself is cheap but not free; hot paths guard every call with
the :data:`repro.obs.OBS` enabled predicate so a disabled run pays one
attribute test per call site (see :mod:`repro.obs`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.stats import Histogram

LabelItems = Tuple[Tuple[str, str], ...]
SeriesKey = Tuple[str, LabelItems]


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: LabelItems) -> str:
    """Human/Prometheus-ish rendering: ``name{k=v, k2=v2}``."""
    if not labels:
        return name
    inner = ", ".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class CounterMetric:
    """A monotonically increasing labeled counter."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        self.value += amount


class GaugeMetric:
    """A labeled point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class HistogramMetric:
    """A labeled distribution, backed by :class:`repro.sim.stats.Histogram`."""

    __slots__ = ("name", "labels", "hist")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.hist = Histogram(name)

    def observe(self, value: float) -> None:
        self.hist.add(value)

    @property
    def value(self) -> int:
        """Snapshot/diff value of a histogram series is its sample count."""
        return self.hist.count

    def summary(self) -> Dict[str, float]:
        return self.hist.summary()


class MetricsSnapshot:
    """Immutable ``series -> value`` view, diffable against an earlier one.

    Counter and histogram series diff as deltas; gauges diff as the new
    value (a gauge delta is rarely meaningful, the caller gets the level).
    """

    def __init__(self, values: Dict[SeriesKey, float],
                 kinds: Dict[SeriesKey, str]):
        self._values = dict(values)
        self._kinds = dict(kinds)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: SeriesKey) -> bool:
        return key in self._values

    def __getitem__(self, key: SeriesKey) -> float:
        return self._values[key]

    def get(self, name: str, **labels: Any) -> float:
        return self._values.get((name, _label_items(labels)), 0)

    def items(self) -> Iterator[Tuple[SeriesKey, float]]:
        return iter(self._values.items())

    def diff(self, earlier: "MetricsSnapshot") -> Dict[SeriesKey, float]:
        """What changed since ``earlier`` (new series appear in full)."""
        out: Dict[SeriesKey, float] = {}
        for key, value in self._values.items():
            if self._kinds.get(key) == "gauge":
                if value != earlier._values.get(key):
                    out[key] = value
                continue
            delta = value - earlier._values.get(key, 0)
            if delta:
                out[key] = delta
        return out

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots (e.g. from two sweep workers) into one.

        Counter and histogram series accumulate (their snapshot value is a
        count), so the merged value is the sum.  Gauges are levels, not
        totals: the merge takes the *max* level — the only combining rule
        that keeps ``merge`` commutative and associative, which is what
        lets a fan-out merge per-worker snapshots in any order and land on
        the same result (see tests/obs/test_merge.py).
        """
        values = dict(self._values)
        kinds = dict(self._kinds)
        for key, value in other._values.items():
            kind = other._kinds.get(key)
            if key not in values:
                values[key] = value
                kinds[key] = kind
            elif kind == "gauge":
                values[key] = max(values[key], value)
            else:
                values[key] = values[key] + value
        return MetricsSnapshot(values, kinds)


class MetricsRegistry:
    """Get-or-create store of labeled instruments (see module docstring)."""

    def __init__(self, name: str = "metrics", prefix: str = "",
                 _store: Optional[Dict[SeriesKey, Any]] = None,
                 _ambient: Optional[List[Dict[str, str]]] = None):
        self.name = name
        self._prefix = prefix
        self._store: Dict[SeriesKey, Any] = _store if _store is not None else {}
        self._ambient: List[Dict[str, str]] = (
            _ambient if _ambient is not None else [])

    # -- instrument lookup --------------------------------------------------

    def _key(self, name: str, labels: Dict[str, Any]) -> SeriesKey:
        if self._ambient:
            merged: Dict[str, Any] = {}
            for frame in self._ambient:
                merged.update(frame)
            merged.update(labels)
            labels = merged
        return self._prefix + name, _label_items(labels)

    def _instrument(self, cls, name: str, labels: Dict[str, Any]):
        key = self._key(name, labels)
        inst = self._store.get(key)
        if inst is None:
            inst = cls(key[0], key[1])
            self._store[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {format_series(*key)} already registered as "
                f"{inst.kind}, cannot reuse as {cls.kind}")
        return inst

    def counter(self, name: str, **labels: Any) -> CounterMetric:
        return self._instrument(CounterMetric, name, labels)

    def gauge(self, name: str, **labels: Any) -> GaugeMetric:
        return self._instrument(GaugeMetric, name, labels)

    def histogram(self, name: str, **labels: Any) -> HistogramMetric:
        return self._instrument(HistogramMetric, name, labels)

    # -- hot-path conveniences ---------------------------------------------------

    def incr(self, name: str, amount: int = 1, **labels: Any) -> None:
        self._instrument(CounterMetric, name, labels).value += amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._instrument(GaugeMetric, name, labels).value = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self._instrument(HistogramMetric, name, labels).hist.add(value)

    # -- scoping -----------------------------------------------------------------

    def scope(self, prefix: str) -> "MetricsRegistry":
        """A view prefixing every metric name with ``prefix.`` — shares the
        store and the ambient label stack with this registry."""
        return MetricsRegistry(name=self.name,
                               prefix=f"{self._prefix}{prefix}.",
                               _store=self._store, _ambient=self._ambient)

    @contextmanager
    def label_scope(self, **labels: Any):
        """Stamp everything recorded in the block with ``labels``."""
        frame = {k: str(v) for k, v in labels.items()}
        self._ambient.append(frame)
        try:
            yield self
        finally:
            self._ambient.remove(frame)

    # -- inspection / export -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def instruments(self) -> List[Any]:
        return list(self._store.values())

    def series(self, name: str) -> List[Any]:
        """All instruments of one metric name, any labels."""
        return [inst for (n, _), inst in self._store.items() if n == name]

    def total(self, name: str) -> float:
        """Sum of a counter metric across all its label combinations."""
        return sum(inst.value for inst in self.series(name))

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            {key: inst.value for key, inst in self._store.items()},
            {key: inst.kind for key, inst in self._store.items()})

    # -- fan-out transport ---------------------------------------------------

    def encode(self) -> List[Tuple[str, LabelItems, str, Any]]:
        """The registry as a flat, picklable payload for cross-process
        transport: ``(name, labels, kind, data)`` per series, sorted by
        series key.  Counters and gauges ship their value; histograms ship
        their full sorted sample list so the merged quantiles stay exact.
        """
        out: List[Tuple[str, LabelItems, str, Any]] = []
        for (name, labels), inst in sorted(self._store.items()):
            if inst.kind == "histogram":
                data: Any = tuple(sorted(inst.hist.samples()))
            else:
                data = inst.value
            out.append((name, labels, inst.kind, data))
        return out

    def merge_encoded(self,
                      payload: List[Tuple[str, LabelItems, str, Any]]) -> None:
        """Fold an :meth:`encode` payload from another registry into this
        one.  Counters and histogram samples accumulate exactly; a gauge
        collision keeps the max level (the commutative choice — see
        :meth:`MetricsSnapshot.merge`).  Prefixes and ambient labels do
        not apply: the payload already carries final series keys.
        """
        classes = {"counter": CounterMetric, "gauge": GaugeMetric,
                   "histogram": HistogramMetric}
        for name, labels, kind, data in payload:
            key = (name, tuple(tuple(item) for item in labels))
            inst = self._store.get(key)
            created = inst is None
            if created:
                inst = classes[kind](key[0], key[1])
                self._store[key] = inst
            elif inst.kind != kind:
                raise TypeError(
                    f"metric {format_series(*key)} is a {inst.kind} here "
                    f"but a {kind} in the merged payload")
            if kind == "counter":
                inst.value += data
            elif kind == "gauge":
                inst.value = data if created else max(inst.value, data)
            else:
                inst.hist.merge_sorted(data)

    def merge_from(self, other: "MetricsRegistry") -> None:
        """In-process variant of :meth:`merge_encoded`."""
        self.merge_encoded(other.encode())

    # Columns the exporter itself owns; a label with one of these names is
    # prefixed rather than allowed to clobber the column.
    _RESERVED_COLUMNS = frozenset(
        {"metric", "kind", "value", "count", "mean", "min", "max",
         "p50", "p99", "p999"})

    def rows(self) -> List[Dict[str, Any]]:
        """Flat export rows (labels inlined) for the JSON/CSV exporters."""
        rows: List[Dict[str, Any]] = []
        for (name, labels), inst in sorted(self._store.items()):
            row: Dict[str, Any] = {"metric": name, "kind": inst.kind}
            for key, value in labels:
                if key in self._RESERVED_COLUMNS:
                    key = f"label_{key}"
                row[key] = value
            if inst.kind == "histogram":
                for stat, value in inst.summary().items():
                    row[stat] = value
            else:
                row["value"] = inst.value
            rows.append(row)
        return rows

    def reset(self) -> None:
        self._store.clear()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled backend: every recording call is a no-op.

    Instrumented call sites additionally guard with ``OBS.enabled`` so this
    class is only reached by code that records unconditionally.
    """

    def incr(self, name: str, amount: int = 1, **labels: Any) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def _instrument(self, cls, name, labels):  # instruments are throwaways
        return cls(name, _label_items(labels))

    def scope(self, prefix: str) -> "NullMetricsRegistry":
        return self

    @contextmanager
    def label_scope(self, **labels: Any):
        yield self


NULL_REGISTRY = NullMetricsRegistry(name="null")
