"""Self-contained HTML dashboard for one observed run.

``python -m repro report fig9 --sample-interval 1000 --out report.html``
renders the run's sampled timelines (inline SVG sparklines), a crossbar
per-port congestion heatmap, the span-derived critical-path breakdown,
the top metric rows and any health-gate verdicts into **one** HTML file
with zero external dependencies — no JS frameworks, no CDN fetches, no
image files — so it can be archived as a CI artifact and opened years
later.

The full structured payload is embedded in the page as
``<script type="application/json" id="report-data">`` (with ``</``
escaped so the document cannot be broken out of), which makes the report
machine-readable after the fact: :func:`validate_report_file` re-extracts
and schema-checks that payload, and is what the CI smoke job asserts on.
Nothing in the payload depends on wall-clock time, so two runs of the
same seeded experiment render byte-identical reports.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional

REPORT_SCHEMA = "repro.report/1"

#: Sparklines downsample to at most this many points.
_SPARK_POINTS = 160

#: Heatmaps downsample to at most this many time buckets.
_HEAT_BUCKETS = 64

#: At most this many individual series render as sparklines (the full
#: set is always in the embedded JSON).
_MAX_SPARKS = 48


# ---------------------------------------------------------------------------
# payload assembly
# ---------------------------------------------------------------------------


def _bucketize(points: List[float], limit: int) -> List[float]:
    """Mean-pool ``points`` down to at most ``limit`` values."""
    if len(points) <= limit:
        return points
    out = []
    step = len(points) / limit
    for i in range(limit):
        lo, hi = int(i * step), max(int(i * step) + 1, int((i + 1) * step))
        chunk = points[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def _series_entries(timeline) -> List[Dict[str, Any]]:
    entries = []
    for ts in timeline.all_series():
        if not ts.sample_count():
            continue
        entries.append({
            "name": ts.name,
            "labels": {k: v for k, v in ts.labels},
            "interval_ns": ts.interval_ns,
            "samples": ts.sample_count(),
            "points": [round(v, 6)
                       for v in _bucketize(ts.values("mean"), _SPARK_POINTS)],
            "stats": {stat: round(ts.stat(stat), 6)
                      for stat in ("mean", "max", "p50", "p99")},
        })
    return entries


def _heatmap(timeline) -> Optional[Dict[str, Any]]:
    """Crossbar input-FIFO occupancy: one row per (xbar, port)."""
    rows: List[Dict[str, Any]] = []
    for ts in timeline.series_named("xbar.in_fifo_bytes"):
        if not ts.sample_count():
            continue
        labels = dict(ts.labels)
        rows.append({
            "row": f"{labels.get('xbar', '?')}:{labels.get('port', '?')}",
            "values": [round(v, 3)
                       for v in _bucketize(ts.values("mean"),
                                           _HEAT_BUCKETS)],
        })
    if not rows:
        return None
    return {"title": "crossbar input-FIFO occupancy (bytes)", "rows": rows}


def _critical_path(tracer) -> List[Dict[str, Any]]:
    """Per-stage totals of every finished message's critical path."""
    totals: Dict[str, float] = {}
    messages = 0
    for message_id in tracer.message_ids():
        try:
            stage_totals = tracer.breakdown_totals(message_id)
        except KeyError:  # unfinished root — fault runs leave these
            continue
        messages += 1
        for stage, duration in stage_totals.items():
            totals[stage] = totals.get(stage, 0.0) + duration
    grand = sum(totals.values())
    return [{"stage": stage,
             "total_ns": round(duration, 3),
             "share": round(duration / grand, 6) if grand else 0.0,
             "messages": messages}
            for stage, duration in
            sorted(totals.items(), key=lambda kv: -kv[1])]


def report_data(title: str,
                timeline=None,
                metrics=None,
                tracer=None,
                health=None,
                extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The report's full structured payload (also embedded in the HTML)."""
    data: Dict[str, Any] = {"schema": REPORT_SCHEMA, "title": title}
    if timeline is not None and getattr(timeline, "enabled", False):
        data["sample_interval_ns"] = timeline.sample_interval_ns
        data["series"] = _series_entries(timeline)
        heat = _heatmap(timeline)
        if heat:
            data["heatmap"] = heat
    else:
        data["series"] = []
    if tracer is not None and len(tracer):
        data["critical_path"] = _critical_path(tracer)
        data["spans"] = {"recorded": len(tracer), "dropped": tracer.dropped}
    if metrics is not None:
        data["metrics"] = metrics.rows()
    if health is not None:
        data["health"] = health.to_dict()
    if extra:
        data.update(extra)
    return data


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 70em; color: #1a1a2e; }
h1 { font-size: 1.4em; border-bottom: 2px solid #1a1a2e; }
h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; font-size: 13px; }
td, th { padding: 2px 10px; text-align: right; }
th { border-bottom: 1px solid #999; }
td.l, th.l { text-align: left; font-family: ui-monospace, monospace; }
.spark { vertical-align: middle; }
.pass { color: #0a7d36; font-weight: 600; }
.fail { color: #c21807; font-weight: 600; }
.heat td { padding: 0; width: 9px; height: 14px; }
.heat th { font-weight: 400; }
.bar { background: #4466aa; display: inline-block; height: 10px; }
.muted { color: #667; }
"""


def _sparkline(points: List[float], width: int = 220,
               height: int = 36) -> str:
    if not points:
        return ""
    vmax = max(points)
    vmin = min(points)
    span = (vmax - vmin) or 1.0
    step = width / max(1, len(points) - 1) if len(points) > 1 else 0.0
    coords = []
    for i, v in enumerate(points):
        x = i * step if len(points) > 1 else width / 2
        y = height - 2 - (v - vmin) / span * (height - 4)
        coords.append(f"{x:.1f},{y:.1f}")
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="#4466aa" stroke-width="1.3" '
            f'points="{" ".join(coords)}"/></svg>')


def _heat_color(value: float, vmax: float) -> str:
    share = value / vmax if vmax > 0 else 0.0
    # White through amber to deep red.
    red = 255
    green = int(235 - 175 * share)
    blue = int(215 - 195 * share)
    return f"rgb({red},{green},{blue})"


def _render_series_section(data: Dict[str, Any]) -> List[str]:
    series = data.get("series") or []
    if not series:
        return ["<p class='muted'>No sampled series (run with "
                "<code>--sample-interval</code> to record timelines).</p>"]
    out = ["<h2>Timelines</h2>",
           "<table><tr><th class='l'>series</th><th>samples</th>"
           "<th>mean</th><th>p99</th><th>max</th><th class='l'></th></tr>"]
    for entry in series[:_MAX_SPARKS]:
        labels = entry.get("labels") or {}
        label = "".join(f"{k}={v} " for k, v in sorted(labels.items()))
        stats = entry["stats"]
        out.append(
            "<tr>"
            f"<td class='l'>{html.escape(entry['name'])} "
            f"<span class='muted'>{html.escape(label.strip())}</span></td>"
            f"<td>{entry['samples']}</td>"
            f"<td>{stats['mean']:g}</td><td>{stats['p99']:g}</td>"
            f"<td>{stats['max']:g}</td>"
            f"<td class='l'>{_sparkline(entry['points'])}</td></tr>")
    if len(series) > _MAX_SPARKS:
        out.append(f"<tr><td class='l muted' colspan='6'>… "
                   f"{len(series) - _MAX_SPARKS} more series in the "
                   "embedded JSON payload</td></tr>")
    out.append("</table>")
    return out


def _render_heatmap_section(data: Dict[str, Any]) -> List[str]:
    heat = data.get("heatmap")
    if not heat:
        return []
    vmax = max((max(row["values"]) for row in heat["rows"]
                if row["values"]), default=0.0)
    out = [f"<h2>Congestion heatmap — {html.escape(heat['title'])}</h2>",
           "<table class='heat'>"]
    for row in heat["rows"]:
        cells = "".join(
            f"<td style='background:{_heat_color(v, vmax)}' "
            f"title='{v:g}'></td>" for v in row["values"])
        out.append(f"<tr><th class='l'>{html.escape(row['row'])}</th>"
                   f"{cells}</tr>")
    out.append("</table>")
    out.append(f"<p class='muted'>time →, white = empty, "
               f"red = {vmax:g} bytes</p>")
    return out


def _render_critical_path_section(data: Dict[str, Any]) -> List[str]:
    path = data.get("critical_path")
    if not path:
        return []
    out = ["<h2>Critical path (all messages)</h2>",
           "<table><tr><th class='l'>stage</th><th>total</th>"
           "<th>share</th><th class='l'></th></tr>"]
    for row in path:
        width = int(round(row["share"] * 260))
        out.append(
            f"<tr><td class='l'>{html.escape(row['stage'])}</td>"
            f"<td>{row['total_ns'] / 1e3:.2f} us</td>"
            f"<td>{row['share'] * 100:.1f}%</td>"
            f"<td class='l'><span class='bar' "
            f"style='width:{width}px'></span></td></tr>")
    out.append("</table>")
    spans = data.get("spans")
    if spans:
        dropped = (f", {spans['dropped']} dropped"
                   if spans.get("dropped") else "")
        out.append(f"<p class='muted'>{spans['recorded']} spans "
                   f"recorded{dropped}</p>")
    return out


def _render_health_section(data: Dict[str, Any]) -> List[str]:
    health = data.get("health")
    if not health:
        return []
    verdict = ("<span class='pass'>healthy</span>" if health["ok"]
               else "<span class='fail'>violations</span>")
    out = [f"<h2>Health gates — {verdict}</h2>",
           "<table><tr><th class='l'>rule</th><th>observed</th>"
           "<th>verdict</th></tr>"]
    for result in health["results"]:
        mark = ("<span class='pass'>PASS</span>" if result["passed"]
                else "<span class='fail'>FAIL</span>")
        observed = (f"{result['observed']:g}"
                    if result["observed"] is not None else "missing")
        out.append(f"<tr><td class='l'>{html.escape(result['rule'])}</td>"
                   f"<td>{observed}</td><td>{mark}</td></tr>")
    out.append("</table>")
    return out


def _render_metrics_section(data: Dict[str, Any],
                            top: int = 20) -> List[str]:
    rows = data.get("metrics")
    if not rows:
        return []
    def _magnitude(row):
        return abs(row.get("value") or row.get("count") or 0)
    ranked = sorted(rows, key=_magnitude, reverse=True)[:top]
    out = [f"<h2>Top metrics ({len(ranked)} of {len(rows)})</h2>",
           "<table><tr><th class='l'>metric</th><th class='l'>kind</th>"
           "<th>value</th></tr>"]
    for row in ranked:
        if row["kind"] == "histogram":
            value = (f"n={row.get('count', 0):g} "
                     f"p50={row.get('p50', 0.0):g} "
                     f"p99={row.get('p99', 0.0):g}")
        else:
            value = f"{row.get('value', 0):g}"
        labels = " ".join(f"{k}={v}" for k, v in sorted(row.items())
                          if k not in ("metric", "kind", "value", "count",
                                       "mean", "min", "max", "p50", "p99",
                                       "p999"))
        out.append(f"<tr><td class='l'>{html.escape(row['metric'])} "
                   f"<span class='muted'>{html.escape(labels)}</span></td>"
                   f"<td class='l'>{html.escape(row['kind'])}</td>"
                   f"<td>{value}</td></tr>")
    out.append("</table>")
    return out


def render_html(data: Dict[str, Any]) -> str:
    """One self-contained HTML document for a :func:`report_data` payload."""
    title = html.escape(data.get("title", "repro report"))
    parts = ["<!doctype html>", "<html><head>",
             "<meta charset='utf-8'>",
             f"<title>{title}</title>",
             f"<style>{_CSS}</style>", "</head><body>",
             f"<h1>{title}</h1>"]
    parts += _render_health_section(data)
    parts += _render_series_section(data)
    parts += _render_heatmap_section(data)
    parts += _render_critical_path_section(data)
    parts += _render_metrics_section(data)
    # The machine-readable payload; '</' escaped so embedded strings
    # cannot terminate the script element.
    payload = json.dumps(data, sort_keys=True).replace("</", "<\\/")
    parts.append("<script type='application/json' id='report-data'>"
                 f"{payload}</script>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(path: str, data: Dict[str, Any]) -> None:
    from repro.atomicio import atomic_write_text

    atomic_write_text(path, render_html(data) + "\n")


# ---------------------------------------------------------------------------
# validation (CI smoke)
# ---------------------------------------------------------------------------

_MARKER = "<script type='application/json' id='report-data'>"


def extract_report_data(html_text: str) -> Dict[str, Any]:
    """The embedded JSON payload of a rendered report."""
    start = html_text.find(_MARKER)
    if start < 0:
        raise ValueError("no embedded report-data payload found")
    start += len(_MARKER)
    end = html_text.find("</script>", start)
    if end < 0:
        raise ValueError("embedded report-data payload is unterminated")
    return json.loads(html_text[start:end].replace("<\\/", "</"))


def validate_report_data(data: Dict[str, Any]) -> int:
    """Schema-check a payload; returns the number of sampled series."""
    if not isinstance(data, dict):
        raise ValueError("report payload is not an object")
    if data.get("schema") != REPORT_SCHEMA:
        raise ValueError(f"unexpected report schema {data.get('schema')!r} "
                         f"(wanted {REPORT_SCHEMA!r})")
    if "title" not in data:
        raise ValueError("report payload has no title")
    series = data.get("series")
    if not isinstance(series, list):
        raise ValueError("report payload has no series list")
    for i, entry in enumerate(series):
        for field in ("name", "interval_ns", "points", "stats"):
            if field not in entry:
                raise ValueError(f"series {i} is missing {field!r}")
        if not isinstance(entry["points"], list):
            raise ValueError(f"series {i} points is not a list")
    heat = data.get("heatmap")
    if heat is not None:
        if not heat.get("rows"):
            raise ValueError("heatmap present but empty")
        widths = {len(r["values"]) for r in heat["rows"]}
        if len(widths) > 1:
            raise ValueError(f"heatmap rows have uneven widths {widths}")
    health = data.get("health")
    if health is not None and "ok" not in health:
        raise ValueError("health section has no verdict")
    return len(series)


def validate_report_file(path: str) -> int:
    """Extract + schema-check a report file; returns the series count."""
    with open(path, "r", encoding="utf-8") as handle:
        return validate_report_data(extract_report_data(handle.read()))
