"""Simulated-time periodic sampling: utilization/congestion timelines.

End-of-run aggregates (:mod:`repro.obs.metrics`) answer "how much in
total"; this module answers "when" — link occupancy, crossbar queue
depth, NI FIFO fill, sliding-window flight size as functions of
*simulated* time.  A :class:`Timeline` is the per-session sink; each
instrumented layer registers cheap gauge *probes* at construction::

    if OBS.enabled:
        OBS.timeline.probe(self.sim, "link.tx_bytes",
                           lambda: self.tx.level_bytes, link=self.name)

and the simulator kernel drives sampling from its event loop: one float
compare per event (``when >= sim._sample_due``) when a sampler is
attached, and the same compare against ``inf`` when not — so a run
without sampling pays (almost) nothing, mirroring the ``OBS.enabled``
discipline of every other observability layer.

Series are *binned*, not raw: a :class:`TimeSeries` holds per-interval
``(count, total, min, max)`` aggregates aligned at t=0.  When a series
outgrows ``max_bins`` its interval doubles and adjacent bins merge
pairwise, so memory stays fixed however long the run is (the classic
ring-buffer/downsampling trade).  Bin aggregates form a commutative
semigroup, which makes :meth:`TimeSeries.merge` associative and
order-insensitive — the property the parallel sweep's ordered merge
(and the ``--jobs N == --jobs 1`` byte-identity guarantee) rests on,
pinned by hypothesis in ``tests/obs/test_timeline.py``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import LabelItems, SeriesKey, _label_items

#: Default simulated-time sampling period (ns) when a caller enables
#: sampling without naming one: 1 us resolves the microsecond-scale
#: figure runs into a few hundred bins.
DEFAULT_SAMPLE_INTERVAL_NS = 1000.0

#: Per-series bin budget before the interval doubles.
DEFAULT_MAX_BINS = 512

#: One bin: (sample count, value total, value min, value max).
Bin = Optional[Tuple[int, float, float, float]]


def _combine(a: Bin, b: Bin) -> Bin:
    if a is None:
        return b
    if b is None:
        return a
    return (a[0] + b[0], a[1] + b[1],
            a[2] if a[2] <= b[2] else b[2],
            a[3] if a[3] >= b[3] else b[3])


class TimeSeries:
    """One sampled gauge: fixed-memory (count,total,min,max) bins at t=0.

    ``bins[i]`` aggregates samples with ``i*interval_ns <= t <
    (i+1)*interval_ns``; ``None`` marks an interval nothing sampled.
    Recording past ``max_bins`` doubles ``interval_ns`` and merges bin
    pairs, so the footprint is bounded by ``max_bins`` whatever the run
    length.  Intervals therefore stay power-of-two multiples of the
    sampler's base interval, which is what lets :meth:`merge` align two
    series exactly.
    """

    __slots__ = ("name", "labels", "interval_ns", "max_bins", "bins")

    def __init__(self, name: str, labels: LabelItems = (),
                 interval_ns: float = DEFAULT_SAMPLE_INTERVAL_NS,
                 max_bins: int = DEFAULT_MAX_BINS):
        if interval_ns <= 0:
            raise ValueError(f"sample interval must be positive, got {interval_ns}")
        if max_bins < 2:
            raise ValueError(f"a series needs >= 2 bins, got {max_bins}")
        self.name = name
        self.labels = labels
        self.interval_ns = float(interval_ns)
        self.max_bins = max_bins
        self.bins: List[Bin] = []

    # -- recording ----------------------------------------------------------

    def record(self, t_ns: float, value: float) -> None:
        """Fold one sample at simulated time ``t_ns`` into its bin."""
        index = int(t_ns // self.interval_ns)
        while index >= self.max_bins:
            self._halve()
            index = int(t_ns // self.interval_ns)
        bins = self.bins
        if index >= len(bins):
            bins.extend([None] * (index + 1 - len(bins)))
        cur = bins[index]
        if cur is None:
            bins[index] = (1, value, value, value)
        else:
            bins[index] = (cur[0] + 1, cur[1] + value,
                           cur[2] if cur[2] <= value else value,
                           cur[3] if cur[3] >= value else value)

    def _halve(self) -> None:
        """Double the interval; merge adjacent bin pairs (downsampling)."""
        old = self.bins
        self.bins = [_combine(old[i], old[i + 1] if i + 1 < len(old) else None)
                     for i in range(0, len(old), 2)]
        self.interval_ns *= 2.0

    def coarsen_to(self, interval_ns: float) -> None:
        """Downsample until ``self.interval_ns >= interval_ns``."""
        while self.interval_ns < interval_ns:
            self._halve()

    # -- merge (the fan-out transport semigroup) ----------------------------

    def merge(self, other: "TimeSeries") -> None:
        """Fold another series' bins into this one.

        The coarser interval wins: the finer side is downsampled first
        (both intervals are power-of-two multiples of one base, so they
        always meet), then bins combine index-wise with (+, +, min, max)
        — associative and commutative, so any merge grouping or order
        lands on the same bins (see tests/obs/test_timeline.py).
        """
        incoming = other.bins
        interval = other.interval_ns
        if interval < self.interval_ns:
            shadow = TimeSeries(other.name, other.labels, interval,
                                max_bins=self.max_bins)
            shadow.bins = list(incoming)
            shadow.coarsen_to(self.interval_ns)
            incoming, interval = shadow.bins, shadow.interval_ns
        elif interval > self.interval_ns:
            self.coarsen_to(interval)
        if interval != self.interval_ns:
            raise ValueError(
                f"series {self.name!r}: cannot align interval {interval} "
                f"with {self.interval_ns} (not power-of-two multiples of "
                "a common base)")
        bins = self.bins
        if len(incoming) > len(bins):
            bins.extend([None] * (len(incoming) - len(bins)))
        for i, b in enumerate(incoming):
            if b is not None:
                bins[i] = _combine(bins[i], b)

    # -- statistics ---------------------------------------------------------

    def sample_count(self) -> int:
        return sum(b[0] for b in self.bins if b is not None)

    def values(self, kind: str = "mean") -> List[float]:
        """Per-bin statistic (``mean``/``min``/``max``), skipping empty bins."""
        out = []
        for b in self.bins:
            if b is None:
                continue
            if kind == "mean":
                out.append(b[1] / b[0])
            elif kind == "min":
                out.append(b[2])
            elif kind == "max":
                out.append(b[3])
            else:
                raise ValueError(f"unknown bin statistic {kind!r}")
        return out

    def stat(self, name: str) -> float:
        """One scalar over the series, for health gates and reports.

        ``mean`` is the sample mean; ``min``/``max`` are absolute over
        all samples; ``last`` is the final bin's mean; ``p50``/``p99``
        are nearest-rank quantiles of the per-bin means (per-interval
        behaviour, which is what an SLO over a timeline means).
        """
        populated = [b for b in self.bins if b is not None]
        if not populated:
            return 0.0
        if name == "mean":
            return (math.fsum(b[1] for b in populated)
                    / sum(b[0] for b in populated))
        if name == "min":
            return min(b[2] for b in populated)
        if name == "max":
            return max(b[3] for b in populated)
        if name == "last":
            b = populated[-1]
            return b[1] / b[0]
        if name in ("p50", "p99"):
            ordered = sorted(b[1] / b[0] for b in populated)
            q = 0.5 if name == "p50" else 0.99
            rank = min(len(ordered) - 1,
                       max(0, math.ceil(q * len(ordered)) - 1))
            return ordered[rank]
        raise ValueError(f"unknown series statistic {name!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "interval_ns": self.interval_ns,
            "bins": [list(b) if b is not None else None for b in self.bins],
        }


class _SimSampler:
    """The per-simulator probe list one :class:`Timeline` drives.

    The simulator's run loops call :meth:`tick` when an event timestamp
    crosses ``sim._sample_due``; every elapsed interval boundary up to
    that timestamp is sampled (state reads only — sampling never
    schedules events, so an instrumented run's tables stay bit-identical
    to an uninstrumented one).
    """

    __slots__ = ("timeline", "interval_ns", "_probes")

    def __init__(self, timeline: "Timeline"):
        self.timeline = timeline
        self.interval_ns = timeline.sample_interval_ns
        self._probes: List[Tuple[TimeSeries, Callable[[], float]]] = []

    def add(self, name: str, fn: Callable[[], float],
            labels: Dict[str, Any]) -> None:
        self._probes.append((self.timeline.series(name, **labels), fn))

    def tick(self, due: float, now: float) -> float:
        """Sample every boundary in ``[due, now]``; return the next due."""
        interval = self.interval_ns
        probes = self._probes
        ticks = 0
        while due <= now:
            for series, fn in probes:
                series.record(due, fn())
            due += interval
            ticks += 1
        self.timeline.samples_taken += ticks * len(probes)
        return due


class Timeline:
    """One observation session's sampled series, plus the probe registry.

    Components register probes against *their* simulator; the timeline
    keeps one :class:`_SimSampler` per attached simulator (stored on the
    simulator itself as ``sim._sampler``), so several worlds built under
    one session each sample their own state.  Series live here, keyed
    like metrics by ``(name, sorted label items)``.
    """

    enabled = True

    def __init__(self,
                 sample_interval_ns: float = DEFAULT_SAMPLE_INTERVAL_NS,
                 max_bins: int = DEFAULT_MAX_BINS):
        if sample_interval_ns <= 0:
            raise ValueError(
                f"sample interval must be positive, got {sample_interval_ns}")
        self.sample_interval_ns = float(sample_interval_ns)
        self.max_bins = max_bins
        self.samples_taken = 0
        self._series: Dict[SeriesKey, TimeSeries] = {}

    # -- registration -------------------------------------------------------

    def attach(self, sim) -> _SimSampler:
        """Arm periodic sampling on ``sim`` (idempotent per simulator)."""
        sampler = sim._sampler
        if sampler is None or sampler.timeline is not self:
            sampler = _SimSampler(self)
            sim._sampler = sampler
            sim._sample_due = self.sample_interval_ns
            # Kernel self-observation: DES event-pool size and queue depth.
            sampler.add("des.event_pool",
                        lambda: float(len(sim._timeout_pool)), {})
            sampler.add("des.pending_events",
                        lambda: float(len(sim._queue)), {})
        return sampler

    def probe(self, sim, name: str, fn: Callable[[], float],
              **labels: Any) -> None:
        """Register gauge ``fn`` to be sampled on ``sim``'s timeline."""
        self.attach(sim).add(name, fn, labels)

    # -- series access ------------------------------------------------------

    def series(self, name: str, **labels: Any) -> TimeSeries:
        key = (name, _label_items(labels))
        ts = self._series.get(key)
        if ts is None:
            ts = TimeSeries(key[0], key[1], self.sample_interval_ns,
                            self.max_bins)
            self._series[key] = ts
        return ts

    def record(self, name: str, t_ns: float, value: float,
               **labels: Any) -> None:
        """Direct recording path (probes are the usual route)."""
        self.series(name, **labels).record(t_ns, value)

    def __len__(self) -> int:
        return len(self._series)

    def all_series(self) -> List[TimeSeries]:
        return [ts for _, ts in sorted(self._series.items())]

    def series_named(self, name: str,
                     labels: Optional[Dict[str, Any]] = None
                     ) -> List[TimeSeries]:
        """Every series of ``name`` whose labels include ``labels``."""
        want = _label_items(labels or {})
        out = []
        for (n, items), ts in sorted(self._series.items()):
            if n == name and set(want) <= set(items):
                out.append(ts)
        return out

    # -- fan-out transport --------------------------------------------------

    def encode(self) -> List[Tuple[str, LabelItems, float, Tuple[Bin, ...]]]:
        """The timeline as a flat picklable payload, sorted by series key
        (the same transport shape as :meth:`MetricsRegistry.encode`)."""
        return [(name, labels, ts.interval_ns, tuple(ts.bins))
                for (name, labels), ts in sorted(self._series.items())]

    def merge_point(self, payload) -> None:
        """Fold an :meth:`encode` payload from another timeline into this
        one (bin-wise; associative and order-insensitive, like the metric
        and span merges the sweep transport is built on)."""
        for name, labels, interval_ns, bins in payload:
            key = (name, tuple(tuple(item) for item in labels))
            incoming = TimeSeries(key[0], key[1], interval_ns,
                                  max_bins=self.max_bins)
            incoming.bins = [tuple(b) if b is not None else None
                             for b in bins]
            ts = self._series.get(key)
            if ts is None:
                self._series[key] = incoming
            else:
                ts.merge(incoming)

    # -- export -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        # The sample count is derived from the bins (not the live
        # ``samples_taken`` counter) so it survives encode/merge.
        return {
            "sample_interval_ns": self.sample_interval_ns,
            "samples_taken": sum(ts.sample_count()
                                 for ts in self._series.values()),
            "series": [ts.to_dict() for ts in self.all_series()],
        }

    def name_curves(self) -> Dict[str, Tuple[float, List[float]]]:
        """Per-name mean curve: bin means averaged across a name's label
        fan-out — the compact shape campaign reports band across seeds."""
        grouped: Dict[str, List[TimeSeries]] = {}
        for ts in self.all_series():
            grouped.setdefault(ts.name, []).append(ts)
        curves: Dict[str, Tuple[float, List[float]]] = {}
        for name, group in sorted(grouped.items()):
            interval = max(ts.interval_ns for ts in group)
            length = 0
            coarse: List[List[Bin]] = []
            for ts in group:
                shadow = TimeSeries(ts.name, ts.labels, ts.interval_ns,
                                    max_bins=ts.max_bins)
                shadow.bins = list(ts.bins)
                shadow.coarsen_to(interval)
                coarse.append(shadow.bins)
                length = max(length, len(shadow.bins))
            means: List[float] = []
            for i in range(length):
                total = _combine_many(row[i] if i < len(row) else None
                                      for row in coarse)
                means.append(total[1] / total[0] if total else 0.0)
            curves[name] = (interval, means)
        return curves


def _combine_many(bins) -> Bin:
    out: Bin = None
    for b in bins:
        out = _combine(out, b)
    return out


class NullTimeline(Timeline):
    """The disabled backend: registration and recording are no-ops, and
    :meth:`attach` leaves ``sim._sample_due`` at ``inf`` so the kernel's
    per-event compare never fires."""

    enabled = False

    def __init__(self):
        super().__init__(sample_interval_ns=1.0)
        self.sample_interval_ns = 0.0

    def attach(self, sim) -> None:  # type: ignore[override]
        return None

    def probe(self, sim, name, fn, **labels) -> None:
        pass

    def series(self, name, **labels) -> TimeSeries:  # throwaway
        return TimeSeries(name, _label_items(labels), 1.0)

    def record(self, name, t_ns, value, **labels) -> None:
        pass


NULL_TIMELINE = NullTimeline()
