"""Exporters: Chrome trace-event JSON (Perfetto) and metrics dumps.

``trace_event_json`` renders a :class:`~repro.obs.spans.SpanTracer` as the
Chrome trace-event format (the JSON object form, ``{"traceEvents": [...]}``)
that both Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` load
directly.  Each simulated component becomes a named thread; spans become
complete ("X") events whose nesting Perfetto derives from their timing.
Simulation nanoseconds map to trace microseconds (the format's unit), so
one displayed microsecond is one simulated microsecond.

Metrics dumps reuse :mod:`repro.bench.export` for the JSON/CSV mechanics so
observability artifacts and benchmark artifacts stay consumable by the
same downstream tooling.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.atomicio import atomic_write_text
from repro.bench.export import to_csv, to_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer

TRACE_PROCESS_NAME = "repro simulation"
_PID = 1


def trace_event_json(tracer: SpanTracer) -> Dict[str, Any]:
    """The tracer's finished spans as a Chrome trace-event object."""
    components: Dict[str, int] = {}
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": TRACE_PROCESS_NAME},
    }]

    def tid_of(component: str) -> int:
        tid = components.get(component)
        if tid is None:
            tid = len(components) + 1
            components[component] = tid
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": component},
            })
        return tid

    for span in sorted(tracer.finished_spans(),
                       key=lambda s: (s.start_ns, s.span_id)):
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.message_id is not None:
            args["message_id"] = span.message_id
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_ns / 1e3,
            "dur": span.duration_ns / 1e3,
            "pid": _PID,
            "tid": tid_of(span.component),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": {"droppedSpans": tracer.dropped}}


def write_trace(path: str, tracer: SpanTracer, partial: bool = False) -> None:
    """Atomically write the trace; ``partial`` marks an interrupted run's
    flush in ``otherData`` (the envelope stays schema-valid)."""
    payload = trace_event_json(tracer)
    if partial:
        payload["otherData"]["partial"] = True
    atomic_write_text(path, json.dumps(payload, indent=1))


def validate_trace_events(payload: Any) -> int:
    """Check ``payload`` against the trace-event schema; returns the number
    of duration ("X") events.  Raises :class:`ValueError` on violations.

    This is the CI smoke check: it enforces the envelope shape plus the
    per-event fields Perfetto requires to render anything at all.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"trace must be a JSON object, got {type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace object lacks a traceEvents array")
    durations = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                raise ValueError(f"traceEvents[{i}] lacks {field!r}")
        phase = event["ph"]
        if phase == "X":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"traceEvents[{i}]: X event needs numeric ts")
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"traceEvents[{i}]: X event needs nonnegative dur, got {dur!r}")
            durations += 1
        elif phase == "M":
            if "args" not in event:
                raise ValueError(f"traceEvents[{i}]: metadata event needs args")
        else:
            raise ValueError(
                f"traceEvents[{i}]: unexpected phase {phase!r} "
                "(this exporter only emits X and M)")
    if durations == 0:
        raise ValueError("trace contains no duration events")
    return durations


def validate_trace_file(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace_events(json.load(handle))


# -- metrics dumps ---------------------------------------------------------------


def metrics_json(registry: MetricsRegistry) -> str:
    return to_json(registry.rows())


def metrics_csv(registry: MetricsRegistry) -> str:
    return to_csv(registry.rows())


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    atomic_write_text(path, metrics_json(registry))


def write_metrics_csv(path: str, registry: MetricsRegistry) -> None:
    atomic_write_text(path, metrics_csv(registry))


# -- timeline dumps --------------------------------------------------------------


def timeline_json(timeline) -> str:
    return json.dumps(timeline.to_dict(), indent=1, sort_keys=True)


def write_timeline_json(path: str, timeline, partial: bool = False) -> None:
    payload = timeline.to_dict()
    if partial:
        payload["partial"] = True
    atomic_write_text(
        path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
