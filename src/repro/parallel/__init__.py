"""repro.parallel — deterministic fan-out of sweeps plus a result cache.

The paper's evaluation is a family of independent sweeps (message sizes,
matrix sizes, HINT machines, chaos seeds); this package farms those
points over a process pool with strict ``jobs=N == jobs=1`` determinism
and never recomputes a point whose (source digest, config, seed)
fingerprint already has a cached result.  See :mod:`repro.parallel.sweep`
for the scheduler contract and :mod:`repro.parallel.cache` for the
fingerprinting rules.

Sweeps can additionally run *supervised*: :mod:`repro.parallel.journal`
gives every run an append-only crash-safe record of its points, and
:mod:`repro.parallel.supervise` retries crashed/hung workers, quarantines
poison points, degrades to serial when the pool dies, and turns a
journal back into a byte-identical ``--resume``.
"""

from repro.parallel.cache import (
    CACHE_ENV,
    ResultCache,
    canonical,
    clear_digest_memo,
    default_cache_dir,
    fingerprint,
    source_digest,
)
from repro.parallel.journal import (
    JOURNAL_ENV,
    JournalState,
    RunJournal,
    default_journal_dir,
    journal_path_for,
    load_journal,
    prune_journals,
)
from repro.parallel.supervise import (
    PoisonPoint,
    PoisonedSweepError,
    SuperviseConfig,
    SupervisionStats,
    SweepInterrupted,
)
from repro.parallel.sweep import (
    Point,
    PointFn,
    PointOutcome,
    derive_seed,
    run_sweep,
    sweep_values,
)

__all__ = [
    "CACHE_ENV",
    "JOURNAL_ENV",
    "JournalState",
    "Point",
    "PointFn",
    "PointOutcome",
    "PoisonPoint",
    "PoisonedSweepError",
    "ResultCache",
    "RunJournal",
    "SuperviseConfig",
    "SupervisionStats",
    "SweepInterrupted",
    "canonical",
    "clear_digest_memo",
    "default_cache_dir",
    "default_journal_dir",
    "derive_seed",
    "fingerprint",
    "journal_path_for",
    "load_journal",
    "prune_journals",
    "run_sweep",
    "source_digest",
    "sweep_values",
]
