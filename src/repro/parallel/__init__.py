"""repro.parallel — deterministic fan-out of sweeps plus a result cache.

The paper's evaluation is a family of independent sweeps (message sizes,
matrix sizes, HINT machines, chaos seeds); this package farms those
points over a process pool with strict ``jobs=N == jobs=1`` determinism
and never recomputes a point whose (source digest, config, seed)
fingerprint already has a cached result.  See :mod:`repro.parallel.sweep`
for the scheduler contract and :mod:`repro.parallel.cache` for the
fingerprinting rules.
"""

from repro.parallel.cache import (
    CACHE_ENV,
    ResultCache,
    canonical,
    clear_digest_memo,
    default_cache_dir,
    fingerprint,
    source_digest,
)
from repro.parallel.sweep import (
    Point,
    PointFn,
    PointOutcome,
    derive_seed,
    run_sweep,
    sweep_values,
)

__all__ = [
    "CACHE_ENV",
    "Point",
    "PointFn",
    "PointOutcome",
    "ResultCache",
    "canonical",
    "clear_digest_memo",
    "default_cache_dir",
    "derive_seed",
    "fingerprint",
    "run_sweep",
    "source_digest",
    "sweep_values",
]
