"""The parallel sweep scheduler: deterministic fan-out of sweep points.

Every figure in the reproduction is a family of *independent* points —
message sizes (Figs. 9-12), matrix sizes (Figs. 7-8), HINT machines
(Fig. 6), chaos seeds — so :func:`run_sweep` farms them over a process
pool and merges the results back as if they had run serially.  The
contract is **strict determinism**: ``jobs=N`` must produce byte-identical
output to ``jobs=1``.  Three mechanisms enforce it:

* **seeding** — every point's RNG seed is derived from
  ``(sweep_id, point_key, seed_base)`` by SHA-256, never from worker
  identity, scheduling order or wall time;
* **isolation** — each point runs inside its own message-id namespace
  (:func:`repro.network.message.message_id_namespace`) and, when
  observability is enabled, its own :func:`repro.obs.observe` session, so
  a point's spans/metrics do not depend on what ran before it in the
  same process;
* **ordered merge** — per-point metric registries and span sets come
  back as encoded payloads and are folded into the ambient session in
  *submission* order (span ids reallocated, message ids offset per
  point), regardless of completion order.

Workers are plain ``multiprocessing`` pool processes (fork where
available, spawn otherwise); ``fn`` must therefore be a module-level
callable and configs must pickle.  A :class:`~repro.parallel.cache.ResultCache`
short-circuits any point whose fingerprint (source digest + config +
seed) already has a stored result — including its captured metrics and
spans, so a warm-cache ``--trace`` run still writes the full trace.

Passing a :class:`~repro.parallel.supervise.SuperviseConfig` swaps the
optimistic ``pool.map`` for the supervised executor: every run is
journaled (:mod:`repro.parallel.journal`), worker crashes and hangs are
retried with backoff, repeatedly-failing points are quarantined and
reported via :class:`~repro.parallel.supervise.PoisonedSweepError`
*after* the healthy points finish, a dying pool degrades to in-process
serial execution, SIGINT/SIGTERM stop cleanly at a point boundary, and
``resume_from`` replays a previous journal so only unfinished points
recompute.  Because replayed payloads are byte-for-byte what the
interrupted run produced and the merge is in submission order, a resumed
run's artifacts are byte-identical to an uninterrupted run's — the same
contract as ``jobs=N``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.harness import load_harness_plan
from repro.obs import OBS, observe
from repro.parallel.cache import ResultCache, fingerprint, source_digest
from repro.parallel.journal import (
    RunJournal,
    journal_path_for,
    load_journal,
    prune_journals,
)
from repro.parallel.supervise import (
    PoisonPoint,
    PoisonedSweepError,
    SuperviseConfig,
    SupervisionStats,
    WorkerSupervisor,
    interrupt_guard,
    run_serial_supervised,
)

#: A sweep point: (hashable key with a deterministic repr, config kwargs).
Point = Tuple[Any, Dict[str, Any]]

#: Point functions take (config, seed) and return a picklable value.
PointFn = Callable[[Dict[str, Any], int], Any]


def derive_seed(sweep_id: str, key: Any, base: int = 0) -> int:
    """A 63-bit seed from (sweep id, point key, base seed), by SHA-256.

    Depends only on the identity of the point — not on worker ids,
    scheduling, or how many points ran before it — so a point is seeded
    identically at any ``jobs`` level, which is the root of the
    ``--jobs N == --jobs 1`` guarantee.
    """
    blob = repr((sweep_id, key, base)).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


@dataclass(frozen=True)
class PointOutcome:
    """One executed (or cache-/journal-replayed) sweep point.

    ``cached`` covers both cache hits and journal replays; a quarantined
    point comes back ``failed=True`` with its last error and ``value``
    ``None`` (and the sweep raises
    :class:`~repro.parallel.supervise.PoisonedSweepError`).
    """

    key: Any
    value: Any
    seed: int
    cached: bool
    failed: bool = False
    error: Optional[str] = None


def _execute_point(payload: Dict[str, Any]) -> Tuple[Any, Any, Any, Any]:
    """Run one point in isolation; module-level so pools can pickle it.

    Returns ``(value, metrics_payload, spans_payload, timeline_payload)``
    — the payloads are ``None`` unless capture (and, for the timeline,
    sampling) was requested.
    """
    from repro.network.message import message_id_namespace

    fn: PointFn = payload["fn"]
    config = payload["config"]
    seed = payload["seed"]
    if payload["capture"]:
        sample_interval = payload.get("sample_interval_ns")
        with message_id_namespace():
            with observe(span_limit=payload["span_limit"],
                         sample_interval_ns=sample_interval) as session:
                value = fn(config, seed)
        timeline = session.timeline.encode() if sample_interval else None
        return (value, session.metrics.encode(), session.tracer.encode(),
                timeline)
    with message_id_namespace():
        return fn(config, seed), None, None, None


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _slot_blob(slot: Tuple[Any, Any, Any, Any, bool, int]) -> bytes:
    """A slot's result payload pickled exactly as the executor would."""
    value, metrics, spans, timeline = slot[:4]
    return pickle.dumps((value, metrics, spans, timeline),
                        protocol=pickle.HIGHEST_PROTOCOL)


def run_sweep(sweep_id: str,
              points: Sequence[Point],
              fn: PointFn,
              *,
              jobs: int = 1,
              cache: Optional[ResultCache] = None,
              modules: Sequence[str] = (),
              seed_base: int = 0,
              capture: Optional[bool] = None,
              supervise: Optional[SuperviseConfig] = None,
              replay_backend: Optional[str] = None
              ) -> List[PointOutcome]:
    """Run every point of a sweep, possibly in parallel, deterministically.

    Args:
        sweep_id: stable identity of the sweep (part of seeds and cache
            fingerprints).
        points: ordered ``(key, config)`` pairs; ``key`` needs a
            deterministic ``repr`` and both must pickle.
        fn: module-level ``fn(config, seed) -> value``.
        jobs: worker processes; ``1`` runs in-process through the exact
            same per-point isolation and merge path.
        cache: optional :class:`ResultCache`; hits skip execution and
            replay the stored value plus any captured metrics/spans.
        modules: module/package names whose source digest keys the cache
            fingerprint (ignored without ``cache`` or a journal).
        seed_base: folded into every derived seed (e.g. a fault plan's
            base seed).
        capture: capture per-point metrics/spans and merge them into the
            ambient observability session; defaults to ``OBS.enabled``.
        supervise: run under the supervised executor — journaled,
            crash/hang-tolerant, resumable.  ``None`` keeps the legacy
            optimistic pool.
        replay_backend: trace-replay backend injected into every point's
            config (``config["replay_backend"]``) for point tasks that
            replay traces; "numpy" selects the vectorized engine, which
            stacks a worker's traces into padded array passes.  The
            fingerprint gains a backend key only when non-default, so
            pre-backend cache entries stay valid.

    Returns:
        One :class:`PointOutcome` per input point, in input order.

    Raises:
        PoisonedSweepError: some points were quarantined after retries
            (the exception carries every outcome, healthy ones included).
        SweepInterrupted: SIGINT/SIGTERM (or an injected
            ``run_interrupt`` fault) stopped the run; the journal named
            by the exception resumes it.
    """
    points = list(points)
    if capture is None:
        capture = OBS.enabled
    span_limit = OBS.tracer.limit if capture else 0
    # Sampling rides along with capture: when the ambient session has a
    # live timeline, each point samples at the same interval and its
    # encoded series merge back like metrics and spans do.
    sample_interval = (OBS.timeline.sample_interval_ns
                       if capture and OBS.timeline.enabled else None)
    if replay_backend is not None:
        from repro.memory.mp import REPLAY_BACKENDS
        if replay_backend not in REPLAY_BACKENDS:
            raise ValueError(f"unknown replay backend {replay_backend!r}; "
                             f"have {list(REPLAY_BACKENDS)}")
    stats: Optional[SupervisionStats] = None
    journaling = False
    if supervise is not None:
        stats = SupervisionStats()
        supervise.stats = stats
        journaling = bool(supervise.enable_journal or supervise.resume_from)
    need_fp = cache is not None or journaling
    digest = source_digest(modules) if need_fp else ""

    slots: List[Optional[Tuple[Any, Any, Any, Any, bool, int]]] = \
        [None] * len(points)
    prints: List[Optional[str]] = [None] * len(points)
    pending: List[Tuple[int, Dict[str, Any]]] = []
    for index, (key, config) in enumerate(points):
        seed = derive_seed(sweep_id, key, seed_base)
        if need_fp:
            prints[index] = fingerprint(sweep_id, key, config, seed, digest,
                                        capture=capture,
                                        sample_interval_ns=sample_interval,
                                        replay_backend=replay_backend)
        if cache is not None:
            hit, stored = cache.get(prints[index])
            if hit:
                slots[index] = (stored["value"], stored["metrics"],
                                stored["spans"], stored.get("timeline"),
                                True, seed)
                continue
        run_config = config
        if (replay_backend and replay_backend != "fast"
                and isinstance(config, dict)):
            run_config = dict(config)
            run_config["replay_backend"] = replay_backend
        pending.append((index, {"fn": fn, "config": run_config, "seed": seed,
                                "capture": capture,
                                "span_limit": span_limit,
                                "sample_interval_ns": sample_interval}))

    # Resume: points whose journaled fingerprint matches the current one
    # (same code, config, seed, capture mode) replay their stored
    # payloads; anything stale, missing or digest-corrupt recomputes.
    resume_state = None
    if supervise is not None and supervise.resume_from:
        resume_state = load_journal(supervise.resume_from)
        if (resume_state.sweep_id is not None
                and resume_state.sweep_id != sweep_id):
            raise ValueError(
                f"journal {supervise.resume_from} records sweep "
                f"{resume_state.sweep_id!r}, not {sweep_id!r}")
        still_pending = []
        for index, payload in pending:
            fp = prints[index]
            if fp is not None and resume_state.completed_fingerprint(
                    index) == fp:
                stored = resume_state.payload_for(index)
                if stored is not None:
                    value, metrics, spans, timeline = stored
                    slots[index] = (value, metrics, spans, timeline, True,
                                    payload["seed"])
                    stats.resumed += 1
                    continue
            still_pending.append((index, payload))
        pending = still_pending

    journal: Optional[RunJournal] = None
    errors: Dict[int, str] = {}
    try:
        if journaling:
            if supervise.resume_from:
                journal_path = supervise.resume_from
                journal = RunJournal(journal_path, append=True)
            else:
                journal_path = supervise.journal_path
                if journal_path is None:
                    prune_journals(sweep_id, supervise.journal_dir)
                    journal_path = journal_path_for(sweep_id,
                                                    supervise.journal_dir)
                journal = RunJournal(journal_path)
            supervise.journal_path_used = journal_path
            if resume_state is None:
                journal.record_plan(sweep_id, [key for key, _ in points],
                                    prints)
            else:
                journal.record_event("resume",
                                     replayed=stats.resumed,
                                     torn_lines=resume_state.torn_lines)
            # Journal cache hits too, so a later --resume replays them
            # without needing the cache to still agree.
            already = set(resume_state.done) if resume_state else set()
            for index, slot in enumerate(slots):
                if slot is not None and index not in already:
                    journal.record_done(index, prints[index],
                                        _slot_blob(slot), cached=True)

        if pending:
            payloads = [task for _, task in pending]
            if supervise is None:
                if jobs > 1 and len(pending) > 1:
                    with _pool_context().Pool(
                            processes=min(jobs, len(pending))) as pool:
                        # map() preserves input order whatever the
                        # completion order; chunksize=1 keeps long points
                        # load-balanced.
                        produced = pool.map(_execute_point, payloads,
                                            chunksize=1)
                else:
                    produced = [_execute_point(task) for task in payloads]
                for (index, task), (value, metrics, spans, timeline) in zip(
                        pending, produced):
                    slots[index] = (value, metrics, spans, timeline, False,
                                    task["seed"])
                    if cache is not None:
                        cache.put(prints[index],
                                  {"value": value, "metrics": metrics,
                                   "spans": spans, "timeline": timeline})
            else:
                harness_plan = load_harness_plan()
                with interrupt_guard() as flag:
                    if jobs > 1 and len(pending) > 1:
                        sup = WorkerSupervisor(
                            min(jobs, len(pending)), supervise, stats,
                            journal=journal, fingerprints=prints,
                            harness_plan=harness_plan, interrupt_flag=flag)
                        results = sup.run(pending)
                    else:
                        results = run_serial_supervised(
                            pending, supervise, stats, journal=journal,
                            fingerprints=prints, interrupt_flag=flag,
                            harness_plan=harness_plan)
                for index, task in pending:
                    status, body = results[index]
                    if status == "ok":
                        value, metrics, spans, timeline = body
                        slots[index] = (value, metrics, spans, timeline,
                                        False, task["seed"])
                        if cache is not None:
                            cache.put(prints[index],
                                      {"value": value, "metrics": metrics,
                                       "spans": spans,
                                       "timeline": timeline})
                    else:
                        errors[index] = body
                        slots[index] = (None, None, None, None, False,
                                        task["seed"])

        if journal is not None:
            journal.record_end(ok=not errors)
    finally:
        if journal is not None:
            journal.close()

    # Merge in submission order — the only order both jobs=1 and jobs=N
    # agree on — so span ids, message ids and metric accumulation are
    # identical at every jobs level.
    outcomes: List[PointOutcome] = []
    merge_obs = capture and OBS.enabled  # never write into the null session
    message_base = OBS.tracer.max_message_id() if merge_obs else 0
    for index, ((key, _), slot) in enumerate(zip(points, slots)):
        value, metrics, spans, timeline, cached, seed = slot
        failed = index in errors
        if merge_obs and not failed:
            if metrics:
                OBS.metrics.merge_encoded(metrics)
            if spans and spans["spans"]:
                message_base = OBS.tracer.merge_point(
                    spans, message_offset=message_base)
            if timeline:
                OBS.timeline.merge_point(timeline)
        outcomes.append(PointOutcome(key=key, value=value, seed=seed,
                                     cached=cached, failed=failed,
                                     error=errors.get(index)))
    if stats is not None:
        stats.publish()
    if errors:
        poisoned = [PoisonPoint(index=index, key=points[index][0],
                                attempts=supervise.retries + 1,
                                error=errors[index])
                    for index in sorted(errors)]
        raise PoisonedSweepError(
            poisoned, outcomes,
            journal_path=supervise.journal_path_used)
    return outcomes


def sweep_values(outcomes: Iterable[PointOutcome]) -> List[Any]:
    """Just the values, in point order."""
    return [outcome.value for outcome in outcomes]
