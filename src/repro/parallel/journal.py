"""The run journal: an append-only, crash-safe record of one sweep run.

Every supervised sweep (figures, chaos campaigns, bench) writes a
:class:`RunJournal` — a JSONL file whose records are appended one
``write``/``flush``/``fsync`` at a time, so the journal is consistent up
to the last completed record no matter where the process dies:

* ``plan`` — the sweep identity and every point's index, key and cache
  fingerprint, written before any point runs;
* ``start`` / ``done`` / ``failed`` — per-point attempt lifecycle; a
  ``done`` record carries the SHA-256 digest of the point's pickled
  result payload, which is stored in a sidecar directory
  (``<journal>.d/<fingerprint>.pkl``, written atomically *before* the
  record that references it, so a ``done`` record always points at a
  durable payload);
* ``event`` — supervision events (retries, timeouts, worker deaths,
  quarantines, degradations, interrupts, resumes);
* ``end`` — the run finished (``ok`` false when points were poisoned).

``--resume JOURNAL`` loads the journal back as a :class:`JournalState`:
points whose recorded fingerprint still matches the current sweep (same
code, config and seed) replay their stored payloads and are skipped;
everything else — including a torn trailing line from a crash mid-append
— is recomputed.  Because replayed payloads are byte-for-byte the ones
the interrupted run produced and the merge runs in submission order, a
resumed run's final artifacts are byte-identical to an uninterrupted
run's.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.atomicio import atomic_write_bytes
from repro.parallel.cache import default_cache_dir

JOURNAL_VERSION = "repro.journal/1"
JOURNAL_ENV = "REPRO_JOURNAL_DIR"

#: Journals kept per sweep slug when auto-naming (older ones are pruned).
KEEP_JOURNALS = 5


def default_journal_dir() -> str:
    """``$REPRO_JOURNAL_DIR``, else ``<cache dir>/journals``."""
    env = os.environ.get(JOURNAL_ENV)
    if env:
        return env
    return os.path.join(default_cache_dir(), "journals")


def _slug(sweep_id: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", sweep_id) or "sweep"


def journal_path_for(sweep_id: str, root: Optional[str] = None) -> str:
    """The auto journal path for one run of ``sweep_id`` (pid-unique, so
    concurrent runs of the same sweep never interleave records)."""
    root = root or default_journal_dir()
    return os.path.join(root, f"{_slug(sweep_id)}.{os.getpid()}.jsonl")


def prune_journals(sweep_id: str, root: Optional[str] = None,
                   keep: int = KEEP_JOURNALS) -> int:
    """Delete all but the ``keep`` newest journals of this sweep slug
    (and their payload sidecar dirs).  Returns how many were removed."""
    root = root or default_journal_dir()
    if not os.path.isdir(root):
        return 0
    prefix = _slug(sweep_id) + "."
    candidates = [os.path.join(root, name) for name in os.listdir(root)
                  if name.startswith(prefix) and name.endswith(".jsonl")]
    candidates.sort(key=lambda p: os.path.getmtime(p), reverse=True)
    removed = 0
    for stale in candidates[keep:]:
        try:
            os.unlink(stale)
            removed += 1
        except OSError:  # pragma: no cover - concurrent prune
            continue
        sidecar = stale + ".d"
        if os.path.isdir(sidecar):
            for entry in os.listdir(sidecar):
                try:
                    os.unlink(os.path.join(sidecar, entry))
                except OSError:  # pragma: no cover
                    pass
            try:
                os.rmdir(sidecar)
            except OSError:  # pragma: no cover
                pass
    return removed


def payload_digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class RunJournal:
    """Append-only JSONL journal of one sweep run (fsync per record)."""

    def __init__(self, path: str, append: bool = False):
        self.path = path
        self.sidecar = path + ".d"
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a" if append else "w", encoding="utf-8")
        self.records_written = 0

    # -- low-level ---------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """One atomic-enough record: a single line, flushed and fsync'd.

        A crash mid-write leaves at most one torn trailing line, which
        :func:`load_journal` tolerates by design.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- record vocabulary -------------------------------------------------

    def record_plan(self, sweep_id: str, keys: List[Any],
                    fingerprints: List[Optional[str]]) -> None:
        self.append({
            "type": "plan", "version": JOURNAL_VERSION, "t": time.time(),
            "sweep_id": sweep_id,
            "points": [{"i": i, "key": repr(key), "fp": fp}
                       for i, (key, fp) in enumerate(zip(keys,
                                                         fingerprints))],
        })

    def record_start(self, index: int, attempt: int) -> None:
        self.append({"type": "start", "i": index, "attempt": attempt,
                     "t": time.time()})

    def record_done(self, index: int, fp: Optional[str], blob: bytes,
                    cached: bool = False) -> None:
        """Persist the payload sidecar first, then the record naming it —
        a ``done`` line therefore always references durable bytes."""
        digest = payload_digest(blob)
        atomic_write_bytes(self._payload_path(fp, index), blob)
        self.append({"type": "done", "i": index, "fp": fp,
                     "digest": digest, "cached": cached, "t": time.time()})

    def record_failed(self, index: int, attempt: int, error: str) -> None:
        self.append({"type": "failed", "i": index, "attempt": attempt,
                     "error": error[:500], "t": time.time()})

    def record_event(self, kind: str, **fields: Any) -> None:
        record = {"type": "event", "kind": kind, "t": time.time()}
        record.update(fields)
        self.append(record)

    def record_end(self, ok: bool) -> None:
        self.append({"type": "end", "ok": ok, "t": time.time()})

    def _payload_path(self, fp: Optional[str], index: int) -> str:
        name = fp if fp else f"pt{index}"
        return os.path.join(self.sidecar, f"{name}.pkl")


@dataclass
class JournalState:
    """A loaded journal: what the interrupted run completed."""

    path: str
    sweep_id: Optional[str] = None
    #: index -> {"key": repr, "fp": fingerprint} from the plan record.
    plan: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: index -> the final ``done`` record (last one wins).
    done: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: index -> last ``failed`` error string for never-completed points.
    failed: Dict[int, str] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    ended_ok: Optional[bool] = None
    torn_lines: int = 0

    def completed_fingerprint(self, index: int) -> Optional[str]:
        record = self.done.get(index)
        return record.get("fp") if record else None

    def payload_for(self, index: int) -> Optional[Dict[str, Any]]:
        """The stored result payload of a completed point, or ``None`` if
        it is missing or fails its digest check (then it is recomputed)."""
        import pickle

        record = self.done.get(index)
        if record is None:
            return None
        fp = record.get("fp")
        name = fp if fp else f"pt{index}"
        path = os.path.join(self.path + ".d", f"{name}.pkl")
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        if payload_digest(blob) != record.get("digest"):
            return None
        try:
            return pickle.loads(blob)
        except Exception:
            return None


def load_journal(path: str) -> JournalState:
    """Parse a journal back into a :class:`JournalState`.

    Undecodable lines (a torn tail from a crash mid-append) are counted
    and skipped — the journal is trusted exactly as far as its complete
    records go.
    """
    state = JournalState(path=path)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                state.torn_lines += 1
                continue
            kind = record.get("type")
            if kind == "plan":
                state.sweep_id = record.get("sweep_id")
                for point in record.get("points", []):
                    state.plan[int(point["i"])] = {
                        "key": point.get("key"), "fp": point.get("fp")}
            elif kind == "done":
                index = int(record["i"])
                state.done[index] = record
                state.failed.pop(index, None)
            elif kind == "failed":
                index = int(record["i"])
                if index not in state.done:
                    state.failed[index] = record.get("error", "")
            elif kind == "event":
                state.events.append(record)
            elif kind == "end":
                state.ended_ok = bool(record.get("ok"))
    return state
