"""Multi-seed chaos campaigns: N fault-injection runs, one statistic.

A single chaos run answers "what happened under this seed"; a campaign
answers "what happens *typically*" by sweeping N derived seeds over the
same plan and aggregating goodput, delivery and recovery behaviour with
mean/p50/p99.  Seeds are derived per point from the campaign identity
(:func:`repro.parallel.sweep.derive_seed` with the plan's seed as base),
so a campaign is exactly reproducible and scales over ``--jobs`` workers
with byte-identical reports at any jobs level.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.parallel.cache import ResultCache
from repro.parallel.sweep import run_sweep

#: What one chaos run imports; the campaign cache fingerprint covers it.
CHAOS_SWEEP_MODULES = ("repro.sim", "repro.network", "repro.ni",
                       "repro.msg", "repro.faults", "repro.core")

#: Scalars aggregated across seeds (dotted paths into the report dict).
AGGREGATED = (
    "goodput_mb_s",
    "duration_ns",
    "delivered",
    "undelivered",
    "channel_stats.retransmissions",
    "channel_stats.timeouts",
    "channel_stats.reroutes",
)


def _lookup(report: Dict[str, Any], path: str) -> float:
    value: Any = report
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return 0.0
        value = value[part]
    return float(value)


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def aggregate(samples: Sequence[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    return {
        "mean": math.fsum(ordered) / len(ordered) if ordered else 0.0,
        "p50": _quantile(ordered, 0.5),
        "p99": _quantile(ordered, 0.99),
        "min": ordered[0] if ordered else 0.0,
        "max": ordered[-1] if ordered else 0.0,
    }


@dataclass
class CampaignReport:
    """N seeded chaos runs plus their aggregate statistics."""

    topology: str
    protocol: str
    base_seed: int
    seeds: List[int]
    runs: List[Dict[str, Any]]
    aggregates: Dict[str, Dict[str, float]] = field(default_factory=dict)
    timeline_bands: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def total_delivered(self) -> int:
        return int(sum(r.get("delivered", 0) for r in self.runs))

    @property
    def total_undelivered(self) -> int:
        return int(sum(r.get("undelivered", 0) for r in self.runs))

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "topology": self.topology,
            "protocol": self.protocol,
            "base_seed": self.base_seed,
            "seeds": list(self.seeds),
            "runs": [dict(r) for r in self.runs],
            "aggregates": {k: dict(v) for k, v in self.aggregates.items()},
        }
        # Only sampled campaigns carry bands, so unsampled reports keep
        # their pre-timeline byte format.
        if self.timeline_bands:
            payload["timeline_bands"] = {
                k: dict(v) for k, v in self.timeline_bands.items()}
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _campaign_point(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One campaign cell: a full chaos run under a derived seed.

    Module-level (pool workers pickle it) and lazy-importing — the chaos
    harness pulls in the topology and protocol layers, which must not
    load just because :mod:`repro.parallel` was imported.
    """
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan
    from repro.obs import OBS

    plan = FaultPlan.from_dict(config["plan"]).with_seed(seed)
    report = run_chaos(plan,
                       topology=config["topology"],
                       protocol=config["protocol"],
                       flows=config["flows"],
                       messages=config["messages"],
                       nbytes=config["nbytes"],
                       window=config["window"],
                       error_rate=config["error_rate"],
                       ack_error_rate=config.get("ack_error_rate"))
    run = report.to_dict()
    # Under a sampling session, embed this seed's per-name mean curves so
    # the campaign can band them across seeds (the ambient merge loses
    # per-seed separation — these compact curves keep it).
    if OBS.enabled and OBS.timeline.enabled and len(OBS.timeline):
        run["timeline"] = {
            name: {"interval_ns": interval,
                   "means": [round(m, 6) for m in means]}
            for name, (interval, means)
            in OBS.timeline.name_curves().items()}
    return run


def run_campaign(plan,
                 seeds: int,
                 *,
                 topology: str = "cluster",
                 protocol: str = "sliding",
                 flows: int = 4,
                 messages: int = 8,
                 nbytes: int = 1024,
                 window: int = 8,
                 error_rate: float = 0.0,
                 ack_error_rate: Optional[float] = None,
                 jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 supervise=None) -> CampaignReport:
    """Sweep ``seeds`` derived seeds of one chaos plan and aggregate."""
    if seeds < 1:
        raise ValueError(f"a campaign needs >= 1 seed, got {seeds}")
    config = {
        "plan": plan.to_dict(),
        "topology": topology,
        "protocol": protocol,
        "flows": flows,
        "messages": messages,
        "nbytes": nbytes,
        "window": window,
        "error_rate": error_rate,
    }
    # Only a decoupled ack path joins the config (and so the cache /
    # journal fingerprint); default campaigns keep their existing keys.
    if ack_error_rate is not None:
        config["ack_error_rate"] = ack_error_rate
    sweep_id = f"chaos-campaign:{topology}:{protocol}"
    points = [(("seed", index), config) for index in range(seeds)]
    outcomes = run_sweep(sweep_id, points, _campaign_point, jobs=jobs,
                         cache=cache, modules=CHAOS_SWEEP_MODULES,
                         seed_base=plan.seed, supervise=supervise)
    runs = [outcome.value for outcome in outcomes]
    report = CampaignReport(
        topology=topology, protocol=protocol, base_seed=plan.seed,
        seeds=[outcome.seed for outcome in outcomes], runs=runs)
    for path in AGGREGATED:
        report.aggregates[path] = aggregate([_lookup(r, path) for r in runs])
    report.timeline_bands = _timeline_bands(runs)
    return report


def _timeline_bands(runs: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-interval p50/p99 bands of each series name, across seeds.

    Every sampled run embeds per-name mean curves; seeds may have
    downsampled to different (power-of-two related) intervals, so finer
    curves are pairwise-coarsened to the coarsest before ranking each
    interval across seeds.
    """
    curves_by_name: Dict[str, List[Dict[str, Any]]] = {}
    for run in runs:
        for name, curve in (run.get("timeline") or {}).items():
            curves_by_name.setdefault(name, []).append(curve)
    bands: Dict[str, Dict[str, Any]] = {}
    for name, curves in sorted(curves_by_name.items()):
        target = max(c["interval_ns"] for c in curves)
        aligned = []
        for curve in curves:
            means = list(curve["means"])
            interval = curve["interval_ns"]
            while interval < target and means:
                means = [(means[i] + (means[i + 1]
                                      if i + 1 < len(means) else means[i]))
                         / 2.0
                         for i in range(0, len(means), 2)]
                interval *= 2.0
            aligned.append(means)
        length = max((len(m) for m in aligned), default=0)
        p50s, p99s = [], []
        for i in range(length):
            ordered = sorted(m[i] for m in aligned if i < len(m))
            p50s.append(round(_quantile(ordered, 0.5), 6))
            p99s.append(round(_quantile(ordered, 0.99), 6))
        bands[name] = {"interval_ns": target, "p50": p50s, "p99": p99s}
    return bands


def format_campaign(report: CampaignReport) -> str:
    """Human-readable campaign summary for the CLI."""
    from repro.bench.report import format_table

    rows = []
    for seed, run in zip(report.seeds, report.runs):
        stats = run.get("channel_stats", {})
        rows.append([
            seed,
            f"{run.get('delivered', 0)}/{run.get('delivered', 0) + run.get('undelivered', 0)}",
            f"{run.get('goodput_mb_s', 0.0):.2f}",
            f"{stats.get('retransmissions', 0):g}",
            f"{stats.get('reroutes', 0):g}",
            f"{run.get('duration_ns', 0.0) / 1e6:.3f}",
        ])
    table = format_table(
        ["seed", "delivered", "goodput MB/s", "retx", "reroutes", "ms"],
        rows,
        title=(f"Chaos campaign: {len(report.seeds)} seeds, "
               f"{report.topology} topology, {report.protocol} protocol"))
    lines = [table, ""]
    for path in AGGREGATED:
        agg = report.aggregates.get(path, {})
        lines.append(
            f"  {path:<28} mean={agg.get('mean', 0.0):.3f} "
            f"p50={agg.get('p50', 0.0):.3f} p99={agg.get('p99', 0.0):.3f}")
    if report.timeline_bands:
        lines.append("  timeline bands across seeds (per-interval):")
        for name, band in sorted(report.timeline_bands.items()):
            p50_peak = max(band["p50"], default=0.0)
            p99_peak = max(band["p99"], default=0.0)
            lines.append(f"    {name:<26} p50 peak={p50_peak:.3f} "
                         f"p99 peak={p99_peak:.3f}")
    return "\n".join(lines)
