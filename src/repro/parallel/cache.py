"""Content-addressed on-disk cache of sweep-point results.

A sweep point is a pure function of (code, configuration, seed), so its
result can be reused for as long as none of those change.  The cache key
is a fingerprint over:

* the package version and a **source digest** of the modules the point
  imports (editing any file under those packages changes the digest and
  forces recomputation);
* the canonicalised point configuration (dataclasses, dicts and
  sequences are normalised so dict ordering cannot leak into the key);
* the derived per-point seed, and whether observability capture was on
  (a captured payload carries metrics/spans a bare one does not).

Entries are pickle files under ``~/.cache/repro`` (override with
``--cache-dir`` or ``$REPRO_CACHE_DIR``), named by fingerprint and
written atomically, so concurrent sweeps can share one cache directory.
A corrupt or unreadable entry is treated as a miss and rewritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from importlib import import_module
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _package_version() -> str:
    try:
        import repro

        return getattr(repro, "__version__", "0")
    except Exception:  # pragma: no cover - repro is always importable here
        return "0"


_digest_memo: Dict[Tuple[str, ...], str] = {}


def source_digest(modules: Sequence[str]) -> str:
    """SHA-256 over the source files of ``modules`` (packages recurse).

    Files are folded in sorted path order and identified by their path
    *relative to the module root*, so the digest is stable across
    machines and checkouts but changes whenever any covered source file
    changes.  Memoised per process — a sweep computes it once.
    """
    key = tuple(sorted(set(modules)))
    cached = _digest_memo.get(key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for name in key:
        module = import_module(name)
        hasher.update(name.encode("utf-8"))
        roots = list(getattr(module, "__path__", []))
        if roots:
            for root in sorted(roots):
                for dirpath, dirnames, filenames in os.walk(root):
                    dirnames.sort()
                    for filename in sorted(filenames):
                        if not filename.endswith(".py"):
                            continue
                        path = os.path.join(dirpath, filename)
                        rel = os.path.relpath(path, root)
                        hasher.update(rel.encode("utf-8"))
                        with open(path, "rb") as handle:
                            hasher.update(handle.read())
        else:
            path = getattr(module, "__file__", None)
            if path and os.path.exists(path):
                hasher.update(os.path.basename(path).encode("utf-8"))
                with open(path, "rb") as handle:
                    hasher.update(handle.read())
    digest = hasher.hexdigest()
    _digest_memo[key] = digest
    return digest


def clear_digest_memo() -> None:
    """Forget memoised digests (tests that edit sources need this)."""
    _digest_memo.clear()


def canonical(value: Any) -> Any:
    """A deterministic, order-independent normal form for config values.

    Dataclasses become (type name, sorted field items), dicts sort their
    items, sequences normalise element-wise; anything else falls back to
    ``repr``.  Two configs that compare equal canonicalise identically,
    so the fingerprint cannot depend on dict insertion order.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return ("dataclass", type(value).__qualname__,
                tuple((f.name, canonical(getattr(value, f.name)))
                      for f in dataclasses.fields(value)))
    if isinstance(value, dict):
        return ("dict", tuple(sorted((str(k), canonical(v))
                                     for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(canonical(v) for v in value))
    if isinstance(value, (str, int, float, bool, bytes)) or value is None:
        return value
    return ("repr", repr(value))


def fingerprint(sweep_id: str, key: Any, config: Dict[str, Any], seed: int,
                digest: str, capture: bool = False,
                sample_interval_ns: Optional[float] = None,
                replay_backend: Optional[str] = None) -> str:
    """The content address of one sweep point's result.

    ``sample_interval_ns`` joins the blob only when sampling is on, so
    every pre-timeline fingerprint is unchanged — but a sampling run can
    never replay a cache entry that carries no timeline payload (or one
    sampled at a different interval).  ``replay_backend`` likewise joins
    only when non-default ("numpy"), keeping every pre-backend cache
    entry valid for default-backend sweeps; the equivalence contract
    makes backend-tagged results value-identical anyway, so a backend
    switch only ever costs a recompute, never correctness.
    """
    parts = [sweep_id, canonical(key), canonical(config), seed,
             bool(capture), digest, _package_version()]
    if sample_interval_ns:
        parts.append(("timeline", float(sample_interval_ns)))
    if replay_backend and replay_backend != "fast":
        parts.append(("backend", str(replay_backend)))
    blob = repr(tuple(parts))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-file cache keyed by fingerprint, with hit/miss accounting."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.quarantined = 0

    def path_for(self, fp: str) -> str:
        return os.path.join(self.root, fp[:2], fp + ".pkl")

    def get(self, fp: str) -> Tuple[bool, Any]:
        """(hit, value); unreadable or corrupt entries count as misses.

        A present-but-undecodable entry is additionally **quarantined**:
        renamed to ``<entry>.corrupt`` so it stops being retried on every
        sweep, and counted in :meth:`stats_line`.  A merely *absent*
        entry is a plain miss.
        """
        path = self.path_for(fp)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            self._quarantine(path)
            return False, None
        self.hits += 1
        return True, value

    def _quarantine(self, path: str) -> None:
        try:
            os.replace(path, path + ".corrupt")
            self.quarantined += 1
        except OSError:  # pragma: no cover - raced by a concurrent run
            pass

    def put(self, fp: str, value: Any) -> None:
        path = self.path_for(fp)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        # mkstemp opens O_EXCL, so runs sharing --cache-dir can never
        # write through the same temp file; each replace is whole-file.
        fd, tmp = tempfile.mkstemp(prefix=fp + ".", suffix=".tmp",
                                   dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)  # atomic: concurrent writers race safely
            self.puts += 1
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - already renamed
                pass
            raise

    def stats_line(self) -> str:
        line = (f"cache: {self.hits} hit(s), {self.misses} miss(es) "
                f"({self.root})")
        if self.quarantined:
            line += f", {self.quarantined} corrupt entr(ies) quarantined"
        return line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ResultCache {self.root} +{self.hits}/-{self.misses}>"
