"""Worker supervision: crash/hang detection, retries, quarantine, degrade.

PR 4's pool was optimistic: ``pool.map`` assumes every worker survives
every point.  This module replaces that execution strategy with a
supervised one — the merge contract of :mod:`repro.parallel.sweep` is
untouched, only *how* pending points get executed changes:

* each worker process runs a tiny task loop (own task queue, shared
  result queue) so the supervisor always knows **which** point a worker
  is holding;
* a worker that dies mid-point (OOM kill, segfault, injected
  ``worker_crash``) is detected by its exit, the point is retried with
  exponential backoff, and a replacement worker is spawned;
* a point that exceeds ``--point-timeout`` wall seconds is presumed hung
  (livelock, injected ``worker_hang``); its worker is terminated and the
  point retried;
* results carry a SHA-256 digest computed *inside* the worker; a
  mismatch at the supervisor (torn pipe, injected ``result_corrupt``)
  is treated as a failure and retried;
* a point that exhausts its retry budget is **quarantined** — a "poison
  point" reported at the end via :class:`PoisonedSweepError` instead of
  aborting the other points;
* if workers keep dying (respawn budget ``jobs * (retries + 2)``
  exhausted) the pool itself is declared dead and the remaining points
  **degrade to in-process serial execution**, where harness faults do
  not apply;
* SIGINT/SIGTERM are deferred to point boundaries, the journal is
  flushed, workers are shut down cleanly, and :class:`SweepInterrupted`
  (a ``KeyboardInterrupt`` carrying the journal path) propagates so the
  CLI can print a ``--resume`` hint and exit 130.

Every supervision event is journaled and counted in
:class:`SupervisionStats`, which publishes ``supervision.*`` counters
into the ambient :mod:`repro.obs` session so health specs and the HTML
report can gate on them.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.faults.harness import (
    HarnessFaultPlan,
    apply_worker_faults,
    corrupt_result,
    load_harness_plan,
)
from repro.parallel.journal import RunJournal, payload_digest

#: Supervisor poll interval (seconds) — also the result-drain timeout.
TICK_S = 0.02

#: index -> ("ok", payload-tuple) | ("failed", error string)
TaskResults = Dict[int, Tuple[str, Any]]


class SweepInterrupted(KeyboardInterrupt):
    """A sweep stopped cleanly on SIGINT/SIGTERM (journal flushed)."""

    def __init__(self, journal_path: Optional[str] = None):
        super().__init__("sweep interrupted")
        self.journal_path = journal_path


@dataclass(frozen=True)
class PoisonPoint:
    """A point that failed every attempt and was quarantined."""

    index: int
    key: Any
    attempts: int
    error: str


class PoisonedSweepError(RuntimeError):
    """The sweep finished, but some points were quarantined.

    ``outcomes`` holds every point (quarantined ones flagged
    ``failed=True``) so callers can still consume the survivors;
    ``journal_path`` is where a ``--resume`` can retry the poison.
    """

    def __init__(self, poisoned: List[PoisonPoint], outcomes=None,
                 journal_path: Optional[str] = None):
        names = ", ".join(repr(p.key) for p in poisoned[:4])
        more = f" (+{len(poisoned) - 4} more)" if len(poisoned) > 4 else ""
        super().__init__(
            f"{len(poisoned)} point(s) quarantined after retries: "
            f"{names}{more}")
        self.poisoned = poisoned
        self.outcomes = outcomes
        self.journal_path = journal_path


@dataclass
class SupervisionStats:
    """What the supervisor had to do to finish the run."""

    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    corrupt_results: int = 0
    quarantined: int = 0
    degraded: int = 0
    resumed: int = 0
    interrupted: bool = False

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "corrupt_results": self.corrupt_results,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
        }

    def any_events(self) -> bool:
        return bool(sum(self.as_dict().values()) or self.resumed
                    or self.interrupted)

    def publish(self) -> None:
        """Nonzero counts into the ambient metrics session (so health
        gates and reports see them).  ``resumed`` intentionally stays
        out — a resumed run's artifacts must stay byte-identical to an
        uninterrupted run's."""
        from repro.obs import OBS

        if not OBS.enabled:
            return
        for name, value in self.as_dict().items():
            if value:
                OBS.metrics.incr(f"supervision.{name}", value)

    def summary_line(self) -> str:
        parts = [f"{value} {name.replace('_', ' ')}"
                 for name, value in self.as_dict().items() if value]
        if self.resumed:
            parts.append(f"{self.resumed} resumed from journal")
        return "supervision: " + (", ".join(parts) if parts else "clean run")


@dataclass
class SuperviseConfig:
    """How a sweep should be supervised and journaled.

    ``stats`` and ``journal_path_used`` are *outputs*: :func:`run_sweep`
    fills them so the CLI can report what supervision did.
    """

    retries: int = 2
    point_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.1
    backoff_max_s: float = 2.0
    enable_journal: bool = True
    journal_path: Optional[str] = None
    journal_dir: Optional[str] = None
    resume_from: Optional[str] = None
    stats: Optional[SupervisionStats] = None
    journal_path_used: Optional[str] = None

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if (self.point_timeout_s is not None
                and self.point_timeout_s <= 0):
            raise ValueError("point-timeout must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Exponential backoff before retry ``attempt`` (1-based)."""
        return min(self.backoff_max_s,
                   self.backoff_base_s * (2.0 ** max(0, attempt - 1)))


@contextmanager
def interrupt_guard() -> Iterator[Dict[str, Optional[int]]]:
    """Defer SIGINT/SIGTERM to a flag the supervisor polls at point
    boundaries; a second signal raises immediately (panic exit)."""
    flag: Dict[str, Optional[int]] = {"sig": None}
    previous: Dict[int, Any] = {}

    def handler(signum, frame):
        if flag["sig"] is not None:
            raise KeyboardInterrupt
        flag["sig"] = signum

    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover - no tty etc.
                pass
    try:
        yield flag
    finally:
        for sig, prev in previous.items():
            signal.signal(sig, prev)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(task_queue, result_queue) -> None:
    """The pool worker loop: run points, return digested pickled results.

    SIGINT is ignored — shutdown belongs to the supervisor (sentinel or
    terminate), never to a tty Ctrl-C racing it.  Harness faults
    (``worker_crash``/``worker_hang``/``result_corrupt``) apply here and
    only here.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover
        pass
    try:
        plan = load_harness_plan()
    except Exception:  # pragma: no cover - malformed env plan
        plan = None
    from repro.parallel.sweep import _execute_point

    while True:
        item = task_queue.get()
        if item is None:
            break
        index, attempt, payload = item
        try:
            apply_worker_faults(plan, index, attempt)
            result = _execute_point(payload)
            blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            digest = payload_digest(blob)
            blob = corrupt_result(plan, index, attempt, blob)
            result_queue.put((index, attempt, "ok", blob, digest))
        except Exception as exc:
            result_queue.put((index, attempt, "error",
                              f"{type(exc).__name__}: {exc}", None))


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------


class _Worker:
    __slots__ = ("process", "tasks", "index", "attempt", "started_at")

    def __init__(self, process, tasks):
        self.process = process
        self.tasks = tasks
        self.index: Optional[int] = None
        self.attempt = 0
        self.started_at = 0.0

    @property
    def busy(self) -> bool:
        return self.index is not None


class WorkerSupervisor:
    """Run tasks over supervised worker processes; never lose a point."""

    def __init__(self, jobs: int, config: SuperviseConfig,
                 stats: SupervisionStats,
                 journal: Optional[RunJournal] = None,
                 fingerprints: Optional[List[Optional[str]]] = None,
                 harness_plan: Optional[HarnessFaultPlan] = None,
                 interrupt_flag: Optional[Dict[str, Any]] = None,
                 done_count: int = 0):
        self.jobs = max(1, jobs)
        self.config = config
        self.stats = stats
        self.journal = journal
        self.fingerprints = fingerprints or []
        self.harness_plan = harness_plan
        self.interrupt_flag = interrupt_flag or {"sig": None}
        self.done_count = done_count
        self.interrupt_after = (harness_plan.interrupt_after()
                                if harness_plan else None)
        self.max_respawns = max(4, self.jobs * (config.retries + 2))
        self.respawns = 0
        self.attempts: Dict[int, int] = {}
        self.results: TaskResults = {}
        self.payloads: Dict[int, Dict[str, Any]] = {}
        self._workers: Dict[int, _Worker] = {}
        self._next_wid = 0
        self._degraded = False

    def _fp(self, index: int) -> Optional[str]:
        return (self.fingerprints[index]
                if index < len(self.fingerprints) else None)

    # -- lifecycle ---------------------------------------------------------

    def run(self, tasks: List[Tuple[int, Dict[str, Any]]]) -> TaskResults:
        from repro.parallel.sweep import _pool_context

        self._ctx = _pool_context()
        self._result_queue = self._ctx.Queue()
        self._pending: List[Tuple[int, int, float]] = []  # (idx, att, when)
        for index, payload in tasks:
            self.payloads[index] = payload
            self.attempts[index] = 0
            self._pending.append((index, 0, 0.0))
        total = len(tasks)

        try:
            for _ in range(min(self.jobs, total)):
                self._spawn()
        except OSError:
            self._degrade("spawn failed")

        try:
            while len(self.results) < total and not self._degraded:
                self._check_interrupt()
                self._assign_ready()
                self._drain_one()
                self._check_workers()
        finally:
            self._shutdown_workers()

        if self._degraded and len(self.results) < total:
            remaining = [(index, self.payloads[index])
                         for index, _ in sorted(self.attempts.items())
                         if index not in self.results]
            run_serial_supervised(
                remaining, self.config, self.stats, journal=self.journal,
                fingerprints=self.fingerprints,
                interrupt_flag=self.interrupt_flag,
                harness_plan=self.harness_plan,
                done_count=self.done_count,
                attempts=self.attempts, results=self.results)
        return self.results

    def _spawn(self) -> None:
        tasks = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_worker_main, args=(tasks, self._result_queue),
            daemon=True, name=f"repro-sweep-worker-{self._next_wid}")
        process.start()
        self._workers[self._next_wid] = _Worker(process, tasks)
        self._next_wid += 1

    def _respawn_or_degrade(self) -> None:
        self.respawns += 1
        if self.respawns > self.max_respawns:
            self._degrade(f"respawn budget exhausted "
                          f"({self.respawns} respawns)")
            return
        try:
            self._spawn()
        except OSError:  # pragma: no cover - fork failure
            self._degrade("spawn failed")

    def _degrade(self, reason: str) -> None:
        if not self._degraded:
            self._degraded = True
            self.stats.degraded += 1
            if self.journal:
                self.journal.record_event("degrade", reason=reason)

    def _shutdown_workers(self) -> None:
        for worker in self._workers.values():
            if worker.process.is_alive():
                try:
                    worker.tasks.put(None)
                except Exception:  # pragma: no cover - broken pipe
                    pass
        deadline = time.monotonic() + 1.0
        for worker in self._workers.values():
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(0.5)
            if worker.process.is_alive():  # pragma: no cover - stubborn
                worker.process.kill()
                worker.process.join(0.5)
        self._workers.clear()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()

    # -- the loop's four duties --------------------------------------------

    def _check_interrupt(self) -> None:
        if self.interrupt_flag.get("sig") is not None:
            self._interrupt("signal")
        if (self.interrupt_after is not None
                and self.done_count >= self.interrupt_after):
            self._interrupt("harness fault run_interrupt")

    def _interrupt(self, reason: str) -> None:
        self.stats.interrupted = True
        if self.journal:
            self.journal.record_event("interrupt", reason=reason)
        raise SweepInterrupted(self.journal.path if self.journal else None)

    def _assign_ready(self) -> None:
        now = time.monotonic()
        for worker in self._workers.values():
            if worker.busy or not self._pending:
                continue
            slot = next((i for i, (_, _, when) in enumerate(self._pending)
                         if when <= now), None)
            if slot is None:
                continue
            index, attempt, _ = self._pending.pop(slot)
            worker.index = index
            worker.attempt = attempt
            worker.started_at = now
            if self.journal:
                self.journal.record_start(index, attempt)
            worker.tasks.put((index, attempt, self.payloads[index]))

    def _drain_one(self) -> None:
        try:
            msg = self._result_queue.get(timeout=TICK_S)
        except queue_module.Empty:
            return
        index, attempt, status, body, digest = msg
        # Stale delivery: the point was already resolved or retried after
        # a timeout kill — drop it, the current attempt owns the slot.
        if index in self.results or attempt != self.attempts[index]:
            return
        for worker in self._workers.values():
            if worker.index == index:
                worker.index = None
                break
        if status == "ok":
            if payload_digest(body) != digest:
                self.stats.corrupt_results += 1
                if self.journal:
                    self.journal.record_event("corrupt_result", i=index,
                                              attempt=attempt)
                self._failure(index, attempt, "corrupt result payload")
                return
            self._complete(index, pickle.loads(body), body)
        else:
            self._failure(index, attempt, body)

    def _complete(self, index: int, result: Any, blob: bytes) -> None:
        self.results[index] = ("ok", result)
        if self.journal:
            self.journal.record_done(index, self._fp(index), blob)
        self.done_count += 1
        self._check_interrupt()

    def _failure(self, index: int, attempt: int, error: str) -> None:
        if self.journal:
            self.journal.record_failed(index, attempt, error)
        next_attempt = attempt + 1
        if next_attempt <= self.config.retries:
            self.stats.retries += 1
            self.attempts[index] = next_attempt
            if self.journal:
                self.journal.record_event("retry", i=index,
                                          attempt=next_attempt)
            when = time.monotonic() + self.config.backoff_s(next_attempt)
            self._pending.append((index, next_attempt, when))
        else:
            self.stats.quarantined += 1
            if self.journal:
                self.journal.record_event("quarantine", i=index,
                                          error=error[:200])
            self.results[index] = ("failed", error)

    def _check_workers(self) -> None:
        now = time.monotonic()
        dead = []
        for wid, worker in self._workers.items():
            if not worker.process.is_alive():
                dead.append(wid)
                continue
            if (worker.busy and self.config.point_timeout_s is not None
                    and now - worker.started_at
                    > self.config.point_timeout_s):
                self.stats.timeouts += 1
                if self.journal:
                    self.journal.record_event(
                        "timeout", i=worker.index, attempt=worker.attempt,
                        after_s=round(now - worker.started_at, 3))
                index, attempt = worker.index, worker.attempt
                self._kill(worker)
                dead.append(wid)
                self._failure(index, attempt,
                              f"point timeout after "
                              f"{self.config.point_timeout_s:g}s")
        for wid in dead:
            worker = self._workers.pop(wid)
            worker.process.join(0.2)
            if worker.busy and worker.index not in self.results \
                    and self.attempts.get(worker.index) == worker.attempt:
                # Died mid-point (not a timeout kill we already retried).
                self.stats.worker_deaths += 1
                if self.journal:
                    self.journal.record_event(
                        "worker_death", i=worker.index,
                        attempt=worker.attempt,
                        exitcode=worker.process.exitcode)
                self._failure(worker.index, worker.attempt,
                              f"worker died (exit "
                              f"{worker.process.exitcode})")
            unresolved = len(self.results) < len(self.attempts)
            if unresolved and not self._degraded:
                self._respawn_or_degrade()

    @staticmethod
    def _kill(worker: _Worker) -> None:
        worker.process.terminate()
        worker.process.join(0.5)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(0.5)
        worker.index = None


def run_serial_supervised(tasks: List[Tuple[int, Dict[str, Any]]],
                          config: SuperviseConfig,
                          stats: SupervisionStats,
                          journal: Optional[RunJournal] = None,
                          fingerprints: Optional[List[Optional[str]]] = None,
                          interrupt_flag: Optional[Dict[str, Any]] = None,
                          harness_plan: Optional[HarnessFaultPlan] = None,
                          done_count: int = 0,
                          attempts: Optional[Dict[int, int]] = None,
                          results: Optional[TaskResults] = None,
                          ) -> TaskResults:
    """The in-process executor: same retry/quarantine/journal/interrupt
    semantics as the pool, minus worker faults (there are no workers).

    Also the degraded-mode continuation: ``attempts``/``results`` carry
    the pool's progress so retry budgets keep counting from where the
    pool left off.
    """
    from repro.parallel.sweep import _execute_point

    fingerprints = fingerprints or []
    interrupt_flag = interrupt_flag or {"sig": None}
    attempts = attempts if attempts is not None else {}
    results = results if results is not None else {}
    interrupt_after = (harness_plan.interrupt_after()
                       if harness_plan else None)

    def check_interrupt() -> None:
        reason = None
        if interrupt_flag.get("sig") is not None:
            reason = "signal"
        elif interrupt_after is not None and done_count >= interrupt_after:
            reason = "harness fault run_interrupt"
        if reason:
            stats.interrupted = True
            if journal:
                journal.record_event("interrupt", reason=reason)
            raise SweepInterrupted(journal.path if journal else None)

    for index, payload in tasks:
        if index in results:
            continue
        check_interrupt()
        attempt = attempts.get(index, 0)
        while True:
            if journal:
                journal.record_start(index, attempt)
            try:
                result = _execute_point(payload)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if journal:
                    journal.record_failed(index, attempt, error)
                attempt += 1
                attempts[index] = attempt
                if attempt <= config.retries:
                    stats.retries += 1
                    if journal:
                        journal.record_event("retry", i=index,
                                             attempt=attempt)
                    time.sleep(config.backoff_s(attempt))
                    continue
                stats.quarantined += 1
                if journal:
                    journal.record_event("quarantine", i=index,
                                         error=error[:200])
                results[index] = ("failed", error)
                break
            results[index] = ("ok", result)
            if journal:
                fp = (fingerprints[index]
                      if index < len(fingerprints) else None)
                blob = pickle.dumps(result,
                                    protocol=pickle.HIGHEST_PROTOCOL)
                journal.record_done(index, fp, blob)
            done_count += 1
            break
    check_interrupt()
    return results
