"""The MatMult benchmark (Figures 7 and 8).

The paper runs NASPAR MatMult in two versions, both with odd strides:

a) *naive* — C = A x B with both matrices in row order, so B is walked down
   columns (cache-hostile strided accesses);
b) *transposed* — B is transposed first and the product then streams both
   operands row-wise (runtime includes the transposition).

Runs are trace-driven: the exact address stream goes through the machine's
cache/coherence simulator and the CPU's pipeline/stall models supply the
compute time between references.  For large matrices the harness samples
rows — a cold-start prefix warms the caches, a steady-state window is
measured, and the total is extrapolated — which keeps pure-Python
simulation tractable without touching the shape of the curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.specs import MachineSpec
from repro.cpu.kernels import matmult_inner_step, matmult_store_step, transpose_step
from repro.memory.address import AddressMap
from repro.memory.trace_gen import (
    MemRef,
    matmult_naive_array,
    matmult_naive_trace,
    matmult_transposed_array,
    matmult_transposed_trace,
    odd_stride,
    transpose_array,
    transpose_trace,
)
from repro.node.node import NodeModel
from repro.obs import OBS

VERSIONS = ("naive", "transposed")


@dataclass(frozen=True)
class MatMultResult:
    """One MatMult measurement.

    Attributes:
        machine: machine key.
        n: matrix dimension.
        version: "naive" or "transposed".
        cpus: how many node CPUs ran their own multiply concurrently.
        mflops: per-CPU MFLOPS (the paper's Figure-7 metric).
        elapsed_ns: simulated wall time of the slowest CPU.
        sampled: True when row sampling/extrapolation was used.
    """

    machine: str
    n: int
    version: str
    cpus: int
    mflops: float
    elapsed_ns: float
    sampled: bool


def _per_access_compute_ns(node: NodeModel, n: int, version: str) -> float:
    """Average compute charge per trace reference for one (i, j) iteration."""
    inner = matmult_inner_step(node.cpu)
    store = matmult_store_step()
    mix = inner.mix.scaled(n) + store.mix
    refs = inner.memory_refs * n + store.memory_refs
    chain = inner.dependent_fp_chain * n
    return node.pipeline.per_access_compute_ns(mix, refs,
                                               dependent_fp_chain=chain)


def _transpose_compute_ns(node: NodeModel) -> float:
    unit = transpose_step()
    return node.pipeline.per_access_compute_ns(unit.mix, unit.memory_refs)


def _alloc_matrices(cpu_index: int, n: int,
                    elem_bytes: int = 8) -> Tuple[int, int, int, int]:
    """Page-aligned, per-CPU A, B, BT, C base addresses."""
    allocator = AddressMap(base=0x1000_0000 + cpu_index * 0x1000_0000).allocator()
    size = odd_stride(n) * odd_stride(n) * elem_bytes
    base_a = allocator.alloc("a", size)
    base_b = allocator.alloc("b", size)
    base_bt = allocator.alloc("bt", size)
    base_c = allocator.alloc("c", size)
    return base_a, base_b, base_bt, base_c


def _product_trace(version: str, bases: Tuple[int, int, int, int], n: int,
                   row_range: Optional[range],
                   backend: str = "fast") -> Iterator[MemRef]:
    array_native = backend == "numpy"
    base_a, base_b, base_bt, base_c = bases
    if version == "naive":
        gen = matmult_naive_array if array_native else matmult_naive_trace
        return gen(base_a, base_b, base_c, n, row_range=row_range)
    if version == "transposed":
        gen = (matmult_transposed_array if array_native
               else matmult_transposed_trace)
        return gen(base_a, base_bt, base_c, n, row_range=row_range)
    raise ValueError(f"version must be one of {VERSIONS}, got {version!r}")


def run_matmult(node: NodeModel, n: int, version: str = "naive",
                cpus: int = 1,
                sample_rows: Optional[Tuple[int, int]] = None,
                machine_key: str = "",
                replay_backend: str = "fast") -> MatMultResult:
    """Run n x n MatMult on ``cpus`` CPUs of ``node`` (one multiply each).

    ``sample_rows=(warmup, window)`` enables row sampling: ``warmup`` rows
    are replayed to populate the caches (their time discarded), ``window``
    rows are measured, and the per-row steady-state time is extrapolated
    to all n rows.  The transposition pass of the transposed version is
    always replayed in full (it is O(n^2)).

    ``replay_backend="numpy"`` generates array-native traces and replays
    them through the vectorized engine — identical results, counters and
    timing per the equivalence contract, just faster.
    """
    if n < 2:
        raise ValueError(f"matrix size must be >= 2, got {n}")
    if cpus < 1 or cpus > node.num_cpus:
        raise ValueError(f"cpus must be in 1..{node.num_cpus}, got {cpus}")
    node.reset()
    bases = [_alloc_matrices(cpu, n) for cpu in range(cpus)]
    compute_ns = _per_access_compute_ns(node, n, version)
    flops = 2.0 * n * n * n

    with OBS.label_scope(machine=machine_key or node.name, n=n,
                         version=version):
        transpose_ns = 0.0
        if version == "transposed":
            with OBS.label_scope(phase="transpose"):
                t_gen = (transpose_array if replay_backend == "numpy"
                         else transpose_trace)
                traces = [t_gen(b[1], b[2], n) for b in bases]
                transpose_ns = node.run_traces(
                    traces, _transpose_compute_ns(node),
                    backend=replay_backend).elapsed_ns

        with OBS.label_scope(phase="product"):
            if sample_rows is None or sample_rows[0] + sample_rows[1] >= n:
                traces = [_product_trace(version, b, n, None,
                                         backend=replay_backend)
                          for b in bases]
                product_ns = node.run_traces(
                    traces, compute_ns, backend=replay_backend).elapsed_ns
                sampled = False
            else:
                warmup, window = sample_rows
                if warmup < 1 or window < 1:
                    raise ValueError("sample_rows counts must be >= 1")
                warm = [_product_trace(version, b, n, range(warmup),
                                       backend=replay_backend)
                        for b in bases]
                warm_ns = node.run_traces(
                    warm, compute_ns, backend=replay_backend).elapsed_ns
                measured = [_product_trace(version, b, n,
                                           range(warmup, warmup + window),
                                           backend=replay_backend)
                            for b in bases]
                window_ns = node.run_traces(
                    measured, compute_ns, backend=replay_backend).elapsed_ns
                per_row_ns = window_ns / window
                # Cold rows are charged at the warmup rate, the rest at
                # steady state.
                product_ns = warm_ns + per_row_ns * (n - warmup)
                sampled = True

    elapsed = transpose_ns + product_ns
    mflops = flops / elapsed * 1e3 if elapsed > 0 else 0.0
    return MatMultResult(machine=machine_key or node.name, n=n,
                         version=version, cpus=cpus, mflops=mflops,
                         elapsed_ns=elapsed, sampled=sampled)


DEFAULT_SAMPLE = (2, 3)


def matmult_point(spec: MachineSpec, n: int, version: str = "naive",
                  cpus: int = 1, scale: int = 16,
                  sample_threshold: int = 48,
                  replay_backend: str = "fast") -> MatMultResult:
    """One Figure-7 cell: n x n MatMult on a fresh node of ``spec``."""
    node = spec.node(scale=scale)
    sample = DEFAULT_SAMPLE if n > sample_threshold else None
    return run_matmult(node, n, version=version, cpus=cpus,
                       sample_rows=sample, machine_key=spec.key,
                       replay_backend=replay_backend)


def matmult_sweep(spec: MachineSpec, sizes: Sequence[int],
                  version: str = "naive", cpus: int = 1, scale: int = 16,
                  sample_threshold: int = 48) -> List[MatMultResult]:
    """Figure-7 style sweep over matrix sizes on one machine.

    ``scale`` shrinks the caches (line sizes preserved); sizes above
    ``sample_threshold`` use row sampling.
    """
    return [matmult_point(spec, n, version=version, cpus=cpus, scale=scale,
                          sample_threshold=sample_threshold)
            for n in sizes]


def matmult_point_task(config: dict, seed: int) -> MatMultResult:
    """One (machine, size, version) cell as a sweep task (picklable)."""
    return matmult_point(config["spec"], config["n"],
                         version=config["version"], scale=config["scale"],
                         replay_backend=config.get("replay_backend", "fast"))


def smp_point_task(config: dict, seed: int) -> float:
    """One Figure-8 cell (dual-processor speedup) as a sweep task."""
    return smp_speedup(config["spec"], config["n"], config["version"],
                       scale=config["scale"])


def smp_speedup(spec: MachineSpec, n: int, version: str = "naive",
                scale: int = 16,
                sample_threshold: int = 48) -> float:
    """Figure-8 metric: throughput speedup when both CPUs run MatMult.

    Each CPU multiplies its own matrices; the speedup is
    ``cpus * T(1 CPU) / T(all CPUs)`` — 2.0 means no memory contention.
    """
    sample = DEFAULT_SAMPLE if n > sample_threshold else None
    single = run_matmult(spec.node(scale=scale), n, version=version, cpus=1,
                         sample_rows=sample, machine_key=spec.key)
    cpus = spec.num_cpus
    dual = run_matmult(spec.node(scale=scale), n, version=version, cpus=cpus,
                       sample_rows=sample, machine_key=spec.key)
    if dual.elapsed_ns <= 0:
        raise ArithmeticError("dual-CPU run reported zero time")
    return cpus * single.elapsed_ns / dual.elapsed_ns
