"""Benchmark implementations.

The three workloads of the paper's evaluation:

* :mod:`repro.bench.hint` — the HINT hierarchical-integration benchmark
  (QUIPS metric), Figure 6.
* :mod:`repro.bench.matmult` — the NASPAR MatMult kernel in its naive and
  transposed versions, Figures 7 and 8.
* :mod:`repro.bench.microbench` — the communication microbenchmarks
  (latency, gap, uni-/bidirectional bandwidth), Figures 9-12.

:mod:`repro.bench.report` renders results as the paper-shaped tables the
benchmark harness prints.
"""

from repro.bench.hint import HintPoint, HintResult, run_hint
from repro.bench.matmult import (
    MatMultResult,
    matmult_sweep,
    run_matmult,
    smp_speedup,
)
from repro.bench.collectives import CollectiveTiming, scaling_sweep
from repro.bench.microbench import CommPoint, comm_sweep
from repro.bench.plot import ascii_bars, ascii_xy
from repro.bench.report import format_table
from repro.bench.traffic import TrafficResult, pattern_comparison, run_pattern

__all__ = [
    "CollectiveTiming",
    "CommPoint",
    "HintPoint",
    "HintResult",
    "MatMultResult",
    "TrafficResult",
    "ascii_bars",
    "ascii_xy",
    "comm_sweep",
    "format_table",
    "matmult_sweep",
    "pattern_comparison",
    "run_matmult",
    "run_hint",
    "run_pattern",
    "scaling_sweep",
    "smp_speedup",
]
