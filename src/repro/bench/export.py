"""Structured export of benchmark results.

Turns the harness's result objects into JSON- and CSV-serialisable rows so
downstream tooling (plotting notebooks, regression dashboards) can consume
a run without parsing text tables.  Every exporter accepts the dataclasses
the benchmarks already produce.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence


def record(obj: Any) -> Dict[str, Any]:
    """One result object as a flat dict.

    Dataclasses export their fields; computed properties that matter for
    analysis (anything ending in ``_mb_s``, ``_factor``, ``fraction``) are
    included when present.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        row = dataclasses.asdict(obj)
    elif isinstance(obj, Mapping):
        row = dict(obj)
    else:
        raise TypeError(f"cannot export {type(obj).__name__}")
    for name in dir(type(obj)):
        if name.startswith("_"):
            continue
        attr = getattr(type(obj), name, None)
        if isinstance(attr, property):
            try:
                value = getattr(obj, name)
            except Exception:
                continue
            if isinstance(value, (int, float, str, bool)):
                row[name] = value
    return {key: _plain(value) for key, value in row.items()
            if _is_plain(value)}


def _plain(value: Any) -> Any:
    if isinstance(value, float):
        return value
    return value


def _is_plain(value: Any) -> bool:
    return isinstance(value, (int, float, str, bool, type(None)))


def to_json(results: Iterable[Any], indent: int = 2) -> str:
    """A list of result objects as a JSON array."""
    return json.dumps([record(r) for r in results], indent=indent,
                      sort_keys=True)


def to_csv(results: Sequence[Any]) -> str:
    """A list of result objects as CSV (union of columns, sorted)."""
    rows = [record(r) for r in results]
    if not rows:
        raise ValueError("nothing to export")
    columns: List[str] = sorted({key for row in rows for key in row})
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_json(path: str, results: Iterable[Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(results))


def write_csv(path: str, results: Sequence[Any]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(to_csv(results))
