"""Plain-text rendering of benchmark results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting consistent across tables and figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_series(series: Mapping[str, Sequence[float]],
                  x_values: Sequence[object], x_label: str,
                  title: Optional[str] = None) -> str:
    """Render a figure as a table: one x column, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            row.append(series[name][i])
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_config_table(columns: Sequence[Dict[str, str]],
                        title: str = "Table 1. Configuration of test systems",
                        ) -> str:
    """Render Table-1-style configuration columns (attributes as rows)."""
    if not columns:
        raise ValueError("need at least one machine column")
    attributes = list(columns[0].keys())
    headers = ["" ] + [col["System Type"] for col in columns]
    rows = []
    for attr in attributes:
        rows.append([attr] + [col.get(attr, "-") for col in columns])
    return format_table(headers, rows, title=title)
