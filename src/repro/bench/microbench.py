"""Communication microbenchmarks (Figures 9-12).

For PowerMANNA the numbers come from the full discrete-event simulation
(driver + link interface + links + crossbar); for BIP/FM they come from the
calibrated comparator models, mirroring the paper's use of published
measurements.  One :class:`CommPoint` is one (system, size) cell of a
figure.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.comparators.models import bip_model, fm_model
from repro.msg.api import CommWorld, build_cluster_world
from repro.ni.dma import DmaNicModel
from repro.ni.driver import DriverConfig
from repro.obs import OBS

#: What a PowerMANNA comm point imports — the cache fingerprint set.
COMM_SWEEP_MODULES = ("repro.sim", "repro.network", "repro.ni", "repro.msg",
                      "repro.node", "repro.core", "repro.comparators",
                      "repro.bench.microbench")

DEFAULT_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
                 8192, 16384, 32768, 65536)
SHORT_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class CommPoint:
    """One (system, message-size) measurement."""

    system: str
    nbytes: int
    latency_us: Optional[float] = None
    gap_us: Optional[float] = None
    unidir_mb_s: Optional[float] = None
    bidir_mb_s: Optional[float] = None


def _fresh_world(fifo_words: int = 32,
                 driver_config: DriverConfig = DriverConfig()) -> CommWorld:
    _, world = build_cluster_world(fifo_words=fifo_words,
                                   driver_config=driver_config)
    return world


def _streams_count(nbytes: int) -> int:
    """Back-to-back message count: enough for steady state, bounded for
    simulation cost on large messages."""
    if nbytes <= 1024:
        return 12
    if nbytes <= 8192:
        return 8
    return 4


def measure_point(world, a: int, b: int, nbytes: int,
                  metric: str) -> CommPoint:
    """One metric at one size between nodes ``a`` and ``b`` of ``world``.

    ``world`` is anything with the CommWorld measurement surface — a
    flit-level :class:`CommWorld` or a flow-level
    :class:`~repro.network.topo.flow.FlowWorld`.
    """
    with OBS.label_scope(system="PowerMANNA", metric=metric):
        if metric == "latency":
            value = world.one_way_latency_ns(a, b, nbytes) / 1e3
            return CommPoint("PowerMANNA", nbytes, latency_us=value)
        if metric == "gap":
            value = world.send_gap_ns(a, b, nbytes,
                                      count=_streams_count(nbytes)) / 1e3
            return CommPoint("PowerMANNA", nbytes, gap_us=value)
        if metric == "unidir":
            value = world.unidirectional_mb_s(a, b, nbytes,
                                              count=_streams_count(nbytes))
            return CommPoint("PowerMANNA", nbytes, unidir_mb_s=value)
        if metric == "bidir":
            value = world.bidirectional_mb_s(
                a, b, nbytes, rounds=max(2, _streams_count(nbytes) // 2))
            return CommPoint("PowerMANNA", nbytes, bidir_mb_s=value)
    raise ValueError(f"unknown metric {metric!r}")


def powermanna_point(nbytes: int, metric: str,
                     fifo_words: int = 32,
                     driver_config: DriverConfig = DriverConfig()) -> CommPoint:
    """Measure one metric at one size on a fresh 8-node cluster.

    A fresh world per point keeps measurements independent (no warm FIFO
    or in-flight state leaks between sizes).
    """
    return measure_point(_fresh_world(fifo_words, driver_config), 0, 1,
                         nbytes, metric)


def topology_point(spec_dict: Dict[str, Any], nbytes: int, metric: str,
                   fifo_words: int = 32,
                   driver_config: DriverConfig = DriverConfig()) -> CommPoint:
    """One metric at one size on a fresh world built from a topology spec.

    The measured pair is the spec world's :meth:`far_pair` — a worst-case
    route — so figures across topologies compare like for like.  On the
    default cluster spec the pair degenerates to ``(0, 1)``, matching
    :func:`powermanna_point`.
    """
    from repro.msg.api import build_topology_world
    from repro.network.topo import TopologySpec

    spec = TopologySpec.from_dict(spec_dict)
    _, world = build_topology_world(spec, fifo_words=fifo_words,
                                    driver_config=driver_config)
    a, b = world.far_pair()
    return measure_point(world, a, b, nbytes, metric)


def comparator_point(model: DmaNicModel, nbytes: int) -> CommPoint:
    return CommPoint(
        system=model.name,
        nbytes=nbytes,
        latency_us=model.one_way_latency_ns(nbytes) / 1e3,
        gap_us=model.gap_ns(nbytes) / 1e3,
        unidir_mb_s=model.unidirectional_mb_s(nbytes),
        bidir_mb_s=model.bidirectional_mb_s(nbytes))


def _comm_point_task(config: Dict[str, Any], seed: int) -> CommPoint:
    """One PowerMANNA point as a sweep task (module-level: pools pickle it).

    When the sweep carries a fault plan, the plan is armed *per point*
    with the derived seed, so a point's fault draws depend only on its
    own identity — never on how many draws earlier points consumed.
    """
    plan_dict = config.get("fault_plan")
    if plan_dict is not None:
        from repro.faults import FaultPlan, inject

        fault_ctx = inject(FaultPlan.from_dict(plan_dict).with_seed(seed))
    else:
        fault_ctx = contextlib.nullcontext()
    with fault_ctx:
        spec_dict = config.get("topology")
        if spec_dict is not None:
            return topology_point(spec_dict, config["nbytes"],
                                  config["metric"], config["fifo_words"],
                                  config["driver_config"])
        return powermanna_point(config["nbytes"], config["metric"],
                                config["fifo_words"],
                                config["driver_config"])


def comm_sweep(metric: str, sizes: Sequence[int] = DEFAULT_SIZES,
               fifo_words: int = 32,
               driver_config: DriverConfig = DriverConfig(),
               include_comparators: bool = True,
               jobs: int = 1,
               cache=None,
               fault_plan=None,
               supervise=None,
               topology=None,
               ) -> Dict[str, List[CommPoint]]:
    """One figure's worth of data: metric across sizes and systems.

    ``metric`` is one of "latency" (Fig. 9), "gap" (Fig. 10), "unidir"
    (Fig. 11), "bidir" (Fig. 12).  The PowerMANNA points (the expensive
    discrete-event runs) fan out over ``jobs`` workers and consult
    ``cache``; the BIP/FM comparator points are closed-form arithmetic
    and stay in-process.  ``fault_plan`` (a :class:`repro.faults.FaultPlan`)
    is armed per point with a seed derived from the point's identity.

    ``topology`` (a :class:`~repro.network.topo.spec.TopologySpec`) runs
    the PowerMANNA points on that fabric — at flit or flow fidelity per
    the spec — measuring its far pair.  When ``None`` the points use the
    default 8-node cluster and their cache fingerprints are exactly what
    they were before topologies existed (no spurious invalidation).
    """
    from repro.parallel import run_sweep, sweep_values

    plan_dict = fault_plan.to_dict() if fault_plan is not None else None
    points = []
    for n in sizes:
        config = {"metric": metric, "nbytes": n,
                  "fifo_words": fifo_words,
                  "driver_config": driver_config,
                  "fault_plan": plan_dict}
        if topology is not None:
            config["topology"] = topology.to_dict()
        points.append(((metric, n), config))
    outcomes = run_sweep(f"comm:{metric}", points, _comm_point_task,
                         jobs=jobs, cache=cache, modules=COMM_SWEEP_MODULES,
                         seed_base=fault_plan.seed if fault_plan else 0,
                         supervise=supervise)
    result: Dict[str, List[CommPoint]] = {}
    result["PowerMANNA"] = sweep_values(outcomes)
    if include_comparators:
        for model in (bip_model(), fm_model()):
            result[model.name] = [comparator_point(model, n) for n in sizes]
    return result


def metric_value(point: CommPoint, metric: str) -> float:
    value = {
        "latency": point.latency_us,
        "gap": point.gap_us,
        "unidir": point.unidir_mb_s,
        "bidir": point.bidir_mb_s,
    }[metric]
    if value is None:
        raise ValueError(f"point {point} lacks metric {metric!r}")
    return value
