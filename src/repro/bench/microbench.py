"""Communication microbenchmarks (Figures 9-12).

For PowerMANNA the numbers come from the full discrete-event simulation
(driver + link interface + links + crossbar); for BIP/FM they come from the
calibrated comparator models, mirroring the paper's use of published
measurements.  One :class:`CommPoint` is one (system, size) cell of a
figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.comparators.models import bip_model, fm_model
from repro.msg.api import CommWorld, build_cluster_world
from repro.ni.dma import DmaNicModel
from repro.ni.driver import DriverConfig
from repro.obs import OBS

DEFAULT_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
                 8192, 16384, 32768, 65536)
SHORT_SIZES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class CommPoint:
    """One (system, message-size) measurement."""

    system: str
    nbytes: int
    latency_us: Optional[float] = None
    gap_us: Optional[float] = None
    unidir_mb_s: Optional[float] = None
    bidir_mb_s: Optional[float] = None


def _fresh_world(fifo_words: int = 32,
                 driver_config: DriverConfig = DriverConfig()) -> CommWorld:
    _, world = build_cluster_world(fifo_words=fifo_words,
                                   driver_config=driver_config)
    return world


def _streams_count(nbytes: int) -> int:
    """Back-to-back message count: enough for steady state, bounded for
    simulation cost on large messages."""
    if nbytes <= 1024:
        return 12
    if nbytes <= 8192:
        return 8
    return 4


def powermanna_point(nbytes: int, metric: str,
                     fifo_words: int = 32,
                     driver_config: DriverConfig = DriverConfig()) -> CommPoint:
    """Measure one metric at one size on a fresh 8-node cluster.

    A fresh world per point keeps measurements independent (no warm FIFO
    or in-flight state leaks between sizes).
    """
    world = _fresh_world(fifo_words, driver_config)
    with OBS.label_scope(system="PowerMANNA", metric=metric):
        if metric == "latency":
            value = world.one_way_latency_ns(0, 1, nbytes) / 1e3
            return CommPoint("PowerMANNA", nbytes, latency_us=value)
        if metric == "gap":
            value = world.send_gap_ns(0, 1, nbytes,
                                      count=_streams_count(nbytes)) / 1e3
            return CommPoint("PowerMANNA", nbytes, gap_us=value)
        if metric == "unidir":
            value = world.unidirectional_mb_s(0, 1, nbytes,
                                              count=_streams_count(nbytes))
            return CommPoint("PowerMANNA", nbytes, unidir_mb_s=value)
        if metric == "bidir":
            value = world.bidirectional_mb_s(
                0, 1, nbytes, rounds=max(2, _streams_count(nbytes) // 2))
            return CommPoint("PowerMANNA", nbytes, bidir_mb_s=value)
    raise ValueError(f"unknown metric {metric!r}")


def comparator_point(model: DmaNicModel, nbytes: int) -> CommPoint:
    return CommPoint(
        system=model.name,
        nbytes=nbytes,
        latency_us=model.one_way_latency_ns(nbytes) / 1e3,
        gap_us=model.gap_ns(nbytes) / 1e3,
        unidir_mb_s=model.unidirectional_mb_s(nbytes),
        bidir_mb_s=model.bidirectional_mb_s(nbytes))


def comm_sweep(metric: str, sizes: Sequence[int] = DEFAULT_SIZES,
               fifo_words: int = 32,
               driver_config: DriverConfig = DriverConfig(),
               include_comparators: bool = True,
               ) -> Dict[str, List[CommPoint]]:
    """One figure's worth of data: metric across sizes and systems.

    ``metric`` is one of "latency" (Fig. 9), "gap" (Fig. 10), "unidir"
    (Fig. 11), "bidir" (Fig. 12).
    """
    result: Dict[str, List[CommPoint]] = {}
    result["PowerMANNA"] = [
        powermanna_point(n, metric, fifo_words, driver_config) for n in sizes]
    if include_comparators:
        for model in (bip_model(), fm_model()):
            result[model.name] = [comparator_point(model, n) for n in sizes]
    return result


def metric_value(point: CommPoint, metric: str) -> float:
    value = {
        "latency": point.latency_us,
        "gap": point.gap_us,
        "unidir": point.unidir_mb_s,
        "bidir": point.bidir_mb_s,
    }[metric]
    if value is None:
        raise ValueError(f"point {point} lacks metric {metric!r}")
    return value
