"""Collective-operation timing on the simulated machine.

The optimised user-level MPI of paper Section 4 exists to make exactly
these fast: with a 2.75 us one-way latency and log2(N) algorithms, an
8-node barrier should land in the tens of microseconds.  The harness
times barrier, broadcast and reduce over the rank count and message size,
and the bench asserts the logarithmic scaling that the dissemination/
binomial algorithms promise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.msg.api import build_cluster_world
from repro.msg.mpi import MiniMpi, RankContext


@dataclass(frozen=True)
class CollectiveTiming:
    """One collective's measured time.

    Attributes:
        operation: "barrier", "broadcast" or "reduce".
        ranks: participating rank count.
        nbytes: payload per message (0 for barrier).
        elapsed_ns: start to last rank finished.
    """

    operation: str
    ranks: int
    nbytes: int
    elapsed_ns: float


def _fresh_mpi(ranks: int) -> MiniMpi:
    _, world = build_cluster_world()
    return MiniMpi(world, ranks=list(range(ranks)))


def time_barrier(ranks: int, repetitions: int = 3) -> CollectiveTiming:
    mpi = _fresh_mpi(ranks)

    def program(ctx: RankContext):
        yield from ctx.barrier(tag=-900)      # warmup
        start = ctx.now
        for rep in range(repetitions):
            yield from ctx.barrier(tag=-901 - rep)
        return (ctx.now - start) / repetitions

    per_rank = mpi.run(program)
    return CollectiveTiming("barrier", ranks, 0, max(per_rank))


def time_broadcast(ranks: int, nbytes: int = 1024) -> CollectiveTiming:
    mpi = _fresh_mpi(ranks)

    def program(ctx: RankContext):
        yield from ctx.barrier(tag=-910)
        start = ctx.now
        yield from ctx.broadcast(root=0, nbytes=nbytes, tag=-911)
        return ctx.now - start

    per_rank = mpi.run(program)
    return CollectiveTiming("broadcast", ranks, nbytes, max(per_rank))


def time_reduce(ranks: int, nbytes: int = 1024) -> CollectiveTiming:
    mpi = _fresh_mpi(ranks)

    def program(ctx: RankContext):
        yield from ctx.barrier(tag=-920)
        start = ctx.now
        yield from ctx.reduce_tree(root=0, nbytes=nbytes, tag=-921)
        return ctx.now - start

    per_rank = mpi.run(program)
    return CollectiveTiming("reduce", ranks, nbytes, max(per_rank))


def scaling_sweep(rank_counts: Sequence[int] = (2, 4, 8),
                  nbytes: int = 1024,
                  ) -> Dict[str, List[CollectiveTiming]]:
    """All three collectives across rank counts (fresh machine each run)."""
    return {
        "barrier": [time_barrier(r) for r in rank_counts],
        "broadcast": [time_broadcast(r, nbytes) for r in rank_counts],
        "reduce": [time_reduce(r, nbytes) for r in rank_counts],
    }
