"""ASCII plotting for figures in a terminal.

Keeps the examples and the bench harness free of plotting dependencies:
log-log scatter charts and horizontal bar charts rendered as text.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Tuple


def ascii_xy(series: Mapping[str, Sequence[Tuple[float, float]]],
             width: int = 64, height: int = 16,
             log_x: bool = True, log_y: bool = True,
             glyphs: Optional[Dict[str, str]] = None,
             caption: str = "") -> str:
    """Scatter chart of one or more (x, y) series.

    Each series gets a one-character glyph (first letter by default);
    later series overwrite earlier ones on collisions.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("chart too small to render")
    glyphs = dict(glyphs or {})
    used = set(glyphs.values())
    for name in series:
        if name not in glyphs:
            candidate = next((ch for ch in name if ch.isalnum()), "*")
            while candidate in used:
                candidate = chr(ord(candidate) + 1)
            glyphs[name] = candidate
            used.add(candidate)

    def tx(value: float, log: bool) -> float:
        if log:
            if value <= 0:
                raise ValueError("log axis requires positive values")
            return math.log10(value)
        return value

    points = []
    for name, data in series.items():
        for x, y in data:
            points.append((tx(x, log_x), tx(y, log_y), glyphs[name]))
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = int((x - x0) / (x1 - x0 + 1e-12) * (width - 1))
        row = height - 1 - int((y - y0) / (y1 - y0 + 1e-12) * (height - 1))
        grid[row][col] = glyph
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    legend = "  ".join(f"{glyph}={name}" for name, glyph in glyphs.items())
    axes = (f"x: {'log ' if log_x else ''}[{10**x0 if log_x else x0:g}"
            f" .. {10**x1 if log_x else x1:g}]  "
            f"y: {'log ' if log_y else ''}[{10**y0 if log_y else y0:g}"
            f" .. {10**y1 if log_y else y1:g}]")
    lines.append(axes)
    lines.append(legend)
    if caption:
        lines.append(caption)
    return "\n".join(lines)


def ascii_bars(values: Mapping[str, float], width: int = 40,
               unit: str = "") -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        raise ValueError("need at least one value")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar chart needs a positive maximum")
    label_width = max(len(name) for name in values)
    lines = []
    for name, value in values.items():
        filled = int(value / peak * width)
        lines.append(f"{name.ljust(label_width)}  "
                     f"{'#' * filled}{' ' if filled else ''}"
                     f"{value:g}{unit}")
    return "\n".join(lines)
