"""The HINT benchmark (Figure 6).

HINT (Gustafson & Snell, ref [11]) approximates the integral of
(1-x)/(1+x) over [0, 1] by hierarchical interval refinement: at each step
the interval with the largest removable error is split in two, tightening
the upper and lower Riemann bounds.  Quality is the reciprocal of the
bound gap; the reported metric is QUIPS — quality improvements per second —
plotted against runtime.  Because memory grows linearly with quality, the
QUIPS-versus-time curve maps out the memory hierarchy: the curve drops as
the interval table outgrows the L1, then the L2.

The *computation* here is the real algorithm (both a floating-point DOUBLE
and a fixed-point INT variant).  The *timing* is the reproduction's model:
each refinement scans the live interval records (the paper: data "accessed
in more complex ways than just a consecutive order"), and the scan's
address trace is replayed through the machine's cache simulator at
checkpoint sizes.  The Python implementation selects the split interval
with a heap for speed but charges time for the scan the benchmark actually
performs; see DESIGN.md.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.specs import MachineSpec
from repro.cpu.kernels import hint_scan_step, hint_split_step
from repro.memory.address import AddressMap
from repro.memory.trace_gen import hint_sweep_trace
from repro.node.node import NodeModel

RECORD_BYTES = 32  # x0, x1, f(x0), f(x1) — 4 words per interval record
_FIXED_POINT_SCALE = 1 << 30


@dataclass(frozen=True)
class HintPoint:
    """One checkpoint of the QUIPS curve."""

    time_s: float
    quips: float
    subintervals: int
    quality: float


@dataclass(frozen=True)
class HintResult:
    """A full HINT run on one machine.

    Attributes:
        machine: machine key.
        data_type: "double" or "int".
        points: the QUIPS-versus-time curve.
        peak_quips: maximum of the curve (cache-resident performance).
        final_quips: last point (memory-bound performance).
    """

    machine: str
    data_type: str
    points: Tuple[HintPoint, ...]

    @property
    def peak_quips(self) -> float:
        return max(p.quips for p in self.points)

    @property
    def final_quips(self) -> float:
        return self.points[-1].quips

    def quips_at_subintervals(self, m: int) -> float:
        best: Optional[HintPoint] = None
        for point in self.points:
            if point.subintervals <= m:
                best = point
        if best is None:
            raise ValueError(f"no checkpoint at or below {m} subintervals")
        return best.quips


# ---------------------------------------------------------------------------
# The algorithm itself (real computation, heap-accelerated selection)
# ---------------------------------------------------------------------------


def _f_double(x: float) -> float:
    return (1.0 - x) / (1.0 + x)


def _f_int(x_scaled: int) -> int:
    """(1-x)/(1+x) in fixed point with scale 2**30."""
    num = (_FIXED_POINT_SCALE - x_scaled) * _FIXED_POINT_SCALE
    den = _FIXED_POINT_SCALE + x_scaled
    return num // den


def hint_qualities(max_subintervals: int,
                   checkpoints: Sequence[int],
                   data_type: str = "double") -> List[Tuple[int, float]]:
    """Run the refinement and report quality at each checkpoint.

    Returns ``[(subintervals, quality), ...]``.  Quality is
    1 / (upper bound - lower bound); f is decreasing on [0, 1] so each
    interval's removable error is (f(x0) - f(x1)) * (x1 - x0).
    """
    if data_type not in ("double", "int"):
        raise ValueError(f"data_type must be 'double' or 'int', got {data_type!r}")
    targets = sorted(set(checkpoints))
    if not targets or targets[-1] > max_subintervals:
        raise ValueError("checkpoints must be nonempty and <= max_subintervals")

    out: List[Tuple[int, float]] = []
    if data_type == "double":
        x0, x1 = 0.0, 1.0
        f0, f1 = _f_double(x0), _f_double(x1)
        err = (f0 - f1) * (x1 - x0)
        heap = [(-err, x0, x1, f0, f1)]
        total_err = err
        count = 1
        target_idx = 0
        while count <= max_subintervals and target_idx < len(targets):
            if count >= targets[target_idx]:
                out.append((count, 1.0 / total_err if total_err > 0 else float("inf")))
                target_idx += 1
                continue
            neg_err, x0, x1, f0, f1 = heapq.heappop(heap)
            total_err += neg_err  # remove the split interval's error
            xm = 0.5 * (x0 + x1)
            fm = _f_double(xm)
            left = (f0 - fm) * (xm - x0)
            right = (fm - f1) * (x1 - xm)
            heapq.heappush(heap, (-left, x0, xm, f0, fm))
            heapq.heappush(heap, (-right, xm, x1, fm, f1))
            total_err += left + right
            count += 1
    else:
        x0, x1 = 0, _FIXED_POINT_SCALE
        f0, f1 = _f_int(x0), _f_int(x1)
        err = (f0 - f1) * (x1 - x0)
        heap_i = [(-err, x0, x1, f0, f1)]
        total_i = err
        count = 1
        target_idx = 0
        while count <= max_subintervals and target_idx < len(targets):
            if count >= targets[target_idx]:
                quality = (_FIXED_POINT_SCALE ** 2 / total_i
                           if total_i > 0 else float("inf"))
                out.append((count, quality))
                target_idx += 1
                continue
            neg_err, x0, x1, f0, f1 = heapq.heappop(heap_i)
            total_i += neg_err
            xm = (x0 + x1) // 2
            fm = _f_int(xm)
            left = (f0 - fm) * (xm - x0)
            right = (fm - f1) * (x1 - xm)
            heapq.heappush(heap_i, (-left, x0, xm, f0, fm))
            heapq.heappush(heap_i, (-right, xm, x1, fm, f1))
            total_i += left + right
            count += 1
    return out


# ---------------------------------------------------------------------------
# Timing on a machine model
# ---------------------------------------------------------------------------


def default_checkpoints(max_subintervals: int, start: int = 16) -> List[int]:
    """Geometric checkpoint ladder: 16, 32, 64, ... max."""
    points = []
    m = start
    while m < max_subintervals:
        points.append(m)
        m *= 2
    points.append(max_subintervals)
    return points


def run_hint(node: NodeModel, data_type: str = "double",
             max_subintervals: int = 16384,
             checkpoints: Optional[Sequence[int]] = None,
             machine_key: str = "") -> HintResult:
    """Run HINT on a node model and build the Figure-6 curve.

    Per refinement at table size *m* the benchmark pays one scan over the
    m live records plus the split arithmetic.  Scan memory behaviour is
    replayed through the cache simulator at each checkpoint; between
    checkpoints the per-record cost is interpolated from the bracketing
    measurements, and the cumulative runtime integrates
    ``sum_m (m * per_record(m) + split)``.
    """
    marks = list(checkpoints) if checkpoints is not None else \
        default_checkpoints(max_subintervals)
    qualities = dict(hint_qualities(max_subintervals, marks, data_type))

    node.reset()
    allocator = AddressMap().allocator()
    base = allocator.alloc("hint_records", max_subintervals * RECORD_BYTES)

    scan_unit = hint_scan_step(data_type)
    split_unit = hint_split_step(data_type)
    scan_compute_ns = node.pipeline.per_access_compute_ns(
        scan_unit.mix, scan_unit.memory_refs)
    split_ns = node.pipeline.block_ns(split_unit.mix)

    # Measure the per-record scan cost at each checkpoint size.
    per_record_at: List[Tuple[int, float]] = []
    for mark in marks:
        trace = hint_sweep_trace(base, mark, RECORD_BYTES, seed=mark)
        elapsed = node.run_traces([trace], scan_compute_ns).elapsed_ns
        refs = mark + max(1, int(mark * 0.25))  # scan reads + split writes
        per_record_at.append((mark, elapsed / refs))

    def per_record(m: int) -> float:
        prev_mark, prev_cost = per_record_at[0]
        for mark, cost in per_record_at:
            if m <= mark:
                if mark == prev_mark:
                    return cost
                frac = (m - prev_mark) / (mark - prev_mark)
                return prev_cost + frac * (cost - prev_cost)
            prev_mark, prev_cost = mark, cost
        return per_record_at[-1][1]

    # Integrate cumulative runtime across all refinements.
    points: List[HintPoint] = []
    cumulative_ns = 0.0
    mark_idx = 0
    for m in range(1, max_subintervals + 1):
        cumulative_ns += m * per_record(m) + split_ns
        if mark_idx < len(marks) and m == marks[mark_idx]:
            time_s = cumulative_ns / 1e9
            quality = qualities[m]
            quips = quality / time_s if time_s > 0 else 0.0
            points.append(HintPoint(time_s=time_s, quips=quips,
                                    subintervals=m, quality=quality))
            mark_idx += 1

    return HintResult(machine=machine_key or node.name,
                      data_type=data_type, points=tuple(points))


def hint_on_machine(spec: MachineSpec, data_type: str = "double",
                    scale: int = 16,
                    max_subintervals: int = 16384) -> HintResult:
    """Convenience: HINT on a fresh single-machine node."""
    node = spec.node(scale=scale)
    return run_hint(node, data_type=data_type,
                    max_subintervals=max_subintervals,
                    machine_key=spec.key)


#: What a HINT (or any trace-replay node) point imports — the cache
#: fingerprint set shared by the fig6/fig7/fig8 sweeps.
NODE_SWEEP_MODULES = ("repro.sim", "repro.memory", "repro.cpu", "repro.node",
                      "repro.core", "repro.bench.hint",
                      "repro.bench.matmult")


def hint_point_task(config: dict, seed: int) -> HintResult:
    """One Figure-6 cell as a sweep task (module-level: pools pickle it).

    The replay is deterministic, so ``seed`` is unused — it still keys
    the cache fingerprint through the scheduler.
    """
    return hint_on_machine(config["spec"], data_type=config["data_type"],
                           scale=config["scale"],
                           max_subintervals=config["max_subintervals"])
