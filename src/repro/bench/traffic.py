"""Offered-load experiments on the crossbar network.

The paper's communication numbers are two-node microbenchmarks; a machine
with 128 nodes lives or dies by how the interconnect behaves under *load*.
This harness drives classic traffic patterns through a CommWorld:

* **permutation** — every node sends to a fixed distinct partner;
  crossbars see no output conflicts, so aggregate throughput should scale
  with node count (the "favorable blocking behavior" the paper claims for
  crossbar networks over meshes);
* **random** — destinations drawn uniformly; transient output conflicts
  appear but the 16x16 crossbar absorbs them;
* **hotspot** — everyone sends to node 0; the single output port and the
  one receive FIFO bound aggregate throughput at one link's rate, however
  many senders pile on.

Beyond the fixed patterns, the offered-load harness (:func:`run_load`)
drives seeded open- or closed-loop traffic mixes — uniform background,
hotspot, synchronized incast, bursty on/off — per service class, and
reports offered load vs goodput and the latency p50/p99 per class.  Its
point task (:func:`traffic_point_task`) runs under
:func:`~repro.parallel.sweep.run_sweep`, so load sweeps parallelise with
``--jobs N == --jobs 1`` byte-identity and hit the result cache.
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.msg.api import CommWorld
from repro.network.qos import QosConfig
from repro.sim.resources import Signal


@dataclass(frozen=True)
class TrafficResult:
    """One pattern's outcome.

    Attributes:
        pattern: pattern name.
        nodes: participating node count.
        messages: total messages delivered.
        message_bytes: payload size used.
        elapsed_ns: first send to last delivery.
        aggregate_mb_s: total delivered payload over elapsed time.
        collisions: output-port conflicts observed in the crossbars.
    """

    pattern: str
    nodes: int
    messages: int
    message_bytes: int
    elapsed_ns: float
    aggregate_mb_s: float
    collisions: int

    @property
    def per_node_mb_s(self) -> float:
        return self.aggregate_mb_s / self.nodes if self.nodes else 0.0


def _destinations(pattern: str, nodes: Sequence[int], rounds: int,
                  seed: int) -> List[List[int]]:
    """Per-round destination of every node."""
    rng = random.Random(seed)
    plan: List[List[int]] = []
    n = len(nodes)
    for round_index in range(rounds):
        if pattern == "permutation":
            shift = (round_index % (n - 1)) + 1
            plan.append([nodes[(i + shift) % n] for i in range(n)])
        elif pattern == "random":
            row = []
            for i in range(n):
                choices = [d for d in nodes if d != nodes[i]]
                row.append(rng.choice(choices))
            plan.append(row)
        elif pattern == "hotspot":
            target = nodes[0]
            plan.append([target if nodes[i] != target else nodes[1]
                         for i in range(n)])
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
    return plan


def _delivery_timestamp(message, now: float) -> float:
    """When ``message`` arrived, falling back to ``now`` only when the
    driver never stamped it.

    The check must be ``is None``: a delivery at simulated time ``0.0``
    is a legitimate timestamp, and the truthiness idiom
    (``delivered_at or now``) silently replaces it, inflating elapsed
    time.
    """
    return message.delivered_at if message.delivered_at is not None else now


def _crossbar_collisions(world: CommWorld) -> int:
    return sum(xbar.stats["collisions"]
               for xbar in world.fabric.crossbars.values())


def run_pattern(world: CommWorld, pattern: str, message_bytes: int = 1024,
                rounds: int = 4, seed: int = 7,
                nodes: Optional[Sequence[int]] = None) -> TrafficResult:
    """Drive one pattern to completion and measure aggregate throughput."""
    sim = world.sim
    nodes = list(nodes if nodes is not None else world.fabric.node_ids())
    if len(nodes) < 2:
        raise ValueError("traffic needs at least two nodes")
    plan = _destinations(pattern, nodes, rounds, seed)

    expected: Dict[int, int] = {node: 0 for node in nodes}
    for row in plan:
        for dst in row:
            expected[dst] += 1

    start = sim.now
    # Snapshot so a shared world running several patterns reports each
    # pattern's collisions independently rather than a running total.
    collisions_before = _crossbar_collisions(world)
    deliveries: List[float] = []

    def receiver(node: int, count: int):
        for _ in range(count):
            message = yield world.recv(node)
            deliveries.append(_delivery_timestamp(message, sim.now))

    receiver_procs = [sim.process(receiver(node, count))
                      for node, count in expected.items() if count]

    def sender(node_index: int):
        node = nodes[node_index]
        for row in plan:
            yield sim.process(
                world.endpoint(node).driver.send_message(
                    world.make_message(node, row[node_index],
                                       message_bytes)))

    for index in range(len(nodes)):
        sim.process(sender(index))
    sim.run()
    unfinished = [p for p in receiver_procs if not p.finished]
    if unfinished:
        raise AssertionError(
            f"{pattern}: {len(unfinished)} receivers never finished")

    elapsed = max(deliveries) - start if deliveries else 0.0
    total = len(deliveries)
    total_bytes = total * message_bytes
    aggregate = total_bytes * 1e3 / elapsed if elapsed > 0 else 0.0
    collisions = _crossbar_collisions(world) - collisions_before
    return TrafficResult(pattern=pattern, nodes=len(nodes), messages=total,
                         message_bytes=message_bytes, elapsed_ns=elapsed,
                         aggregate_mb_s=aggregate, collisions=collisions)


def pattern_comparison(make_world, message_bytes: int = 1024,
                       rounds: int = 4) -> Dict[str, TrafficResult]:
    """Run all three patterns, each on a fresh world from ``make_world``."""
    results = {}
    for pattern in ("permutation", "random", "hotspot"):
        world = make_world()
        results[pattern] = run_pattern(world, pattern,
                                       message_bytes=message_bytes,
                                       rounds=rounds)
    return results


# -- offered-load / QoS harness ------------------------------------------------

LOAD_PATTERNS = ("uniform", "hotspot", "incast", "permutation", "bursty")

#: What a traffic load point imports — the sweep-cache fingerprint set.
TRAFFIC_SWEEP_MODULES = ("repro.sim", "repro.network", "repro.ni",
                         "repro.msg", "repro.faults", "repro.obs",
                         "repro.bench.traffic")


@dataclass(frozen=True)
class ClassTraffic:
    """How one service class loads the fabric.

    Attributes:
        pattern: destination/arrival shape — ``uniform`` (Poisson
            arrivals, uniform destinations), ``hotspot`` (Poisson to node
            0, the target stays a pure sink), ``incast`` (synchronized
            waves from every other node into node 0), ``permutation``
            (deterministic arrivals to a rotating conflict-free partner),
            ``bursty`` (on/off: line-rate bursts of ``burst_len``
            messages to uniform destinations).
        fraction: this class's share of the offered load.
        burst_len: messages per burst (``bursty`` only).
        senders: which nodes inject this class — ``all``, ``even`` or
            ``odd`` (by node-list index).  Disjoint sender sets isolate
            the output arbiter: a wormhole can never head-of-line block
            behind its own node's other-class traffic, so any p99
            difference between policies is pure arbitration.
    """

    pattern: str = "uniform"
    fraction: float = 1.0
    burst_len: int = 8
    senders: str = "all"

    def __post_init__(self):
        if self.pattern not in LOAD_PATTERNS:
            raise ValueError(f"unknown load pattern {self.pattern!r}; "
                             f"choose from {LOAD_PATTERNS}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], "
                             f"got {self.fraction}")
        if self.burst_len < 1:
            raise ValueError("burst_len must be >= 1")
        if self.senders not in ("all", "even", "odd"):
            raise ValueError(f"senders must be all/even/odd, "
                             f"got {self.senders!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"pattern": self.pattern, "fraction": self.fraction,
                "burst_len": self.burst_len, "senders": self.senders}

    def sender_nodes(self, nodes: Sequence[int]) -> List[int]:
        if self.senders == "even":
            return [node for i, node in enumerate(nodes) if i % 2 == 0]
        if self.senders == "odd":
            return [node for i, node in enumerate(nodes) if i % 2 == 1]
        return list(nodes)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassTraffic":
        return cls(**data)


def parse_classes(text: str):
    """``urgent:prio=0:weight=4,bulk:prio=1:rate=30:burst=4096`` into the
    :class:`~repro.network.qos.TrafficClass` tuple a QosConfig wants."""
    from repro.network.qos import TrafficClass

    classes = []
    for part in text.split(","):
        fields = part.strip().split(":")
        name = fields[0]
        if not name:
            raise ValueError(f"empty class name in {text!r}")
        kwargs: Dict[str, Any] = {}
        for spec in fields[1:]:
            key, _, value = spec.partition("=")
            if key in ("prio", "priority"):
                kwargs["priority"] = int(value)
            elif key == "weight":
                kwargs["weight"] = int(value)
            elif key == "rate":
                kwargs["rate_mb_s"] = float(value)
            elif key == "burst":
                kwargs["burst_bytes"] = int(value)
            else:
                raise ValueError(f"unknown class field {key!r} "
                                 f"(use prio/weight/rate/burst)")
        classes.append(TrafficClass(name, **kwargs))
    return tuple(classes)


def parse_mix(text: str) -> Dict[str, ClassTraffic]:
    """``urgent=incast:0.2:odd,bulk=hotspot:0.8:even`` — per class
    ``pattern[:fraction[:senders[:burst_len]]]``."""
    mix: Dict[str, ClassTraffic] = {}
    for part in text.split(","):
        name, sep, rest = part.strip().partition("=")
        if not sep or not name:
            raise ValueError(f"mix entry {part!r} is not name=pattern[...]")
        fields = rest.split(":")
        kwargs: Dict[str, Any] = {"pattern": fields[0]}
        if len(fields) > 1 and fields[1]:
            kwargs["fraction"] = float(fields[1])
        if len(fields) > 2 and fields[2]:
            kwargs["senders"] = fields[2]
        if len(fields) > 3 and fields[3]:
            kwargs["burst_len"] = int(fields[3])
        mix[name] = ClassTraffic(**kwargs)
    return mix


def parse_loads(text: str) -> List[float]:
    """``0.2,0.5,0.8`` (list) or ``0.2:0.8:0.2`` (start:stop:step,
    stop-inclusive)."""
    text = text.strip()
    if ":" in text:
        start, stop, step = (float(x) for x in text.split(":"))
        if step <= 0:
            raise ValueError("load sweep step must be positive")
        loads, value = [], start
        while value <= stop + 1e-9:
            loads.append(round(value, 9))
            value += step
        return loads
    return [float(x) for x in text.split(",")]


def default_mix(qos: QosConfig) -> Dict[str, ClassTraffic]:
    """Uniform traffic split evenly across the classes."""
    share = 1.0 / len(qos.classes)
    return {tc.name: ClassTraffic(pattern="uniform", fraction=share)
            for tc in qos.classes}


def build_injection_plan(nodes: Sequence[int], qos: QosConfig,
                         mix: Dict[str, ClassTraffic], load: float,
                         message_bytes: int, messages: int, seed: int,
                         link_mb_s: float = 60.0,
                         ) -> List[Tuple[float, int, int, int]]:
    """The full open-loop injection schedule: ``(t, src, dst, sclass)``.

    Precomputed before simulation so receiver counts are known up front
    and a run is a pure function of ``(plan, world)`` — the property the
    sweep cache and the ``--jobs N`` byte-identity contract rest on.

    ``load`` is the per-node offered fraction of one link's line rate
    (``link_mb_s``); each class injects ``load * fraction`` of that from
    every participating sender, with ``max(1, round(messages *
    fraction))`` messages per sender.
    """
    if not 0.0 < load <= 4.0:
        raise ValueError(f"load must be in (0, 4], got {load}")
    if len(nodes) < 2:
        raise ValueError("load traffic needs at least two nodes")
    rng = random.Random(seed)
    n = len(nodes)
    line_rate = link_mb_s * 1e-3  # bytes/ns per node
    plan: List[Tuple[float, int, int, int]] = []
    for sclass, tc in enumerate(qos.classes):
        ct = mix.get(tc.name)
        if ct is None:
            raise KeyError(f"mix is missing class {tc.name!r}")
        count = max(1, round(messages * ct.fraction))
        interval = message_bytes / (load * ct.fraction * line_rate)
        senders = ct.sender_nodes(nodes)
        if ct.pattern == "permutation":
            m = len(senders)
            if m < 2:
                raise ValueError("permutation needs >= 2 senders")
            for k in range(count):
                shift = (k % (m - 1)) + 1
                t = k * interval
                for i, src in enumerate(senders):
                    plan.append((t, src, senders[(i + shift) % m], sclass))
        elif ct.pattern == "incast":
            target = nodes[0]
            for k in range(count):
                t = k * interval
                for src in senders:
                    if src != target:
                        plan.append((t, src, target, sclass))
        elif ct.pattern == "hotspot":
            target = nodes[0]
            for src in senders:
                if src == target:
                    continue
                t = 0.0
                for _ in range(count):
                    t += rng.expovariate(1.0 / interval)
                    plan.append((t, src, target, sclass))
        elif ct.pattern == "bursty":
            gap = ct.burst_len * interval
            wire_gap = message_bytes / line_rate  # line-rate spacing
            for src in senders:
                others = [d for d in nodes if d != src]
                t = 0.0
                sent = 0
                while sent < count:
                    t += rng.expovariate(1.0 / gap)
                    for b in range(min(ct.burst_len, count - sent)):
                        plan.append((t + b * wire_gap, src,
                                     rng.choice(others), sclass))
                    sent += min(ct.burst_len, count - sent)
        else:  # uniform
            for src in senders:
                others = [d for d in nodes if d != src]
                t = 0.0
                for _ in range(count):
                    t += rng.expovariate(1.0 / interval)
                    plan.append((t, src, rng.choice(others), sclass))
    plan.sort(key=lambda entry: (entry[0], entry[1], entry[3]))
    return plan


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an already-sorted sample set."""
    if not sorted_samples:
        return 0.0
    rank = max(1, -(-int(q * 100) * len(sorted_samples) // 100))
    return sorted_samples[min(rank, len(sorted_samples)) - 1]


@dataclass(frozen=True)
class ClassLoadResult:
    """One service class's share of a load point."""

    name: str
    messages: int
    offered_mb_s: float
    goodput_mb_s: float
    latency_p50_ns: float
    latency_p99_ns: float
    latency_mean_ns: float
    rate_stalls: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "messages": self.messages,
                "offered_mb_s": self.offered_mb_s,
                "goodput_mb_s": self.goodput_mb_s,
                "latency_p50_ns": self.latency_p50_ns,
                "latency_p99_ns": self.latency_p99_ns,
                "latency_mean_ns": self.latency_mean_ns,
                "rate_stalls": self.rate_stalls}


@dataclass(frozen=True)
class LoadResult:
    """One (arbiter, load) point of the offered-load surface."""

    arbiter: str
    load: float
    nodes: int
    message_bytes: int
    messages: int
    elapsed_ns: float
    collisions: int
    reroutes: int
    fallbacks: int
    classes: Tuple[ClassLoadResult, ...]

    @property
    def goodput_mb_s(self) -> float:
        return sum(c.goodput_mb_s for c in self.classes)

    def to_dict(self) -> Dict[str, Any]:
        return {"arbiter": self.arbiter, "load": self.load,
                "nodes": self.nodes, "message_bytes": self.message_bytes,
                "messages": self.messages, "elapsed_ns": self.elapsed_ns,
                "collisions": self.collisions, "reroutes": self.reroutes,
                "fallbacks": self.fallbacks,
                "goodput_mb_s": self.goodput_mb_s,
                "classes": [c.to_dict() for c in self.classes]}


def run_load(world: CommWorld, qos: Optional[QosConfig] = None,
             mix: Optional[Dict[str, ClassTraffic]] = None,
             load: float = 0.5, messages: int = 32,
             message_bytes: int = 1024, seed: int = 7,
             closed_loop: bool = False, window: int = 4,
             link_mb_s: float = 60.0) -> LoadResult:
    """Drive one offered-load point to completion and measure per class.

    Open loop (default): every message is injected at its planned time
    (or as soon as the node's driver frees up — source queueing counts
    against latency, which is what makes the goodput-vs-offered knee
    visible).  Closed loop: planned times only order the work; each node
    self-clocks with at most ``window`` undelivered messages in flight.

    ``qos`` describes the classes for plan/bookkeeping purposes even when
    the world was built without classed arbiters (legacy fifo path).
    """
    sim = world.sim
    qos = qos or QosConfig()
    mix = mix or default_mix(qos)
    if window < 1:
        raise ValueError("window must be >= 1")
    nodes = world.node_ids()
    plan = build_injection_plan(nodes, qos, mix, load, message_bytes,
                                messages, seed, link_mb_s=link_mb_s)

    by_src: Dict[int, List[Tuple[float, int, int]]] = {}
    expected: Dict[int, int] = {}
    for t, src, dst, sclass in plan:
        by_src.setdefault(src, []).append((t, dst, sclass))
        expected[dst] = expected.get(dst, 0) + 1

    start = sim.now
    collisions_before = _crossbar_collisions(world)
    n_classes = len(qos.classes)
    latencies: List[List[float]] = [[] for _ in range(n_classes)]
    delivered_bytes = [0] * n_classes
    delivered_counts = {node: 0 for node in nodes}
    last_delivery = start
    credit = {node: Signal(sim, name=f"credit.n{node}") for node in nodes}

    def receiver(node: int, count: int):
        nonlocal last_delivery
        for _ in range(count):
            message = yield world.recv(node)
            sclass, injected_at = message.tag
            arrived = _delivery_timestamp(message, sim.now)
            latencies[sclass].append(arrived - injected_at)
            delivered_bytes[sclass] += message.payload_bytes
            last_delivery = max(last_delivery, arrived)
            delivered_counts[message.source] += 1
            credit[message.source].fire()

    receiver_procs = [sim.process(receiver(node, count))
                      for node, count in sorted(expected.items()) if count]

    def open_sender(node: int, entries):
        driver = world.endpoint(node).driver
        for t, dst, sclass in entries:
            if sim.now < t:
                yield sim.timeout(t - sim.now)
            message = world.make_message(node, dst, message_bytes,
                                         tag=(sclass, t), sclass=sclass)
            yield sim.process(driver.send_message(message))

    def closed_sender(node: int, entries):
        driver = world.endpoint(node).driver
        sent = 0
        for _, dst, sclass in entries:
            while sent - delivered_counts[node] >= window:
                yield credit[node].wait()
            message = world.make_message(node, dst, message_bytes,
                                         tag=(sclass, sim.now),
                                         sclass=sclass)
            yield sim.process(driver.send_message(message))
            sent += 1

    sender = closed_sender if closed_loop else open_sender
    for node in sorted(by_src):
        sim.process(sender(node, by_src[node]))
    sim.run()
    unfinished = [p for p in receiver_procs if not p.finished]
    if unfinished:
        raise AssertionError(
            f"load run: {len(unfinished)} receivers never finished")

    elapsed = last_delivery - start
    horizon = max((entry[0] for entry in plan), default=0.0)
    rate_stalls = [0] * n_classes
    for xbar in world.fabric.crossbars.values():
        if getattr(xbar, "_classed", False):
            for arbiter in xbar._output_arbiters:
                for index in range(n_classes):
                    rate_stalls[index] += arbiter.class_rate_stalls[index]
    class_results = []
    for index, tc in enumerate(qos.classes):
        samples = sorted(latencies[index])
        goodput = (delivered_bytes[index] * 1e3 / elapsed
                   if elapsed > 0 else 0.0)
        planned = sum(1 for entry in plan if entry[3] == index)
        offered = (planned * message_bytes * 1e3 / horizon
                   if horizon > 0 and not closed_loop else goodput)
        class_results.append(ClassLoadResult(
            name=tc.name, messages=len(samples),
            offered_mb_s=offered, goodput_mb_s=goodput,
            latency_p50_ns=_percentile(samples, 0.50),
            latency_p99_ns=_percentile(samples, 0.99),
            latency_mean_ns=(sum(samples) / len(samples)
                             if samples else 0.0),
            rate_stalls=rate_stalls[index]))
    router = world.router
    return LoadResult(
        arbiter=(qos.arbiter if world.fabric.crossbars and
                 next(iter(world.fabric.crossbars.values()))._classed
                 else "fifo"),
        load=load, nodes=len(nodes), message_bytes=message_bytes,
        messages=len(plan), elapsed_ns=elapsed,
        collisions=_crossbar_collisions(world) - collisions_before,
        reroutes=getattr(router, "reroutes", 0),
        fallbacks=getattr(router, "fallbacks", 0),
        classes=tuple(class_results))


def traffic_point_task(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One load point as a sweep task (module-level: pools pickle it).

    ``config`` is plain data (canonical dicts) so the sweep cache
    fingerprint is stable: ``topology`` (TopologySpec dict), ``load``,
    ``messages``, ``message_bytes``, optional ``qos`` (QosConfig dict,
    None = legacy fifo arbiters), ``mix`` ({class: ClassTraffic dict}),
    ``adaptive`` (AdaptiveConfig dict), ``fault_plan``, ``closed_loop``,
    ``window``, ``fifo_words``.
    """
    from repro.msg.api import build_topology_world
    from repro.network.crossbar import CrossbarConfig
    from repro.network.qos import AdaptiveConfig
    from repro.network.topo import TopologySpec

    plan_dict = config.get("fault_plan")
    if plan_dict is not None:
        from repro.faults import FaultPlan, inject

        fault_ctx = inject(FaultPlan.from_dict(plan_dict).with_seed(seed))
    else:
        fault_ctx = contextlib.nullcontext()
    with fault_ctx:
        spec = TopologySpec.from_dict(config["topology"])
        if spec.fidelity != "flit":
            raise ValueError("load traffic needs a flit-fidelity topology")
        qos_dict = config.get("qos")
        qos = QosConfig.from_dict(qos_dict) if qos_dict else None
        crossbar_config = (CrossbarConfig(qos=qos) if qos is not None
                           else CrossbarConfig())
        _, world = build_topology_world(
            spec, fifo_words=config.get("fifo_words", 32),
            crossbar_config=crossbar_config)
        adaptive_dict = config.get("adaptive")
        if adaptive_dict is not None:
            world.enable_adaptive(AdaptiveConfig.from_dict(adaptive_dict))
        mix = {name: ClassTraffic.from_dict(d)
               for name, d in (config.get("mix") or {}).items()} or None
        result = run_load(
            world, qos=qos, mix=mix, load=config["load"],
            messages=config.get("messages", 32),
            message_bytes=config.get("message_bytes", 1024),
            seed=seed, closed_loop=config.get("closed_loop", False),
            window=config.get("window", 4),
            link_mb_s=config.get("link_mb_s", 60.0))
    return result.to_dict()


def load_sweep(spec, loads: Sequence[float],
               qos: Optional[QosConfig] = None,
               mix: Optional[Dict[str, ClassTraffic]] = None,
               messages: int = 32, message_bytes: int = 1024,
               seed: int = 7, closed_loop: bool = False, window: int = 4,
               adaptive=None, fault_plan=None, fifo_words: int = 32,
               jobs: int = 1, cache=None, supervise=None,
               ) -> List[Dict[str, Any]]:
    """The offered-load surface: one :func:`run_load` point per load.

    Runs under :func:`~repro.parallel.sweep.run_sweep`, so points fan out
    over ``jobs`` workers, consult ``cache``, and are byte-identical to a
    serial run.
    """
    from repro.parallel.sweep import run_sweep, sweep_values

    spec_dict = spec.to_dict()
    qos_dict = qos.to_dict() if qos is not None else None
    mix_dict = ({name: ct.to_dict() for name, ct in mix.items()}
                if mix is not None else None)
    adaptive_dict = adaptive.to_dict() if adaptive is not None else None
    plan_dict = fault_plan.to_dict() if fault_plan is not None else None
    points = []
    for load in loads:
        config = {"topology": spec_dict, "load": load,
                  "messages": messages, "message_bytes": message_bytes,
                  "qos": qos_dict, "mix": mix_dict,
                  "adaptive": adaptive_dict, "fault_plan": plan_dict,
                  "closed_loop": closed_loop, "window": window,
                  "fifo_words": fifo_words}
        points.append((("load", load), config))
    outcomes = run_sweep("traffic:load", points, traffic_point_task,
                         jobs=jobs, cache=cache,
                         modules=TRAFFIC_SWEEP_MODULES,
                         seed_base=seed, supervise=supervise)
    return sweep_values(outcomes)
