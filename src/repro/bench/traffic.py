"""Offered-load experiments on the crossbar network.

The paper's communication numbers are two-node microbenchmarks; a machine
with 128 nodes lives or dies by how the interconnect behaves under *load*.
This harness drives classic traffic patterns through a CommWorld:

* **permutation** — every node sends to a fixed distinct partner;
  crossbars see no output conflicts, so aggregate throughput should scale
  with node count (the "favorable blocking behavior" the paper claims for
  crossbar networks over meshes);
* **random** — destinations drawn uniformly; transient output conflicts
  appear but the 16x16 crossbar absorbs them;
* **hotspot** — everyone sends to node 0; the single output port and the
  one receive FIFO bound aggregate throughput at one link's rate, however
  many senders pile on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.msg.api import CommWorld


@dataclass(frozen=True)
class TrafficResult:
    """One pattern's outcome.

    Attributes:
        pattern: pattern name.
        nodes: participating node count.
        messages: total messages delivered.
        message_bytes: payload size used.
        elapsed_ns: first send to last delivery.
        aggregate_mb_s: total delivered payload over elapsed time.
        collisions: output-port conflicts observed in the crossbars.
    """

    pattern: str
    nodes: int
    messages: int
    message_bytes: int
    elapsed_ns: float
    aggregate_mb_s: float
    collisions: int

    @property
    def per_node_mb_s(self) -> float:
        return self.aggregate_mb_s / self.nodes if self.nodes else 0.0


def _destinations(pattern: str, nodes: Sequence[int], rounds: int,
                  seed: int) -> List[List[int]]:
    """Per-round destination of every node."""
    rng = random.Random(seed)
    plan: List[List[int]] = []
    n = len(nodes)
    for round_index in range(rounds):
        if pattern == "permutation":
            shift = (round_index % (n - 1)) + 1
            plan.append([nodes[(i + shift) % n] for i in range(n)])
        elif pattern == "random":
            row = []
            for i in range(n):
                choices = [d for d in nodes if d != nodes[i]]
                row.append(rng.choice(choices))
            plan.append(row)
        elif pattern == "hotspot":
            target = nodes[0]
            plan.append([target if nodes[i] != target else nodes[1]
                         for i in range(n)])
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
    return plan


def run_pattern(world: CommWorld, pattern: str, message_bytes: int = 1024,
                rounds: int = 4, seed: int = 7,
                nodes: Optional[Sequence[int]] = None) -> TrafficResult:
    """Drive one pattern to completion and measure aggregate throughput."""
    sim = world.sim
    nodes = list(nodes if nodes is not None else world.fabric.node_ids())
    if len(nodes) < 2:
        raise ValueError("traffic needs at least two nodes")
    plan = _destinations(pattern, nodes, rounds, seed)

    expected: Dict[int, int] = {node: 0 for node in nodes}
    for row in plan:
        for dst in row:
            expected[dst] += 1

    start = sim.now
    deliveries: List[float] = []

    def receiver(node: int, count: int):
        for _ in range(count):
            message = yield world.recv(node)
            deliveries.append(message.delivered_at or sim.now)

    receiver_procs = [sim.process(receiver(node, count))
                      for node, count in expected.items() if count]

    def sender(node_index: int):
        node = nodes[node_index]
        for row in plan:
            yield sim.process(
                world.endpoint(node).driver.send_message(
                    world.make_message(node, row[node_index],
                                       message_bytes)))

    for index in range(len(nodes)):
        sim.process(sender(index))
    sim.run()
    unfinished = [p for p in receiver_procs if not p.finished]
    if unfinished:
        raise AssertionError(
            f"{pattern}: {len(unfinished)} receivers never finished")

    elapsed = max(deliveries) - start if deliveries else 0.0
    total = len(deliveries)
    total_bytes = total * message_bytes
    aggregate = total_bytes * 1e3 / elapsed if elapsed > 0 else 0.0
    collisions = sum(xbar.stats["collisions"]
                     for xbar in world.fabric.crossbars.values())
    return TrafficResult(pattern=pattern, nodes=len(nodes), messages=total,
                         message_bytes=message_bytes, elapsed_ns=elapsed,
                         aggregate_mb_s=aggregate, collisions=collisions)


def pattern_comparison(make_world, message_bytes: int = 1024,
                       rounds: int = 4) -> Dict[str, TrafficResult]:
    """Run all three patterns, each on a fresh world from ``make_world``."""
    results = {}
    for pattern in ("permutation", "random", "hotspot"):
        world = make_world()
        results[pattern] = run_pattern(world, pattern,
                                       message_bytes=message_bytes,
                                       rounds=rounds)
    return results
