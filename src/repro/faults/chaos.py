"""The chaos experiment harness: plan + seed -> reproducible fault run.

One :func:`run_chaos` call builds a topology, arms the fault engine with
the plan, schedules the hard faults through a :class:`FaultController`,
drives a deterministic traffic pattern over a reliable protocol (sliding
window by default, stop-and-wait for comparison) and reports goodput,
latency and recovery behaviour.  Same plan + same seed => bit-identical
report and metrics — the property the ``chaos-smoke`` CI job asserts.

The module imports the topology and protocol layers, so it must *not* be
imported from ``repro.faults.__init__`` (the injection hooks live below
those layers); use ``from repro.faults.chaos import run_chaos``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults import FaultEngine, FaultPlan, inject
from repro.faults.controller import FaultController
from repro.msg.api import CommWorld
from repro.msg.reliable import (
    DeliveryError,
    ReliableChannel,
    ReliableConfig,
)
from repro.msg.sliding_window import SlidingWindowChannel, SlidingWindowConfig
from repro.network.routing import NoRouteError
from repro.network.topology import (
    build_cluster,
    build_grid_system,
    build_power_manna_256,
)
from repro.sim.engine import Simulator

TOPOLOGIES = ("cluster", "manna", "grid")
PROTOCOLS = ("sliding", "stopwait")


@dataclass
class ChaosReport:
    """What one chaos run produced (all fields deterministic)."""

    topology: str
    protocol: str
    seed: int
    flows: List[Tuple[int, int]]
    messages_per_flow: int
    nbytes: int
    delivered: int
    undelivered: int
    duration_ns: float
    goodput_mb_s: float
    channel_stats: Dict[str, float]
    fault_stats: Dict[str, float]
    applied: List[tuple] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return len(self.flows) * self.messages_per_flow

    def to_dict(self) -> Dict[str, object]:
        return {
            "topology": self.topology,
            "protocol": self.protocol,
            "seed": self.seed,
            "flows": [list(pair) for pair in self.flows],
            "messages_per_flow": self.messages_per_flow,
            "nbytes": self.nbytes,
            "delivered": self.delivered,
            "undelivered": self.undelivered,
            "duration_ns": self.duration_ns,
            "goodput_mb_s": self.goodput_mb_s,
            "channel_stats": dict(self.channel_stats),
            "fault_stats": dict(self.fault_stats),
            "applied": [list(entry) for entry in self.applied],
            "failures": list(self.failures),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def build_chaos_world(topology: str = "cluster") -> Tuple[Simulator,
                                                          CommWorld]:
    """A fresh simulator + CommWorld on a chaos topology.

    The legacy names stay: ``manna`` and ``grid`` are scaled-down
    Figure-5b systems (16 nodes) so a chaos run stays fast while still
    exercising multi-crossbar routes with path diversity to reroute
    over.  Anything else is handed to
    :func:`repro.network.topo.parse_topology` (``hypercube:dimensions=4``,
    inline JSON, a spec file), restricted to flit fidelity — fault
    injection needs the real discrete-event components to break.
    """
    sim = Simulator()
    if topology == "cluster":
        fabric = build_cluster(sim)
    elif topology == "manna":
        fabric = build_power_manna_256(sim, clusters=4, nodes_per_cluster=4)
    elif topology == "grid":
        fabric = build_grid_system(sim, rows=2, cols=2, nodes_per_cluster=4)
    else:
        from repro.network.topo import build_fabric, parse_topology

        try:
            spec = parse_topology(topology)
        except ValueError as exc:
            raise ValueError(
                f"unknown chaos topology {topology!r}: {exc}; choose from "
                f"{TOPOLOGIES} or pass a topology spec") from None
        if spec.fidelity != "flit":
            raise ValueError(
                f"chaos needs flit fidelity (got {spec.fidelity!r}): fault "
                f"injection breaks simulated components, which the flow "
                f"tier does not build")
        fabric = build_fabric(sim, spec)
    return sim, CommWorld(sim, fabric)


def default_flows(world: CommWorld, flows: int) -> List[Tuple[int, int]]:
    """Deterministic cross-system flow pattern: the most distant
    *reachable* pairs first.

    Starting from the node-distance n/2 and shrinking forces flows
    through the spine (or row/column) crossbars where the interesting
    failures live, while skipping pairs the plane cannot connect at all
    (on the grid topology plane 0 only joins same-row clusters — the
    paper's argument against that reading of Figure 5b).
    """
    from repro.network.topology import node_key

    nodes = world.fabric.node_ids()
    pairs: List[Tuple[int, int]] = []
    for offset in range(max(1, len(nodes) // 2), 0, -1):
        for i in range(len(nodes)):
            src = nodes[i]
            dst = nodes[(i + offset) % len(nodes)]
            if src == dst:
                continue
            try:
                world.routes.path(node_key(src, world.plane),
                                  node_key(dst, world.plane))
            except NoRouteError:
                continue
            pairs.append((src, dst))
            if len(pairs) == flows:
                return pairs
    if not pairs:
        raise NoRouteError("no reachable node pairs on this plane")
    while len(pairs) < flows:  # tiny systems: reuse pairs round-robin
        pairs.append(pairs[len(pairs) % len(pairs)])
    return pairs


def run_chaos(plan: FaultPlan,
              topology: str = "cluster",
              protocol: str = "sliding",
              flows: int = 4,
              messages: int = 8,
              nbytes: int = 1024,
              window: int = 8,
              error_rate: float = 0.0,
              ack_error_rate: Optional[float] = None) -> ChaosReport:
    """Run one chaos experiment to completion and report.

    ``error_rate`` is the protocol-level injector (corruption drawn at the
    sender, as the goodput benchmarks use); ``ack_error_rate`` optionally
    decouples the reverse path (``None`` mirrors ``error_rate``), which
    combined with a scheduled plan fault exercises Karn's rule during a
    reroute; the *plan* drives the cross-layer hooks (links, crossbars,
    transceivers, NIs, drivers).  All are active at once so the injection
    paths compose.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")
    sim, world = build_chaos_world(topology)
    pairs = default_flows(world, flows)
    engine = FaultEngine(plan)
    outcomes: List[tuple] = []

    with inject(engine):
        controller = FaultController(sim, engine, world.fabric,
                                     [world.routes])
        if protocol == "sliding":
            channel = SlidingWindowChannel(world, SlidingWindowConfig(
                window=window, error_rate=error_rate,
                ack_error_rate=ack_error_rate, seed=plan.seed))
        else:
            channel = ReliableChannel(world, ReliableConfig(
                error_rate=error_rate, ack_error_rate=ack_error_rate,
                seed=plan.seed))

        def outcome_proc(src: int, dst: int):
            # Inline the protocol generator so its DeliveryError (or a
            # routing dead end) is caught here instead of crashing the
            # simulation loop.
            try:
                if protocol == "sliding":
                    result = yield channel.send_outcome(src, dst, nbytes)
                else:
                    seq = yield from channel._send(src, dst, nbytes)
                    result = ("ok", seq)
            except (DeliveryError, NoRouteError) as exc:
                result = ("failed", exc)
            return (src, dst, result)

        def harness():
            procs = []
            for _ in range(messages):
                for src, dst in pairs:
                    procs.append(sim.process(outcome_proc(src, dst)))
            for proc in procs:
                outcomes.append((yield proc))

        sim.run_until_complete(sim.process(harness()))

    delivered = sum(1 for _, _, (status, _) in outcomes if status == "ok")
    failures = [f"{src}->{dst}: {value}"
                for src, dst, (status, value) in outcomes
                if status != "ok"]
    duration = sim.now
    goodput = (delivered * nbytes * 1e3 / duration) if duration > 0 else 0.0
    return ChaosReport(
        topology=topology,
        protocol=protocol,
        seed=plan.seed,
        flows=pairs,
        messages_per_flow=messages,
        nbytes=nbytes,
        delivered=delivered,
        undelivered=len(outcomes) - delivered,
        duration_ns=duration,
        goodput_mb_s=goodput,
        channel_stats=channel.stats.as_dict(),
        fault_stats=engine.stats.as_dict(),
        applied=list(controller.applied),
        failures=failures,
    )


def format_report(report: ChaosReport) -> str:
    """Human-readable chaos summary for the CLI."""
    lines = [
        f"chaos run: {report.topology} topology, {report.protocol} protocol,"
        f" seed {report.seed}",
        f"  traffic   : {len(report.flows)} flows x "
        f"{report.messages_per_flow} x {report.nbytes} B",
        f"  delivered : {report.delivered}/{report.total_messages}"
        f" ({report.undelivered} undelivered)",
        f"  duration  : {report.duration_ns / 1e6:.3f} ms",
        f"  goodput   : {report.goodput_mb_s:.2f} MB/s",
    ]
    stats = report.channel_stats
    for key in ("retransmissions", "timeouts", "reroutes", "link_down",
                "discarded", "duplicates"):
        if stats.get(key):
            lines.append(f"  {key:<10}: {stats[key]:g}")
    if report.fault_stats:
        injected = ", ".join(f"{k}={v:g}" for k, v in
                             sorted(report.fault_stats.items()))
        lines.append(f"  faults    : {injected}")
        total = sum(report.fault_stats.values())
        lines.append(f"  fault events: {total:g} total")
    if report.applied:
        for entry in report.applied:
            lines.append(f"  applied   : {entry}")
    if report.failures:
        for failure in report.failures[:8]:
            lines.append(f"  FAILED    : {failure}")
        if len(report.failures) > 8:
            lines.append(f"  ... {len(report.failures) - 8} more failures")
    return "\n".join(lines)
