"""Applying scheduled (hard) faults on the simulation timeline.

Stochastic faults are drawn at the injection sites; *scheduled* faults —
a crossbar output port dying, a node crashing — change persistent state
and must also be reported to the routing layer so surviving traffic
reroutes.  The :class:`FaultController` owns that choreography: one
simulator process per scheduled spec that, at ``at_ns``,

* fails the crossbar output (:meth:`Crossbar.fail_output`), which makes
  the hardware blackhole wormholes already targeting the dead port, and
* marks the matching wiring edges failed in every registered
  :class:`RouteTable`, so the next route computation (triggered by the
  reliable protocol's retransmission) avoids the port entirely.

Node crashes mark the node's vertices failed (senders get a fast
``NoRouteError``) and record the node in the engine so receiver pumps
drop traffic that still reaches it.

The controller is deliberately separate from ``repro.faults.__init__``:
it imports the topology layer, which itself imports the fault hooks —
importing it lazily avoids the cycle.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.faults.engine import FaultEngine
from repro.faults.plan import FaultSpec
from repro.network.routing import RouteTable
from repro.network.topology import Fabric, node_key, xbar_key
from repro.obs import OBS
from repro.sim.engine import Simulator
from repro.sim.stats import Counter


class FaultController:
    """Schedules the plan's hard faults against a fabric + route tables."""

    def __init__(self, sim: Simulator, engine: FaultEngine, fabric: Fabric,
                 route_tables: Sequence[RouteTable] = (),
                 name: str = "faultctl"):
        self.sim = sim
        self.engine = engine
        self.fabric = fabric
        self.route_tables: List[RouteTable] = list(route_tables)
        self.name = name
        self.stats = Counter(name)
        self.applied: List[tuple] = []
        for spec in engine.plan.scheduled:
            sim.process(self._apply_at(spec))

    def add_route_table(self, routes: RouteTable) -> None:
        self.route_tables.append(routes)

    def _apply_at(self, spec: FaultSpec):
        delay = spec.at_ns - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        if spec.kind == "xbar_port_down":
            self._fail_xbar_port(spec)
        elif spec.kind == "node_crash":
            self._crash_node(spec)

    # -- crossbar port death -----------------------------------------------

    def _fail_xbar_port(self, spec: FaultSpec) -> None:
        matched = [name for name in self.fabric.crossbars
                   if spec.matches(name)]
        if not matched:
            raise KeyError(
                f"{self.name}: xbar_port_down site {spec.site!r} matches no "
                f"crossbar (have {sorted(self.fabric.crossbars)})")
        for name in matched:
            self.fabric.crossbars[name].fail_output(spec.port)
            xkey = xbar_key(name)
            for succ in list(self.fabric.graph.successors(xkey)):
                edge = self.fabric.graph.edges[xkey, succ]
                if edge.get("out_port") != spec.port:
                    continue
                for routes in self.route_tables:
                    routes.mark_edge_failed(xkey, succ)
            self.engine._record("xbar_port_down", name)
            self.stats.incr("xbar_ports_failed")
            self.applied.append(("xbar_port_down", name, spec.port,
                                 self.sim.now))
            if OBS.enabled:
                span = OBS.tracer.begin(
                    "faults.xbar_port_down", name, self.sim.now,
                    category="faults", port=spec.port)
                OBS.tracer.end(span, self.sim.now)

    # -- node crash ---------------------------------------------------------

    def _crash_node(self, spec: FaultSpec) -> None:
        node = spec.node
        if node not in self.fabric.node_ids():
            raise KeyError(f"{self.name}: node_crash for unknown node {node}")
        self.engine.crash_node(node, self.sim.now)
        for (node_id, iface) in self.fabric.attachments:
            if node_id != node:
                continue
            vertex = node_key(node_id, iface)
            for routes in self.route_tables:
                if vertex in routes.graph:
                    routes.mark_vertex_failed(vertex)
        self.stats.incr("nodes_crashed")
        self.applied.append(("node_crash", node, self.sim.now))
        if OBS.enabled:
            OBS.metrics.incr("faults.node_crashes", node=node)
            span = OBS.tracer.begin(
                "faults.node_crash", f"n{node}", self.sim.now,
                category="faults")
            OBS.tracer.end(span, self.sim.now)


def schedule_plan(sim: Simulator, engine: FaultEngine, fabric: Fabric,
                  route_tables: Iterable[RouteTable]) -> FaultController:
    """Convenience wrapper used by the chaos harness."""
    return FaultController(sim, engine, fabric, list(route_tables))
