"""The runtime fault engine behind the :data:`repro.faults.FAULTS` guard.

Components call in from their injection hooks (see ``network/link.py``,
``network/crossbar.py``, ``network/transceiver.py``, ``ni/interface.py``,
``ni/driver.py``, ``node/dispatcher.py``)::

    from repro.faults import FAULTS
    ...
    if FAULTS.enabled and FAULTS.engine.fires("flit_drop", self.name,
                                              self.sim.now):
        ...  # the fault happens

Determinism: every (spec, site) pair draws from its own RNG stream whose
seed is a CRC of ``plan.seed``, the spec's index and the site name.  A
site therefore sees the same fault decisions run-to-run regardless of what
other components exist or in which order they query — the property the
chaos CI job asserts (same plan + seed => bit-identical metrics).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import OBS
from repro.sim.stats import Counter


def _stream_seed(seed: int, index: int, site: str) -> int:
    # zlib.crc32 rather than repro.ni.crc to keep this importable from the
    # NI layer itself (same polynomial, same value).
    return zlib.crc32(f"{seed}:{index}:{site}".encode("utf-8"))


class FaultEngine:
    """Evaluates a :class:`FaultPlan` at injection sites and keeps the
    cross-layer fault state (corrupted messages, crashed nodes)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.stats = Counter("faults")
        self._streams: Dict[Tuple[int, str], random.Random] = {}
        # Specs indexed by kind, remembering their position in the plan so
        # stream seeds stay stable under reordering-by-kind.
        self._by_kind: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.faults):
            self._by_kind.setdefault(spec.kind, []).append((index, spec))
        # Messages corrupted in flight; consumed by the NI CRC check.
        self._corrupt_ids: Set[int] = set()
        # Nodes the controller has crashed (node id -> crash time).
        self._crashed: Dict[int, float] = {}

    # -- stochastic queries (hot path: one dict lookup when kind unused) ---

    def fires(self, kind: str, site: str, now: float) -> Optional[FaultSpec]:
        """Whether a ``kind`` fault hits ``site`` at this opportunity."""
        specs = self._by_kind.get(kind)
        if not specs:
            return None
        for index, spec in specs:
            if not spec.active(now) or not spec.matches(site):
                continue
            if spec.probability <= 0.0:
                continue
            if self._stream(index, site).random() < spec.probability:
                self._record(kind, site)
                return spec
        return None

    def stall_ns(self, kind: str, site: str, now: float) -> float:
        """Stall duration for ``xcvr_stall``/``node_hang`` hooks (0 = none)."""
        spec = self.fires(kind, site, now)
        return spec.stall_ns if spec is not None else 0.0

    def _stream(self, index: int, site: str) -> random.Random:
        key = (index, site)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(_stream_seed(self.plan.seed, index, site))
            self._streams[key] = rng
        return rng

    # -- message corruption bookkeeping ------------------------------------

    def mark_corrupt(self, message_id: int) -> None:
        """A link corrupted this message; the receiving NI's CRC will see it."""
        self._corrupt_ids.add(message_id)

    def consume_corrupt(self, message_id: int) -> bool:
        """CRC check at the receiver: True exactly once per corruption."""
        if message_id in self._corrupt_ids:
            self._corrupt_ids.discard(message_id)
            return True
        return False

    # -- scheduled (hard) fault state --------------------------------------

    def crash_node(self, node: int, now: float) -> None:
        self._crashed.setdefault(node, now)
        self._record("node_crash", f"n{node}")

    def node_down(self, node: int) -> bool:
        return node in self._crashed

    def crashed_nodes(self) -> Dict[int, float]:
        return dict(self._crashed)

    # -- accounting --------------------------------------------------------

    def _record(self, kind: str, site: str) -> None:
        self.stats.incr(kind)
        if OBS.enabled:
            OBS.metrics.incr("faults.injected", kind=kind, site=site)


class FaultInjection:
    """The ambient fault-injection context (one predicate when disabled).

    Mirrors :class:`repro.obs.Observability`: components cache a reference
    to ``FAULTS`` itself, never to ``FAULTS.engine``, and every hook is
    written as ``if FAULTS.enabled: ...`` so a fault-free run pays exactly
    one attribute test per site.
    """

    __slots__ = ("enabled", "engine")

    def __init__(self):
        self.enabled = False
        self.engine: Optional[FaultEngine] = None

    def activate(self, engine: FaultEngine) -> None:
        self.engine = engine
        self.enabled = True

    def deactivate(self) -> None:
        self.enabled = False
        self.engine = None
