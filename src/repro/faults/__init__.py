"""repro.faults — the cross-layer fault-injection framework.

One ambient :data:`FAULTS` context object is shared by every injection
hook in the library (links, crossbars, transceivers, link interfaces,
drivers, dispatchers).  It is *disabled* by default — every hook is
written as ::

    from repro.faults import FAULTS
    ...
    if FAULTS.enabled and FAULTS.engine.fires("flit_drop", self.name,
                                              self.sim.now):
        ...

so a fault-free run pays exactly one attribute test per site, mirroring
the ``repro.obs`` pattern.  Enabling is scoped::

    from repro.faults import FaultPlan, FaultSpec, inject

    plan = FaultPlan(seed=7, faults=[
        FaultSpec(kind="link_corrupt", probability=0.02)])
    with inject(plan) as engine:
        run_the_experiment()
    print(engine.stats.as_dict())

Scheduled (hard) faults — crossbar ports dying, nodes crashing — are
applied on the simulation timeline by :class:`FaultController`, which also
feeds the route tables so traffic reroutes around the failure.  The whole
loop (plan -> injection -> recovery -> report) is packaged by
:func:`repro.faults.chaos.run_chaos` and the ``chaos`` CLI subcommand.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.faults.engine import FaultEngine, FaultInjection
from repro.faults.harness import (
    HARNESS_FAULTS_ENV,
    HARNESS_KINDS,
    HarnessFaultError,
    HarnessFaultPlan,
    HarnessFaultSpec,
    load_harness_plan,
)
from repro.faults.plan import (
    KINDS,
    SCHEDULED_KINDS,
    STOCHASTIC_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    uniform_error_plan,
)

FAULTS = FaultInjection()


@contextmanager
def inject(plan_or_engine: Union[FaultPlan, FaultEngine],
           ) -> Iterator[FaultEngine]:
    """Enable fault injection for the block; restores the prior state
    afterwards (nesting swaps engines, it does not merge them)."""
    if isinstance(plan_or_engine, FaultEngine):
        engine = plan_or_engine
    else:
        engine = FaultEngine(plan_or_engine)
    previous: tuple[bool, Optional[FaultEngine]] = (FAULTS.enabled,
                                                    FAULTS.engine)
    FAULTS.activate(engine)
    try:
        yield engine
    finally:
        FAULTS.enabled, FAULTS.engine = previous


__all__ = [
    "FAULTS",
    "FaultEngine",
    "FaultInjection",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "HARNESS_FAULTS_ENV",
    "HARNESS_KINDS",
    "HarnessFaultError",
    "HarnessFaultPlan",
    "HarnessFaultSpec",
    "KINDS",
    "load_harness_plan",
    "SCHEDULED_KINDS",
    "STOCHASTIC_KINDS",
    "inject",
    "uniform_error_plan",
]
