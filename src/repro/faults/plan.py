"""Fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a seed plus a list of :class:`FaultSpec` entries.
Each spec is either *stochastic* (a per-opportunity probability inside a
time window — link bit-error bursts, flit drops, transceiver stalls, NI
FIFO drops, node hangs) or *scheduled* (a hard fault applied at one
simulation time — a crossbar output port dying, a node crashing).

Plans serialise to/from JSON so a chaos experiment is reproducible from a
file plus a seed::

    {"seed": 7,
     "faults": [
       {"kind": "link_corrupt", "site": "*", "probability": 0.02,
        "start_ns": 0, "end_ns": 2e6},
       {"kind": "xbar_port_down", "site": "row0", "port": 2,
        "at_ns": 150000.0}
     ]}

Sites are matched by :mod:`fnmatch` glob against component names (links,
crossbars, transceivers, NIs, drivers, dispatchers all pass their ``name``
to the engine), so one spec can cover a whole layer (``"*spine*"``) or a
single component.
"""

from __future__ import annotations

import fnmatch
import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

#: Stochastic fault kinds (probability per opportunity inside a window).
STOCHASTIC_KINDS = (
    "link_corrupt",   # message corrupted crossing a link (CRC catches it)
    "flit_drop",      # a DATA flit vanishes on a link
    "xcvr_stall",     # transceiver pauses for stall_ns before relaying
    "ni_drop",        # NI send FIFO overflows and drops a DATA flit
    "node_hang",      # node CPU stalls for stall_ns per bus/driver op
)

#: Scheduled fault kinds (applied once at ``at_ns``).
SCHEDULED_KINDS = (
    "xbar_port_down",  # crossbar output port dies (needs site + port)
    "node_crash",      # node stops responding (needs node)
)

KINDS = STOCHASTIC_KINDS + SCHEDULED_KINDS


class FaultPlanError(ValueError):
    """Malformed fault plan or spec."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault, stochastic or scheduled.

    Attributes:
        kind: one of :data:`KINDS`.
        site: fnmatch glob against the component name the hook reports.
        probability: per-opportunity firing probability (stochastic kinds).
        start_ns / end_ns: active window for stochastic kinds.
        at_ns: application time for scheduled kinds.
        stall_ns: pause length for ``xcvr_stall`` / ``node_hang``.
        port: output channel for ``xbar_port_down``.
        node: node id for ``node_crash``.
    """

    kind: str
    site: str = "*"
    probability: float = 0.0
    start_ns: float = 0.0
    end_ns: float = math.inf
    at_ns: Optional[float] = None
    stall_ns: float = 5_000.0
    port: Optional[int] = None
    node: Optional[int] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}")
        if self.kind in STOCHASTIC_KINDS:
            if not 0.0 <= self.probability <= 1.0:
                raise FaultPlanError(
                    f"{self.kind}: probability {self.probability} not in [0, 1]")
            if self.end_ns < self.start_ns:
                raise FaultPlanError(
                    f"{self.kind}: window ends ({self.end_ns}) before it "
                    f"starts ({self.start_ns})")
        else:
            if self.at_ns is None or self.at_ns < 0:
                raise FaultPlanError(
                    f"{self.kind}: scheduled faults need a nonnegative at_ns")
        if self.kind == "xbar_port_down" and self.port is None:
            raise FaultPlanError("xbar_port_down needs a port")
        if self.kind == "node_crash" and self.node is None:
            raise FaultPlanError("node_crash needs a node")
        if self.stall_ns < 0:
            raise FaultPlanError("stall_ns must be nonnegative")

    @property
    def scheduled(self) -> bool:
        return self.kind in SCHEDULED_KINDS

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatchcase(site, self.site)

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "site": self.site}
        if self.kind in STOCHASTIC_KINDS:
            out["probability"] = self.probability
            if self.start_ns:
                out["start_ns"] = self.start_ns
            if self.end_ns != math.inf:
                out["end_ns"] = self.end_ns
            if self.kind in ("xcvr_stall", "node_hang"):
                out["stall_ns"] = self.stall_ns
        else:
            out["at_ns"] = self.at_ns
            if self.port is not None:
                out["port"] = self.port
            if self.node is not None:
                out["node"] = self.node
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "FaultSpec":
        if not isinstance(raw, Mapping):
            raise FaultPlanError(f"fault spec must be an object, got {raw!r}")
        allowed = {"kind", "site", "probability", "start_ns", "end_ns",
                   "at_ns", "stall_ns", "port", "node"}
        unknown = set(raw) - allowed
        if unknown:
            raise FaultPlanError(
                f"unknown fault spec fields {sorted(unknown)}")
        if "kind" not in raw:
            raise FaultPlanError("fault spec needs a kind")
        return cls(**{k: raw[k] for k in raw})  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the faults to inject; the whole chaos experiment input."""

    seed: int = 0
    faults: Sequence[FaultSpec] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    @property
    def stochastic(self) -> List[FaultSpec]:
        return [s for s in self.faults if not s.scheduled]

    @property
    def scheduled(self) -> List[FaultSpec]:
        return [s for s in self.faults if s.scheduled]

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "faults": [s.to_dict() for s in self.faults]}

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "FaultPlan":
        if not isinstance(raw, Mapping):
            raise FaultPlanError(f"fault plan must be an object, got {raw!r}")
        unknown = set(raw) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(f"unknown fault plan fields {sorted(unknown)}")
        faults_raw = raw.get("faults", [])
        if not isinstance(faults_raw, Sequence) or isinstance(faults_raw, str):
            raise FaultPlanError("'faults' must be a list of fault specs")
        return cls(seed=int(raw.get("seed", 0)),
                   faults=[FaultSpec.from_dict(f) for f in faults_raw])

    def save(self, path: str) -> None:
        from repro.atomicio import atomic_write_text

        atomic_write_text(
            path,
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                raw = json.load(handle)
            except json.JSONDecodeError as exc:
                raise FaultPlanError(f"{path}: not valid JSON: {exc}") from exc
        return cls.from_dict(raw)


def uniform_error_plan(error_rate: float, seed: int = 0,
                       site: str = "*") -> FaultPlan:
    """The classic whole-run uniform link corruption plan (the only
    scenario the old injector could express), as a :class:`FaultPlan`."""
    if error_rate <= 0.0:
        return FaultPlan(seed=seed)
    return FaultPlan(seed=seed, faults=[
        FaultSpec(kind="link_corrupt", site=site, probability=error_rate)])
