"""Harness-level fault injection: break the *runner*, not the machine.

PR 2's :mod:`repro.faults` injects faults into the simulated hardware;
this module extends the same philosophy to the execution harness itself,
so CI can deterministically kill, hang or corrupt pool workers mid-sweep
and assert that the supervisor (:mod:`repro.parallel.supervise`) recovers.

A :class:`HarnessFaultPlan` is injected through the environment —
``REPRO_HARNESS_FAULTS`` holds either inline JSON or a path to a JSON
file — because pool workers inherit the environment however they were
started (fork or spawn), and because the plan must reach the worker
*before* any task does.  Kinds:

* ``worker_crash`` — the worker ``os._exit``\\ s while running point
  ``point`` (attempt ``attempt``, default 0): a simulated OOM kill.
* ``worker_hang`` — the worker sleeps ``hang_s`` seconds before running
  the point: a simulated livelock, caught by ``--point-timeout``.
* ``result_corrupt`` — the worker flips a byte of its pickled result
  after digesting it, so the supervisor's integrity check fails and the
  point retries.
* ``run_interrupt`` — supervisor-side: after ``after_points`` points
  complete in this run, a clean SIGINT-equivalent shutdown triggers
  (journal flushed, workers terminated) — the deterministic stand-in for
  Ctrl-C that the ``supervision-smoke`` CI job resumes from.

Worker kinds fire **only inside pool worker processes** (the worker main
loop applies them); in-process serial execution is never crashed or hung
by a plan, which is what lets the supervisor degrade from a dying pool
to serial execution and still finish.  ``attempt`` defaults to 0 so a
faulted point succeeds on retry; ``attempt: null`` fires on every
attempt and ``point: null`` on every point.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

HARNESS_FAULTS_ENV = "REPRO_HARNESS_FAULTS"

WORKER_KINDS = ("worker_crash", "worker_hang", "result_corrupt")
SUPERVISOR_KINDS = ("run_interrupt",)
HARNESS_KINDS = WORKER_KINDS + SUPERVISOR_KINDS

#: Exit status a crash fault kills the worker with (distinctive in logs).
CRASH_EXIT_CODE = 17


class HarnessFaultError(ValueError):
    """Malformed harness fault plan or spec."""


@dataclass(frozen=True)
class HarnessFaultSpec:
    """One harness fault.

    Attributes:
        kind: one of :data:`HARNESS_KINDS`.
        point: sweep point index to hit (``None`` = every point).
        attempt: attempt number to hit (``None`` = every attempt; the
            default 0 hits only the first try, so retries succeed).
        hang_s: sleep length for ``worker_hang``.
        after_points: completed-point count that triggers
            ``run_interrupt``.
    """

    kind: str
    point: Optional[int] = None
    attempt: Optional[int] = 0
    hang_s: float = 3600.0
    after_points: int = 0

    def __post_init__(self):
        if self.kind not in HARNESS_KINDS:
            raise HarnessFaultError(
                f"unknown harness fault kind {self.kind!r}; "
                f"choose from {HARNESS_KINDS}")
        if self.hang_s < 0:
            raise HarnessFaultError("hang_s must be nonnegative")
        if self.kind == "run_interrupt" and self.after_points < 0:
            raise HarnessFaultError("after_points must be nonnegative")

    def hits(self, point: int, attempt: int) -> bool:
        """Does this worker-side fault fire for (point, attempt)?"""
        if self.kind not in WORKER_KINDS:
            return False
        if self.point is not None and self.point != point:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind}
        if self.point is not None:
            out["point"] = self.point
        if self.attempt != 0:
            out["attempt"] = self.attempt
        if self.kind == "worker_hang":
            out["hang_s"] = self.hang_s
        if self.kind == "run_interrupt":
            out["after_points"] = self.after_points
        return out

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "HarnessFaultSpec":
        if not isinstance(raw, Mapping):
            raise HarnessFaultError(
                f"harness fault spec must be an object, got {raw!r}")
        allowed = {"kind", "point", "attempt", "hang_s", "after_points"}
        unknown = set(raw) - allowed
        if unknown:
            raise HarnessFaultError(
                f"unknown harness fault fields {sorted(unknown)}")
        if "kind" not in raw:
            raise HarnessFaultError("harness fault spec needs a kind")
        return cls(**{k: raw[k] for k in raw})  # type: ignore[arg-type]


@dataclass(frozen=True)
class HarnessFaultPlan:
    """The faults to inject into one harness run."""

    faults: Sequence[HarnessFaultSpec] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def worker_faults(self, point: int,
                      attempt: int) -> List[HarnessFaultSpec]:
        return [s for s in self.faults if s.hits(point, attempt)]

    def interrupt_after(self) -> Optional[int]:
        """The completed-point count at which to interrupt, or ``None``."""
        thresholds = [s.after_points for s in self.faults
                      if s.kind == "run_interrupt"]
        return min(thresholds) if thresholds else None

    def to_dict(self) -> Dict[str, object]:
        return {"faults": [s.to_dict() for s in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "HarnessFaultPlan":
        if not isinstance(raw, Mapping):
            raise HarnessFaultError(
                f"harness fault plan must be an object, got {raw!r}")
        unknown = set(raw) - {"faults"}
        if unknown:
            raise HarnessFaultError(
                f"unknown harness fault plan fields {sorted(unknown)}")
        faults_raw = raw.get("faults", [])
        if not isinstance(faults_raw, Sequence) or isinstance(faults_raw,
                                                              str):
            raise HarnessFaultError("'faults' must be a list of specs")
        return cls(faults=[HarnessFaultSpec.from_dict(f)
                           for f in faults_raw])


_plan_memo: Tuple[Optional[str], Optional[HarnessFaultPlan]] = (None, None)


def load_harness_plan() -> Optional[HarnessFaultPlan]:
    """The plan from ``$REPRO_HARNESS_FAULTS`` (inline JSON or a path),
    or ``None``.  Memoised per raw value, so workers parse it once."""
    global _plan_memo
    raw = os.environ.get(HARNESS_FAULTS_ENV)
    if not raw:
        return None
    if _plan_memo[0] == raw:
        return _plan_memo[1]
    text = raw if raw.lstrip().startswith("{") else open(raw).read()
    plan = HarnessFaultPlan.from_dict(json.loads(text))
    _plan_memo = (raw, plan)
    return plan


def apply_worker_faults(plan: Optional[HarnessFaultPlan], point: int,
                        attempt: int) -> None:
    """Crash or hang the current process per the plan.  Call this ONLY
    from a pool worker's main loop — ``worker_crash`` is ``os._exit``."""
    if plan is None:
        return
    for spec in plan.worker_faults(point, attempt):
        if spec.kind == "worker_hang":
            time.sleep(spec.hang_s)
        elif spec.kind == "worker_crash":
            os._exit(CRASH_EXIT_CODE)


def corrupt_result(plan: Optional[HarnessFaultPlan], point: int,
                   attempt: int, blob: bytes) -> bytes:
    """Flip a byte of the result blob if a ``result_corrupt`` spec hits
    (after the digest was taken, so the supervisor detects it)."""
    if plan is None or not blob:
        return blob
    for spec in plan.worker_faults(point, attempt):
        if spec.kind == "result_corrupt":
            return bytes([blob[0] ^ 0xFF]) + blob[1:]
    return blob
