"""Set-associative write-back caches with per-line MESI state.

This is the hot path of the node-performance simulations, so the
implementation favours plain dicts and ints: each cache set is a dict
mapping tag -> MESI state, with Python's insertion order doubling as LRU
order (re-inserting a tag moves it to most-recently-used).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.memory.address import is_power_of_two
from repro.obs import OBS
from repro.sim.stats import Counter


class MESIState(enum.IntEnum):
    """MESI cache-coherence states."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


class AccessType(enum.IntEnum):
    READ = 0
    WRITE = 1
    INSTR = 2


# Index -> member table: MESIState(value) walks the enum machinery on
# every call, which is measurable on the per-access path; indexing this
# tuple returns the identical singletons.
_MESI_MEMBERS = (MESIState.INVALID, MESIState.SHARED, MESIState.EXCLUSIVE,
                 MESIState.MODIFIED)


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of a cache.

    Attributes:
        size_bytes: total capacity.
        line_bytes: cache-line length (64 on the MPC620, 32 on the
            UltraSPARC-I and Pentium II — a first-order effect in Fig. 7).
        associativity: ways per set.
    """

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self):
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"line size must be a power of two, got {self.line_bytes}")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"cache of {self.size_bytes} B cannot be divided into "
                f"{self.associativity}-way sets of {self.line_bytes} B lines")
        if self.num_sets < 1 or not is_power_of_two(self.num_sets):
            raise ValueError(
                f"geometry yields {self.num_sets} sets; must be a power of two")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def scaled(self, factor: int) -> "CacheGeometry":
        """Same shape with capacity divided by ``factor`` (line size kept).

        Used to shrink simulations while preserving line-length effects.
        """
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {factor}")
        size = max(self.line_bytes * self.associativity, self.size_bytes // factor)
        return CacheGeometry(size, self.line_bytes, self.associativity)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a cache access.

    Attributes:
        hit: True when the line was present (in any valid state).
        state: MESI state *after* the access (INVALID only on bypass).
        writeback: line address evicted in MODIFIED state, else None.
        evicted: line address of a clean eviction, else None.
        upgraded: True when a SHARED line needed an upgrade for a write.
    """

    hit: bool
    state: MESIState
    writeback: Optional[int] = None
    evicted: Optional[int] = None
    upgraded: bool = False


class Cache:
    """One level of a write-back, write-allocate, LRU cache.

    The cache tracks *line presence and MESI state only* — no data contents.
    Timing is decided by the surrounding hierarchy/fabric models from the
    :class:`AccessResult`.
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache",
                 level: str = ""):
        self.geometry = geometry
        self.name = name
        # Observability label; derived from the conventional "....l1" /
        # "....l2" naming when the builder does not pass it explicitly.
        self.level = level or name.rsplit(".", 1)[-1]
        self._set_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = geometry.num_sets - 1
        self._ways = geometry.associativity
        # sets[i] maps tag -> MESIState; insertion order is LRU order.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(geometry.num_sets)]
        self.stats = Counter(name)

    # -- geometry helpers --------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr >> self._set_shift) & self._set_mask

    def tag_of(self, addr: int) -> int:
        return addr >> self._set_shift

    def line_base(self, tag: int) -> int:
        return tag << self._set_shift

    # -- inspection ---------------------------------------------------------

    def state_of(self, addr: int) -> MESIState:
        """MESI state of the line containing ``addr`` (INVALID if absent)."""
        tag = self.tag_of(addr)
        state = self._sets[tag & self._set_mask].get(tag)
        return MESIState.INVALID if state is None else _MESI_MEMBERS[state]

    def contains(self, addr: int) -> bool:
        tag = self.tag_of(addr)
        return tag in self._sets[tag & self._set_mask]

    def resident_lines(self) -> Iterator[Tuple[int, MESIState]]:
        """Yield (line_base_address, state) for every valid line."""
        for line_set in self._sets:
            for tag, state in line_set.items():
                yield self.line_base(tag), MESIState(state)

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- the access path -----------------------------------------------------

    def access(self, addr: int, access: AccessType,
               fill_state: MESIState = MESIState.EXCLUSIVE) -> AccessResult:
        """Perform a CPU-side access; fill on miss.

        ``fill_state`` is the MESI state a missing line is installed in —
        the coherence domain passes SHARED when another cache holds the
        line, EXCLUSIVE otherwise; writes always install/upgrade to
        MODIFIED.
        """
        tag = self.tag_of(addr)
        line_set = self._sets[tag & self._set_mask]
        state = line_set.get(tag)
        is_write = access == AccessType.WRITE

        if state is not None:
            # Hit: refresh LRU position.
            del line_set[tag]
            upgraded = False
            if is_write:
                upgraded = state == MESIState.SHARED
                state = int(MESIState.MODIFIED)
            elif state == MESIState.INVALID:  # pragma: no cover - never stored
                raise AssertionError("INVALID lines are never resident")
            line_set[tag] = state
            self.stats.incr("write_hit" if is_write else "read_hit")
            if upgraded:
                self.stats.incr("upgrade")
            if OBS.enabled:
                OBS.metrics.incr("cache.hit", cache=self.name,
                                 level=self.level,
                                 op="write" if is_write else "read")
            return AccessResult(hit=True, state=_MESI_MEMBERS[state],
                                upgraded=upgraded)

        # Miss: evict LRU if the set is full, then fill.
        writeback = evicted = None
        if len(line_set) >= self._ways:
            victim_tag = next(iter(line_set))
            victim_state = line_set.pop(victim_tag)
            victim_addr = self.line_base(victim_tag)
            if victim_state == MESIState.MODIFIED:
                writeback = victim_addr
                self.stats.incr("writeback")
            else:
                evicted = victim_addr
                self.stats.incr("clean_evict")
        new_state = int(MESIState.MODIFIED) if is_write else int(fill_state)
        line_set[tag] = new_state
        self.stats.incr("write_miss" if is_write else "read_miss")
        if OBS.enabled:
            OBS.metrics.incr("cache.miss", cache=self.name, level=self.level,
                             op="write" if is_write else "read")
            if writeback is not None:
                OBS.metrics.incr("cache.writeback", cache=self.name,
                                 level=self.level)
        return AccessResult(hit=False, state=_MESI_MEMBERS[new_state],
                            writeback=writeback, evicted=evicted)

    # -- coherence-side operations (driven by the snoop engine) --------------

    def snoop_invalidate(self, addr: int) -> Optional[int]:
        """Invalidate the line; return its address if dirty data must flush."""
        tag = self.tag_of(addr)
        line_set = self._sets[tag & self._set_mask]
        state = line_set.pop(tag, None)
        if state is None:
            return None
        self.stats.incr("snoop_invalidate")
        if state == MESIState.MODIFIED:
            self.stats.incr("snoop_flush")
            return self.line_base(tag)
        return None

    def snoop_downgrade(self, addr: int) -> Optional[int]:
        """Downgrade to SHARED; return line address if dirty data must flush.

        Models a remote read hitting a local M/E line: the MPC620 supplies
        the data cache-to-cache (intervention) and keeps a SHARED copy.
        """
        tag = self.tag_of(addr)
        line_set = self._sets[tag & self._set_mask]
        state = line_set.get(tag)
        if state is None:
            return None
        flush = self.line_base(tag) if state == MESIState.MODIFIED else None
        if state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
            line_set[tag] = int(MESIState.SHARED)
            self.stats.incr("snoop_downgrade")
        return flush

    def invalidate_all(self) -> int:
        """Flush the whole cache; returns number of dirty lines discarded."""
        dirty = 0
        for line_set in self._sets:
            dirty += sum(1 for s in line_set.values() if s == MESIState.MODIFIED)
            line_set.clear()
        return dirty

    # -- statistics -----------------------------------------------------------

    def hit_rate(self) -> float:
        hits = self.stats["read_hit"] + self.stats["write_hit"]
        total = hits + self.stats["read_miss"] + self.stats["write_miss"]
        return hits / total if total else 0.0

    def miss_count(self) -> int:
        return self.stats["read_miss"] + self.stats["write_miss"]

    def access_count(self) -> int:
        return (self.stats["read_hit"] + self.stats["write_hit"]
                + self.stats["read_miss"] + self.stats["write_miss"])

    def reset_stats(self) -> None:
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        g = self.geometry
        return (f"<Cache {self.name}: {g.size_bytes // 1024} KB, "
                f"{g.line_bytes} B lines, {g.associativity}-way>")
