"""Address arithmetic helpers.

The MPC620 has a 40-bit physical address space; all addresses in the
library are plain Python ints interpreted as byte addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

MPC620_PHYSICAL_BITS = 40
MPC620_PHYSICAL_LIMIT = 1 << MPC620_PHYSICAL_BITS


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def line_address(addr: int, line_bytes: int) -> int:
    """The address of the cache line containing ``addr``."""
    return addr & ~(line_bytes - 1)


def line_offset(addr: int, line_bytes: int) -> int:
    return addr & (line_bytes - 1)


@dataclass(frozen=True)
class AddressMap:
    """A simple allocator of non-overlapping address regions.

    Benchmarks allocate their arrays through an AddressMap so that traces
    use realistic, page-aligned, non-aliasing addresses.
    """

    base: int = 0x1000_0000
    page_bytes: int = 4096

    def __post_init__(self):
        if not is_power_of_two(self.page_bytes):
            raise ValueError(f"page size must be a power of two, got {self.page_bytes}")

    def allocator(self) -> "RegionAllocator":
        return RegionAllocator(self.base, self.page_bytes)


class RegionAllocator:
    """Bump allocator returning page-aligned regions."""

    def __init__(self, base: int, page_bytes: int):
        self._next = base
        self._page = page_bytes
        self.regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, size_bytes: int, align: int | None = None) -> int:
        """Allocate ``size_bytes``; returns the base address."""
        if size_bytes <= 0:
            raise ValueError(f"allocation size must be positive, got {size_bytes}")
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        align = self._page if align is None else align
        if not is_power_of_two(align):
            raise ValueError(f"alignment must be a power of two, got {align}")
        base = (self._next + align - 1) & ~(align - 1)
        self._next = base + size_bytes
        if self._next >= MPC620_PHYSICAL_LIMIT:
            raise MemoryError("allocator exhausted the 40-bit physical space")
        self.regions[name] = (base, size_bytes)
        return base

    def region(self, name: str) -> tuple[int, int]:
        return self.regions[name]

    def contains(self, addr: int) -> str | None:
        """Name of the region containing ``addr``, or None."""
        for name, (base, size) in self.regions.items():
            if base <= addr < base + size:
                return name
        return None
