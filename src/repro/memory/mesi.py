"""MESI coherence across the caches of one SMP node.

The MPC620 maintains coherence with a bus snoop protocol: every address
phase is broadcast, the other caches look up the line and respond
(invalidate, downgrade, or supply data cache-to-cache).  The
:class:`CoherenceDomain` implements the protocol state machine over a set
of per-CPU caches; timing is layered on top by :mod:`repro.memory.mp`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.memory.cache import AccessType, Cache, MESIState
from repro.obs import OBS
from repro.sim.stats import Counter


class BusOp(enum.Enum):
    """Coherence bus transactions (MPC620 address-phase commands)."""

    READ = "read"               # read miss: fetch line, others downgrade
    READ_EXCLUSIVE = "rwitm"    # write miss: read-with-intent-to-modify
    UPGRADE = "kill"            # write hit on SHARED: invalidate others
    WRITEBACK = "writeback"     # dirty eviction to memory


@dataclass(frozen=True)
class CoherenceOutcome:
    """What one CPU access caused on the coherence fabric.

    Attributes:
        hit_local: line was valid in the requesting cache.
        bus_op: address-phase transaction issued (None on E/M hits).
        supplied_by: index of the cache that supplied data cache-to-cache
            (intervention), or None when memory supplied it.
        invalidated: indices of caches that lost the line.
        writebacks: line addresses written back to memory (victim and/or
            remote flush).
        final_state: requesting cache's MESI state afterwards.
    """

    hit_local: bool
    bus_op: Optional[BusOp]
    supplied_by: Optional[int] = None
    invalidated: tuple = ()
    writebacks: tuple = ()
    final_state: MESIState = MESIState.INVALID


class CoherenceError(RuntimeError):
    """Raised when the protocol invariant would be violated."""


@dataclass
class CoherenceDomain:
    """MESI protocol engine over the caches of one node.

    ``caches[i]`` is CPU *i*'s coherent cache (the L2 in the node models —
    L1s are kept inclusive by the hierarchy layer).
    """

    caches: List[Cache]
    stats: Counter = field(default_factory=lambda: Counter("coherence"))

    def __post_init__(self):
        if not self.caches:
            raise ValueError("a coherence domain needs at least one cache")

    @property
    def num_cpus(self) -> int:
        return len(self.caches)

    def access(self, cpu: int, addr: int, access: AccessType) -> CoherenceOutcome:
        """One CPU load/store/ifetch through the protocol."""
        if not 0 <= cpu < len(self.caches):
            raise IndexError(f"no CPU {cpu} in a {len(self.caches)}-CPU domain")
        cache = self.caches[cpu]
        local_state = cache.state_of(addr)
        is_write = access == AccessType.WRITE

        if local_state != MESIState.INVALID:
            return self._local_hit(cpu, cache, addr, access, local_state, is_write)
        return self._miss(cpu, cache, addr, access, is_write)

    # -- hit paths -----------------------------------------------------------

    def _local_hit(self, cpu: int, cache: Cache, addr: int, access: AccessType,
                   state: MESIState, is_write: bool) -> CoherenceOutcome:
        if is_write and state == MESIState.SHARED:
            # Upgrade: a "kill" address phase invalidates the other copies.
            invalidated = []
            for other_idx, other in self._others(cpu):
                flush = other.snoop_invalidate(addr)
                if flush is not None:  # pragma: no cover - S elsewhere, never M
                    raise CoherenceError(
                        f"line {addr:#x} MODIFIED in cache {other_idx} while "
                        f"SHARED in cache {cpu}")
                if other.state_of(addr) == MESIState.INVALID:
                    invalidated.append(other_idx)
            result = cache.access(addr, access)
            self.stats.incr("upgrade")
            if OBS.enabled:
                OBS.metrics.incr("coherence.bus_op", op=BusOp.UPGRADE.value,
                                 cpu=cpu)
            return CoherenceOutcome(
                hit_local=True, bus_op=BusOp.UPGRADE,
                invalidated=tuple(i for i in invalidated),
                final_state=result.state)
        # Plain hit: E/M hits (and S reads) need no address phase.
        result = cache.access(addr, access)
        self.stats.incr("hit")
        return CoherenceOutcome(hit_local=True, bus_op=None,
                                final_state=result.state)

    # -- miss path -------------------------------------------------------------

    def _miss(self, cpu: int, cache: Cache, addr: int, access: AccessType,
              is_write: bool) -> CoherenceOutcome:
        bus_op = BusOp.READ_EXCLUSIVE if is_write else BusOp.READ
        supplied_by: Optional[int] = None
        invalidated: list[int] = []
        writebacks: list[int] = []

        for other_idx, other in self._others(cpu):
            remote_state = other.state_of(addr)
            if remote_state == MESIState.INVALID:
                continue
            if is_write:
                flush = other.snoop_invalidate(addr)
                invalidated.append(other_idx)
                if remote_state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                    # Intervention: dirty/exclusive data comes cache-to-cache.
                    supplied_by = other_idx
                if flush is not None:
                    writebacks.append(flush)
            else:
                flush = other.snoop_downgrade(addr)
                if remote_state in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                    supplied_by = other_idx
                if flush is not None:
                    writebacks.append(flush)

        shared_elsewhere = any(
            other.state_of(addr) != MESIState.INVALID
            for _, other in self._others(cpu))
        fill_state = MESIState.SHARED if shared_elsewhere else MESIState.EXCLUSIVE
        result = cache.access(addr, access, fill_state=fill_state)
        if result.writeback is not None:
            writebacks.append(result.writeback)

        self.stats.incr("miss")
        if supplied_by is not None:
            self.stats.incr("cache_to_cache")
        if OBS.enabled:
            OBS.metrics.incr("coherence.bus_op", op=bus_op.value, cpu=cpu)
            if supplied_by is not None:
                OBS.metrics.incr("coherence.cache_to_cache", cpu=cpu)
        outcome = CoherenceOutcome(
            hit_local=False, bus_op=bus_op, supplied_by=supplied_by,
            invalidated=tuple(invalidated), writebacks=tuple(writebacks),
            final_state=result.state)
        self._check_invariants(addr)
        return outcome

    # -- invariants -----------------------------------------------------------

    def _others(self, cpu: int) -> Sequence[tuple[int, Cache]]:
        return [(i, c) for i, c in enumerate(self.caches) if i != cpu]

    def _check_invariants(self, addr: int) -> None:
        states = [c.state_of(addr) for c in self.caches]
        self.assert_line_coherent(addr, states)

    @staticmethod
    def assert_line_coherent(addr: int, states: Sequence[MESIState]) -> None:
        """MESI safety: at most one M/E copy, and never M/E alongside S."""
        owners = sum(1 for s in states
                     if s in (MESIState.MODIFIED, MESIState.EXCLUSIVE))
        sharers = sum(1 for s in states if s == MESIState.SHARED)
        if owners > 1 or (owners and sharers):
            raise CoherenceError(
                f"line {addr:#x} violates MESI: states {[s.name for s in states]}")

    def check_all_coherent(self) -> None:
        """Validate every resident line (test/debug helper)."""
        lines = set()
        for cache in self.caches:
            lines.update(base for base, _ in cache.resident_lines())
        for base in lines:
            self._check_invariants(base)
