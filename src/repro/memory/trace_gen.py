"""Address-trace generators for the benchmark kernels.

Generators yield ``(address, AccessType)`` pairs; the CPU timing models
attach per-access compute time from the kernel's instruction mix.  MatMult
traces follow the paper's *odd-stride* allocation (rows padded to an odd
element count so successive rows never map to the same cache sets).

Each generator also has an ``*_array`` twin producing the same reference
stream as a structured ``(addr, is_write)`` numpy array (the
``repro.memory.vec`` trace representation), element-for-element equal to
the iterator.  The regular kernels build their arrays with broadcasting;
the RNG-driven ones (:func:`random_array`, :func:`hint_sweep_array`)
materialise the iterator so the random call order — and hence the exact
address sequence — is preserved.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    np = None

from repro.memory.cache import AccessType

MemRef = Tuple[int, AccessType]


def odd_stride(n: int) -> int:
    """The paper's odd leading dimension for an n x n matrix."""
    return n if n % 2 == 1 else n + 1


def matmult_naive_trace(base_a: int, base_b: int, base_c: int, n: int,
                        elem_bytes: int = 8,
                        row_range: range | None = None) -> Iterator[MemRef]:
    """C = A * B with both matrices in row order (paper's naive version).

    Per inner-product step: one load from A's row (sequential) and one from
    B's column (stride = ld * elem_bytes — the cache-hostile pattern).  The
    running sum lives in a register; C[i][j] is stored once per (i, j).

    ``row_range`` restricts the generated rows of C, enabling sampled
    simulation (cold-start rows plus a steady-state window).
    """
    ld = odd_stride(n)
    rows = range(n) if row_range is None else row_range
    for i in rows:
        a_row = base_a + i * ld * elem_bytes
        for j in range(n):
            b_col = base_b + j * elem_bytes
            for k in range(n):
                yield a_row + k * elem_bytes, AccessType.READ
                yield b_col + k * ld * elem_bytes, AccessType.READ
            yield base_c + (i * ld + j) * elem_bytes, AccessType.WRITE


def transpose_trace(base_src: int, base_dst: int, n: int,
                    elem_bytes: int = 8) -> Iterator[MemRef]:
    """BT[j][i] = B[i][j]; reads sequential, writes column-strided."""
    ld = odd_stride(n)
    for i in range(n):
        for j in range(n):
            yield base_src + (i * ld + j) * elem_bytes, AccessType.READ
            yield base_dst + (j * ld + i) * elem_bytes, AccessType.WRITE


def matmult_transposed_trace(base_a: int, base_bt: int, base_c: int, n: int,
                             elem_bytes: int = 8,
                             row_range: range | None = None) -> Iterator[MemRef]:
    """C = A * BT with BT already transposed: both operands stream rows.

    This is the paper's version (b) inner loop — the transposition itself is
    generated separately by :func:`transpose_trace` so the harness can charge
    its time once while sampling product rows.
    """
    ld = odd_stride(n)
    rows = range(n) if row_range is None else row_range
    for i in rows:
        a_row = base_a + i * ld * elem_bytes
        for j in range(n):
            bt_row = base_bt + j * ld * elem_bytes
            for k in range(n):
                yield a_row + k * elem_bytes, AccessType.READ
                yield bt_row + k * elem_bytes, AccessType.READ
            yield base_c + (i * ld + j) * elem_bytes, AccessType.WRITE


def stream_trace(base: int, nbytes: int, elem_bytes: int = 8,
                 access: AccessType = AccessType.READ,
                 repeats: int = 1) -> Iterator[MemRef]:
    """Sequential sweep over a buffer, optionally repeated."""
    count = nbytes // elem_bytes
    for _ in range(repeats):
        for idx in range(count):
            yield base + idx * elem_bytes, access


def stride_trace(base: int, count: int, stride_bytes: int,
                 access: AccessType = AccessType.READ) -> Iterator[MemRef]:
    """Fixed-stride sweep (for cache-line and bank-conflict studies)."""
    for idx in range(count):
        yield base + idx * stride_bytes, access


def random_trace(base: int, nbytes: int, count: int, elem_bytes: int = 8,
                 write_fraction: float = 0.0, seed: int = 42) -> Iterator[MemRef]:
    """Uniform random accesses within a working set (latency-bound)."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError(f"write_fraction must be in [0,1], got {write_fraction}")
    rng = random.Random(seed)
    slots = max(1, nbytes // elem_bytes)
    for _ in range(count):
        addr = base + rng.randrange(slots) * elem_bytes
        access = (AccessType.WRITE if rng.random() < write_fraction
                  else AccessType.READ)
        yield addr, access


def hint_sweep_trace(base: int, records: int, record_bytes: int,
                     touched_fraction: float = 1.0,
                     write_fraction: float = 0.25,
                     seed: int = 7) -> Iterator[MemRef]:
    """One HINT iteration's memory behaviour over ``records`` interval logs.

    HINT scans its interval table to find the largest removable error, then
    rewrites the split interval's records.  The interval data lives in
    parallel arrays (the "logs" describing intervals and the bounds
    calculated for them), so the information "is accessed in more complex
    ways than just a consecutive order" (paper Section 5.1.1): the scan is
    modelled as two interleaved passes — even records, then odd records —
    which visits every record once but defeats long-cache-line prefetching
    exactly as HINT's real layout does.  The split then rewrites a few
    random records.  ``touched_fraction`` lets the caller model partial
    scans (HINT keeps errors partially ordered).
    """
    rng = random.Random(seed)
    scan = int(records * touched_fraction)
    for parity in (0, 1):
        for idx in range(parity, scan, 2):
            yield base + idx * record_bytes, AccessType.READ
    writes = max(1, int(scan * write_fraction))
    for _ in range(writes):
        rec = rng.randrange(max(1, records))
        yield base + rec * record_bytes, AccessType.WRITE

# ---------------------------------------------------------------------------
# Array-native emitters (repro.memory.vec trace representation)
# ---------------------------------------------------------------------------


def _ref_array(size: int):
    if np is None:  # pragma: no cover - numpy is a baked-in dependency
        raise RuntimeError("array-native trace emitters require numpy")
    from repro.memory.vec import REF_DTYPE
    return np.empty(size, dtype=REF_DTYPE)


def matmult_naive_array(base_a: int, base_b: int, base_c: int, n: int,
                        elem_bytes: int = 8,
                        row_range: range | None = None):
    """Array twin of :func:`matmult_naive_trace`."""
    ld = odd_stride(n)
    rows = range(n) if row_range is None else row_range
    i_idx = np.asarray(list(rows), dtype=np.int64)
    nr = len(i_idx)
    blk = 2 * n + 1
    out = _ref_array(nr * n * blk)
    addr = out["addr"].reshape(nr, n, blk)
    k = np.arange(n, dtype=np.int64)
    j = np.arange(n, dtype=np.int64)
    a_row = base_a + i_idx * (ld * elem_bytes)
    addr[:, :, 0:2 * n:2] = a_row[:, None, None] + k * elem_bytes
    addr[:, :, 1:2 * n:2] = (base_b + j * elem_bytes)[None, :, None] \
        + k * (ld * elem_bytes)
    addr[:, :, 2 * n] = base_c + (i_idx[:, None] * ld + j) * elem_bytes
    is_write = out["is_write"].reshape(nr, n, blk)
    is_write[:, :, :2 * n] = False
    is_write[:, :, 2 * n] = True
    return out


def transpose_array(base_src: int, base_dst: int, n: int,
                    elem_bytes: int = 8):
    """Array twin of :func:`transpose_trace`."""
    ld = odd_stride(n)
    out = _ref_array(n * n * 2)
    addr = out["addr"].reshape(n, n, 2)
    i = np.arange(n, dtype=np.int64)[:, None]
    j = np.arange(n, dtype=np.int64)[None, :]
    addr[:, :, 0] = base_src + (i * ld + j) * elem_bytes
    addr[:, :, 1] = base_dst + (j * ld + i) * elem_bytes
    is_write = out["is_write"].reshape(n, n, 2)
    is_write[:, :, 0] = False
    is_write[:, :, 1] = True
    return out


def matmult_transposed_array(base_a: int, base_bt: int, base_c: int, n: int,
                             elem_bytes: int = 8,
                             row_range: range | None = None):
    """Array twin of :func:`matmult_transposed_trace`."""
    ld = odd_stride(n)
    rows = range(n) if row_range is None else row_range
    i_idx = np.asarray(list(rows), dtype=np.int64)
    nr = len(i_idx)
    blk = 2 * n + 1
    out = _ref_array(nr * n * blk)
    addr = out["addr"].reshape(nr, n, blk)
    k = np.arange(n, dtype=np.int64)
    j = np.arange(n, dtype=np.int64)
    a_row = base_a + i_idx * (ld * elem_bytes)
    addr[:, :, 0:2 * n:2] = a_row[:, None, None] + k * elem_bytes
    addr[:, :, 1:2 * n:2] = (base_bt + j * (ld * elem_bytes))[None, :, None] \
        + k * elem_bytes
    addr[:, :, 2 * n] = base_c + (i_idx[:, None] * ld + j) * elem_bytes
    is_write = out["is_write"].reshape(nr, n, blk)
    is_write[:, :, :2 * n] = False
    is_write[:, :, 2 * n] = True
    return out


def stream_array(base: int, nbytes: int, elem_bytes: int = 8,
                 access: AccessType = AccessType.READ,
                 repeats: int = 1):
    """Array twin of :func:`stream_trace`."""
    count = nbytes // elem_bytes
    out = _ref_array(count * repeats)
    addrs = base + np.arange(count, dtype=np.int64) * elem_bytes
    out["addr"].reshape(max(repeats, 0), count)[:] = addrs
    out["is_write"] = access == AccessType.WRITE
    return out


def stride_array(base: int, count: int, stride_bytes: int,
                 access: AccessType = AccessType.READ):
    """Array twin of :func:`stride_trace`."""
    out = _ref_array(count)
    out["addr"] = base + np.arange(count, dtype=np.int64) * stride_bytes
    out["is_write"] = access == AccessType.WRITE
    return out


def random_array(base: int, nbytes: int, count: int, elem_bytes: int = 8,
                 write_fraction: float = 0.0, seed: int = 42):
    """Array twin of :func:`random_trace` (materialises the iterator so
    the RNG call order, hence the address sequence, is identical)."""
    from repro.memory.vec import coerce_trace
    return coerce_trace(random_trace(base, nbytes, count, elem_bytes,
                                     write_fraction, seed))


def hint_sweep_array(base: int, records: int, record_bytes: int,
                     touched_fraction: float = 1.0,
                     write_fraction: float = 0.25,
                     seed: int = 7):
    """Array twin of :func:`hint_sweep_trace` (materialised, see
    :func:`random_array`)."""
    from repro.memory.vec import coerce_trace
    return coerce_trace(hint_sweep_trace(base, records, record_bytes,
                                         touched_fraction, write_fraction,
                                         seed))
