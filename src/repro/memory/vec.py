"""Numpy-vectorized trace replay: whole-trace array kernels.

``replay_traces(..., backend="numpy")`` routes single-CPU replays through
this module.  The contract is the PR 3 one, unchanged: the replay must be
*access-for-access identical* to the reference ``run_interleaved`` path —
same hit/miss/evict/upgrade/TLB counters, same float operation order,
hence bit-identical timing.  The representation changes, the semantics
do not.

How a dict-LRU simulation becomes array code
--------------------------------------------

The scalar paths juggle one dict entry per reference.  Here a trace is a
contiguous ``(addr, is_write)`` structured array and each structure gets
its own whole-trace oracle:

* **L1 (chunked lockstep LRU).**  Per-set access streams are split into
  fixed-length chunks and simulated as parallel numpy *lanes*: the state
  is a ``lanes x ways`` tag/dirty/age matrix advanced one vectorized step
  per chunk position (hit detect via an equality matrix, LRU victim via
  ``argmin`` over ages).  Chunk 0 of every set is seeded from the true
  cache state, so it is exact from the start.  Later chunks start empty
  and rely on the LRU *convergence* property: once a chunk has touched
  ``ways`` distinct tags (position ``v``), set content and recency order
  are independent of the initial state.  A short scalar warmup replays
  ``[0, v]`` from the true state to fix up the pre-convergence outcomes,
  and the only post-``v`` divergence — dirty bits inherited across the
  chunk boundary — is repaired sparsely (flip the affected victim's
  writeback flag, or carry the bit into the final state).
* **TLB (previous-occurrence filter).**  An access whose page recurred
  within the last ``capacity`` accesses is a guaranteed LRU hit, so one
  argsort of the page column proves almost the whole trace; only the
  remaining *candidates* (first occurrences, wide recurrence gaps) run
  scalar, with exact victim selection keyed by last-occurrence lookups.
* **L2 (derived op stream).**  Every L2 side effect of both scalar routes
  is a plain ``Cache.access`` with ``fill_state=EXCLUSIVE`` semantics,
  from exactly three sources: a write L1-hit (dirtiness sync), a dirty L1
  victim writeback, and a refill of the missed line.  The op stream is
  scattered from the L1 outcomes, split per L2 set, and run through the
  same lockstep engine — one lane per set, seeded from the true L2 state,
  so no fixup is needed.
* **Timing (segmented cumsum).**  The local-clock recurrence
  ``issue = local + compute; local = issue + stall`` is an interleaved
  prefix sum, and ``np.cumsum`` is bit-identical to sequential float
  adds.  Stall values of non-refill-miss accesses take one of four
  precomputed constants (TLB hit/miss x L1 hit/L2 refill); only refill
  *misses* — which serialize through the address-phase sequencer and the
  DRAM banks — run scalar, calling the real sequencer/DRAM/data-bus
  objects between cumsum segments.

The engine falls back (returns ``None``) whenever its preconditions do
not hold: more than one active trace, SHARED lines resident anywhere in
the active CPU's caches, or non-empty caches on the other CPUs.  Callers
then take the scalar fast path, which is always available.  Stall models
must be pure functions of ``(latency_ns, compute_ns)`` — every model in
:mod:`repro.cpu.pipeline` is.

``replay_batch`` stacks many independent replays (one isolated
``MultiprocessorMemory`` each, e.g. many sweep points) into *one* padded
lane matrix per lockstep pass, so the per-step numpy dispatch overhead is
amortised across all of them — the batched mode behind the
``replay_backend`` sweep option.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.memory.cache import AccessType, MESIState

#: Structured dtype of an array-native trace (see repro.memory.trace_gen).
REF_DTYPE = np.dtype([("addr", np.int64), ("is_write", np.bool_)])

_EXCLUSIVE = int(MESIState.EXCLUSIVE)
_MODIFIED = int(MESIState.MODIFIED)
_SHARED = int(MESIState.SHARED)

#: L1 lane length.  Shorter chunks mean fewer lockstep steps (more lanes
#: in flight per step, amortising numpy dispatch) but more warmup
#: fixups; 256 balances the two on the fig7 geometry.
_L1_CHUNK = 256

# ---------------------------------------------------------------------------
# Trace coercion
# ---------------------------------------------------------------------------


def coerce_trace(trace) -> np.ndarray:
    """Materialise any ``(addr, AccessType)`` iterable as a REF_DTYPE array.

    Structured arrays pass through untouched.  Raises ``OverflowError``
    for addresses outside int64 (callers fall back to the scalar paths).
    """
    if isinstance(trace, np.ndarray):
        if trace.dtype == REF_DTYPE:
            return trace
        if trace.dtype.names == ("addr", "is_write"):
            return trace.astype(REF_DTYPE)
    write = AccessType.WRITE
    return np.fromiter(((addr, access == write) for addr, access in trace),
                       dtype=REF_DTYPE)


def iter_refs(arr: np.ndarray) -> Iterator[Tuple[int, AccessType]]:
    """Adapt an array trace back to ``(int, AccessType)`` pairs for the
    scalar replay paths (INSTR collapses to READ, as everywhere else)."""
    read = AccessType.READ
    write = AccessType.WRITE
    addrs = arr["addr"].tolist()
    writes = arr["is_write"].tolist()
    for addr, is_write in zip(addrs, writes):
        yield addr, (write if is_write else read)


# ---------------------------------------------------------------------------
# The lockstep LRU engine
# ---------------------------------------------------------------------------


def _lockstep(lane_tags: np.ndarray, lane_write: np.ndarray,
              lane_len: np.ndarray, ways: int,
              init_tags: np.ndarray, init_dirty: np.ndarray):
    """Advance many independent LRU sets one access per step, in lockstep.

    ``lane_tags``/``lane_write`` are ``(lanes, width)`` matrices padded
    with ``-1``/False past each lane's length; ``init_tags`` is
    ``(lanes, ways)`` in LRU->MRU order, ``-1`` marking empty ways.

    Returns per-position ``(hit, victim_tag, victim_dirty)`` matrices and
    the final ``(tags, dirty, age)`` state, all in input lane order.
    Empty ways are seeded with the lowest ages so misses fill them before
    evicting, exactly like ``Cache.access``.
    """
    nl = lane_tags.shape[0]
    if nl == 0:
        empty = np.empty((0, 0))
        return empty, empty, empty, init_tags, init_dirty, init_tags
    order = np.argsort(-lane_len, kind="stable")
    inv = np.empty(nl, dtype=np.int64)
    inv[order] = np.arange(nl)
    # Transposed (step, lane) layout: each step reads/writes one
    # contiguous row instead of a strided column.
    tags_t = np.ascontiguousarray(lane_tags[order].T)
    writes_t = np.ascontiguousarray(lane_write[order].T)
    lens = lane_len[order]
    lmax = int(lens[0])

    slot = np.arange(ways, dtype=np.int64)
    st_tags = lane_tags.dtype.type(0) + init_tags[order]  # fresh C copy
    st_dirty = init_dirty[order] | False
    st_age = np.ascontiguousarray(
        np.where(st_tags >= 0, slot + ways, slot - ways))
    flat_tags = st_tags.reshape(-1)
    flat_dirty = st_dirty.reshape(-1)
    flat_age = st_age.reshape(-1)

    out_hit_t = np.zeros((lmax, nl), dtype=bool)
    out_vt_t = np.full((lmax, nl), -1, dtype=np.int64)
    out_vd_t = np.zeros((lmax, nl), dtype=bool)
    active = np.searchsorted(-lens, -np.arange(lmax), side="left")
    row_base = np.arange(nl, dtype=np.int64) * ways
    base_age = 2 * ways
    # A matching way outranks every age (ages are >= -ways), so one
    # masked argmin picks the hit way *or* the LRU victim, and the score
    # value at the pick says which it was.  Victim tag/dirty are stored
    # raw and masked by the hit matrix after the loop, off the hot path.
    sentinel = np.int64(-2 * ways - 1)
    for t in range(lmax):
        a = int(active[t])
        cur = tags_t[t, :a]
        eq = st_tags[:a] == cur[:, None]
        score = np.where(eq, sentinel, st_age[:a])
        way = score.argmin(axis=1)
        idx = row_base[:a] + way
        hit = score.reshape(-1)[idx] == sentinel
        vd = flat_dirty[idx]
        out_hit_t[t, :a] = hit
        out_vt_t[t, :a] = flat_tags[idx]
        out_vd_t[t, :a] = vd
        flat_tags[idx] = cur
        flat_dirty[idx] = (vd & hit) | writes_t[t, :a]
        flat_age[idx] = base_age + t
    hit_m = out_hit_t.T[inv]
    vt_m = out_vt_t.T[inv]
    vd_m = out_vd_t.T[inv]
    vt_m[hit_m] = -1
    vd_m &= ~hit_m
    return hit_m, vt_m, vd_m, st_tags[inv], st_dirty[inv], st_age[inv]


def _state_dicts(fin_tags, fin_dirty, fin_age) -> List[Dict[int, bool]]:
    """Engine state rows -> ordered ``tag -> dirty`` dicts (LRU first)."""
    orders = np.argsort(fin_age, axis=1, kind="stable")
    sorted_tags = np.take_along_axis(fin_tags, orders, axis=1).tolist()
    sorted_dirty = np.take_along_axis(fin_dirty, orders, axis=1).tolist()
    return [{tag: dirty for tag, dirty in zip(row_t, row_d) if tag >= 0}
            for row_t, row_d in zip(sorted_tags, sorted_dirty)]


# ---------------------------------------------------------------------------
# Lane planning
# ---------------------------------------------------------------------------


class _LanePlan:
    """One cache structure's lane decomposition plus lockstep results."""

    __slots__ = ("ways", "order", "lane_set", "lane_start", "lane_len",
                 "lane_first", "width", "idx_flat", "tags", "writes",
                 "init_tags", "init_dirty", "hit", "vtag", "vdirty", "final")


def _plan_lanes(values, writes, sidx, n_sets: int, cache_sets, ways: int,
                chunk) -> _LanePlan:
    """Sort a tag stream by set index, cut per-set runs into lanes of at
    most ``chunk`` accesses (``None`` = one lane per set), build padded
    lane matrices, and seed each set's first lane from the true state.

    Lanes are contiguous slices of the sorted stream, so ``idx_flat``
    maps sorted positions to flattened ``(lane, pos)`` cells both for the
    scatter here and the outcome gather later.
    """
    plan = _LanePlan()
    plan.ways = ways
    # Set indices are tiny ints; int32 halves the radix passes of the
    # stable argsort that groups the stream by set.
    order = np.argsort(sidx.astype(np.int32, copy=False), kind="stable")
    plan.order = order
    counts = np.bincount(sidx, minlength=n_sets)
    set_starts = np.concatenate(([0], np.cumsum(counts)))
    lane_set: List[int] = []
    lane_start: List[int] = []
    lane_len: List[int] = []
    lane_first: List[bool] = []
    for s in np.nonzero(counts)[0]:
        count = int(counts[s])
        start = int(set_starts[s])
        step = count if chunk is None else chunk
        for off in range(0, count, step):
            lane_set.append(int(s))
            lane_start.append(start + off)
            lane_len.append(min(step, count - off))
            lane_first.append(off == 0)
    nl = len(lane_set)
    plan.lane_set = lane_set
    plan.lane_first = lane_first
    starts = np.asarray(lane_start, dtype=np.int64)
    lens = np.asarray(lane_len, dtype=np.int64)
    plan.lane_start = starts
    plan.lane_len = lens
    width = int(lens.max()) if nl else 0
    plan.width = width
    n = len(sidx)
    elem_lane = np.repeat(np.arange(nl, dtype=np.int64), lens)
    elem_pos = np.arange(n, dtype=np.int64) - np.repeat(starts, lens)
    plan.idx_flat = elem_lane * width + elem_pos
    plan.tags = np.full((nl, width), -1, dtype=np.int64)
    plan.writes = np.zeros((nl, width), dtype=bool)
    plan.tags.reshape(-1)[plan.idx_flat] = values[order]
    plan.writes.reshape(-1)[plan.idx_flat] = writes[order]
    init_tags = np.full((nl, ways), -1, dtype=np.int64)
    init_dirty = np.zeros((nl, ways), dtype=bool)
    for j in range(nl):
        if not lane_first[j]:
            continue
        line_set = cache_sets[lane_set[j]]
        if line_set:
            keys = list(line_set.keys())
            init_tags[j, :len(keys)] = keys
            init_dirty[j, :len(keys)] = [int(v) == _MODIFIED
                                         for v in line_set.values()]
    plan.init_tags = init_tags
    plan.init_dirty = init_dirty
    return plan


def _pooled_lockstep(plans: Sequence[_LanePlan]) -> None:
    """Run one lockstep pass over many plans' lanes, pooled by way count,
    and land results back on each plan (sliced to its own width)."""
    groups: Dict[int, List[_LanePlan]] = {}
    for plan in plans:
        groups.setdefault(plan.ways, []).append(plan)
    for ways, members in groups.items():
        width = max(p.width for p in members)

        def pad(mat, fill):
            if mat.shape[1] == width:
                return mat
            out = np.full((mat.shape[0], width), fill, dtype=mat.dtype)
            out[:, :mat.shape[1]] = mat
            return out

        tags = np.concatenate([pad(p.tags, -1) for p in members])
        writes = np.concatenate([pad(p.writes, False) for p in members])
        lens = np.concatenate([p.lane_len for p in members])
        init_t = np.concatenate([p.init_tags for p in members])
        init_d = np.concatenate([p.init_dirty for p in members])
        hit, vt, vd, ft, fd, fa = _lockstep(tags, writes, lens, ways,
                                            init_t, init_d)
        row = 0
        for plan in members:
            nl = plan.tags.shape[0]
            sl = slice(row, row + nl)
            plan.hit = np.ascontiguousarray(hit[sl, :plan.width])
            plan.vtag = np.ascontiguousarray(vt[sl, :plan.width])
            plan.vdirty = np.ascontiguousarray(vd[sl, :plan.width])
            plan.final = (ft[sl], fd[sl], fa[sl])
            row += nl


# ---------------------------------------------------------------------------
# Per-job phases
# ---------------------------------------------------------------------------


class _Job:
    """One replay being vectorized (its own memory/trace/stall model)."""

    __slots__ = (
        "index", "memory", "arr", "compute_ns", "stall", "n",
        "addr", "is_write",
        "l1_plan", "l1_hit", "l1_vtag", "l1_vdirty", "l1_final",
        "tlb_miss", "tlb_evictions", "tlb_final",
        "op_addr", "op_write", "op_refill", "op_src",
        "l2_plan", "op_hit", "op_vtag", "op_vdirty", "l2_final",
    )

    def __init__(self, index, memory, arr, compute_ns, stall):
        self.index = index
        self.memory = memory
        self.arr = arr
        self.compute_ns = compute_ns
        self.stall = stall
        self.n = len(arr)
        self.addr = np.ascontiguousarray(arr["addr"], dtype=np.int64)
        self.is_write = np.ascontiguousarray(arr["is_write"], dtype=bool)


def _supported(memory) -> bool:
    """Vec preconditions over the *state* of the node (CPU 0 active)."""
    for l1, l2 in zip(memory.l1s[1:], memory.l2s[1:]):
        if l1.occupancy() or l2.occupancy():
            return False
    for cache in (memory.l1s[0], memory.l2s[0]):
        for line_set in cache._sets:
            for state in line_set.values():
                if int(state) == _SHARED:
                    return False
    return True


def _plan_l1(job: _Job) -> None:
    l1 = job.memory.l1s[0]
    tag = job.addr >> l1._set_shift
    sidx = tag & l1._set_mask
    job.l1_plan = _plan_lanes(tag, job.is_write, sidx, len(l1._sets),
                              l1._sets, l1._ways, _L1_CHUNK)


def _fixup_l1(job: _Job) -> None:
    """Make chunked-lane outcomes exact, then scatter to trace order.

    Walks each set's chunks in order, carrying the true state across the
    chunk boundary: chunk 0 is exact by seeding; later chunks get a
    scalar warmup over ``[0, v]`` (``v`` = position of the ``ways``-th
    distinct tag) plus sparse dirty-bit repairs past ``v``.  The warmup
    loop simultaneously finds ``v``, replays the prefix from the true
    state, and tracks which tags the from-empty engine lane marked dirty
    (before convergence the engine cannot evict, so its dirty bit is
    exactly "was written in ``[0, v]``").
    """
    plan = job.l1_plan
    ways = plan.ways
    hit, vtag, vdirty = plan.hit, plan.vtag, plan.vdirty
    fin_tags, fin_dirty, fin_age = plan.final
    states = _state_dicts(fin_tags, fin_dirty, fin_age)
    # Convergence point per lane, found vectorially: in a from-empty
    # engine lane every pre-convergence miss is a new distinct tag, so
    # ``v`` is exactly the position of the ``ways``-th engine miss.
    # Padding counts as misses, but ``v >= length`` is treated as
    # non-converged anyway.
    miss_rank = np.cumsum(~hit, axis=1)
    v_arr = (miss_rank < ways).sum(axis=1).tolist()
    final_states: Dict[int, Dict[int, bool]] = {}
    state: Dict[int, bool] = {}
    for j, s in enumerate(plan.lane_set):
        length = int(plan.lane_len[j])
        if plan.lane_first[j]:
            state = states[j]
            final_states[s] = state
            continue
        v = v_arr[j] if v_arr[j] < length else None
        upto_v = length if v is None else v + 1
        tags_l = plan.tags[j, :upto_v].tolist()
        writes_l = plan.writes[j, :upto_v].tolist()
        written = set()
        o_hit: List[bool] = []
        o_vt: List[int] = []
        o_vd: List[bool] = []
        for tg, w in zip(tags_l, writes_l):
            if tg in state:
                dirty = state.pop(tg)
                state[tg] = dirty or w
                o_hit.append(True)
                o_vt.append(-1)
                o_vd.append(False)
            else:
                if len(state) >= ways:
                    victim = next(iter(state))
                    victim_dirty = state.pop(victim)
                else:
                    victim, victim_dirty = -1, False
                state[tg] = w
                o_hit.append(False)
                o_vt.append(victim)
                o_vd.append(victim_dirty)
            if w:
                written.add(tg)
        upto = len(o_hit)
        hit[j, :upto] = o_hit
        vtag[j, :upto] = o_vt
        vdirty[j, :upto] = o_vd
        if v is None:
            # Fewer than `ways` distinct tags: the whole lane was just
            # replayed scalar and `state` (aliased by final_states[s])
            # already holds the true final state.
            continue
        carried: Dict[int, bool] = {}
        row_vt = None
        for tg, true_dirty in state.items():
            if (tg in written) == true_dirty:
                continue
            if row_vt is None:
                row_tags = plan.tags[j, :length]
                row_writes = plan.writes[j, :length]
                row_vt = vtag[j, :length]
            occ = np.nonzero((row_tags == tg) & row_writes)[0]
            occ = occ[occ > v]
            evs = np.nonzero(row_vt == tg)[0]
            evs = evs[evs > v]
            first_write = int(occ[0]) if occ.size else length
            first_evict = int(evs[0]) if evs.size else length
            if first_evict < first_write:
                vdirty[j, first_evict] = true_dirty
            elif first_write == length and first_evict == length:
                carried[tg] = true_dirty
        state = states[j]
        state.update(carried)
        final_states[s] = state

    n = job.n
    flat = plan.idx_flat
    job.l1_hit = np.empty(n, dtype=bool)
    job.l1_vtag = np.empty(n, dtype=np.int64)
    job.l1_vdirty = np.empty(n, dtype=bool)
    job.l1_hit[plan.order] = hit.reshape(-1)[flat]
    job.l1_vtag[plan.order] = vtag.reshape(-1)[flat]
    job.l1_vdirty[plan.order] = vdirty.reshape(-1)[flat]
    job.l1_final = final_states


# ---------------------------------------------------------------------------
# TLB phase
# ---------------------------------------------------------------------------


def _run_tlb_scalar(job: _Job, pages, resident: Dict[int, None],
                    capacity: int) -> None:
    """Plain dict-LRU TLB replay (``Tlb.access`` semantics, evict before
    insert) — the fallback when the trace is miss-dominated."""
    miss = np.zeros(job.n, dtype=bool)
    evictions = 0
    for i, page in enumerate(pages.tolist()):
        if page in resident:
            del resident[page]
            resident[page] = None
        else:
            if len(resident) >= capacity:
                del resident[next(iter(resident))]
                evictions += 1
            resident[page] = None
            miss[i] = True
    job.tlb_miss = miss
    job.tlb_evictions = evictions
    job.tlb_final = resident


def _run_tlb(job: _Job) -> None:
    """Fully-associative LRU TLB oracle via a previous-occurrence filter.

    An access whose page recurred within the last ``capacity`` accesses
    touched at most ``capacity - 1`` other pages in between, so it is a
    guaranteed hit — no residency bookkeeping needed.  Only *candidate*
    accesses (first occurrences, or recurrence gaps wider than the
    capacity) can change the resident set, and all of those run scalar:
    a membership test, plus on a miss an exact LRU victim search keyed by
    each resident page's last occurrence (pages untouched since the
    initial state are older than every touched page, in their original
    dict order).  Recency between candidates never needs materialising.
    """
    tlb = job.memory.tlbs[0]
    pages = job.addr >> tlb._page_shift
    capacity = tlb.config.entries
    resident: Dict[int, None] = dict(tlb._entries)
    n = job.n

    sort_key = pages
    if int(pages.max()) < 2 ** 31:
        sort_key = pages.astype(np.int32)
    order = np.argsort(sort_key, kind="stable")
    sorted_pages = pages[order]
    same = np.empty(n, dtype=bool)
    same[0] = False
    same[1:] = sorted_pages[1:] == sorted_pages[:-1]
    # Candidate detection directly in sorted space: within a page group
    # consecutive entries of ``order`` are that page's successive
    # occurrence positions, so the recurrence distance is their diff.
    dist_ok = np.zeros(n, dtype=bool)
    dist_ok[1:] = same[1:] & ((order[1:] - order[:-1]) <= capacity)
    cand_pos = order[~dist_ok]
    if len(cand_pos) > n // 8:
        _run_tlb_scalar(job, pages, resident, capacity)
        return
    cand_pos.sort()

    # Page-group bounds into ``order`` (ascending occurrence positions),
    # for last-touch lookups; one shared list avoids per-page tolist().
    starts = np.nonzero(~same)[0]
    ends = np.append(starts[1:], n)
    bounds: Dict[int, Tuple[int, int]] = {}
    for b, e in zip(starts.tolist(), ends.tolist()):
        bounds[int(sorted_pages[b])] = (b, e)
    order_list = order.tolist()
    init_rank = {page: rank - capacity
                 for rank, page in enumerate(resident)}

    miss = np.zeros(n, dtype=bool)
    evictions = 0
    from bisect import bisect_left
    for i, page in zip(cand_pos.tolist(), pages[cand_pos].tolist()):
        if page in resident:
            continue
        miss[i] = True
        if len(resident) >= capacity:
            victim = None
            victim_key = None
            for q in resident:
                be = bounds.get(q)
                if be is None:
                    last = init_rank[q]
                else:
                    b, e = be
                    k = bisect_left(order_list, i, b, e)
                    last = order_list[k - 1] if k > b else init_rank[q]
                if victim_key is None or last < victim_key:
                    victim_key = last
                    victim = q
            del resident[victim]
            evictions += 1
        resident[page] = None

    # Final recency order: initial pages never touched keep their original
    # relative order and precede everything touched; touched resident
    # pages order by overall last occurrence.
    untouched = []
    touched = []
    for q in resident:
        be = bounds.get(q)
        if be is None:
            untouched.append(q)
        else:
            touched.append((order_list[be[1] - 1], q))
    touched.sort()
    final: Dict[int, None] = {q: None for q in untouched}
    for _, q in touched:
        final[q] = None
    job.tlb_miss = miss
    job.tlb_evictions = evictions
    job.tlb_final = final


# ---------------------------------------------------------------------------
# L2 phase: derived op stream
# ---------------------------------------------------------------------------


def _plan_l2(job: _Job) -> None:
    """Scatter the three L2 op sources out of the L1 outcomes.

    Per access, in reference order: a write L1-hit syncs dirtiness (WH); an
    L1 miss first writes back a dirty victim (VWB), then refills the line
    (REFILL).  Every op is a plain ``Cache.access`` on the private L2.
    """
    l1 = job.memory.l1s[0]
    l2 = job.memory.l2s[0]
    addr, is_write = job.addr, job.is_write
    l1_hit, vdirty = job.l1_hit, job.l1_vdirty

    wh = l1_hit & is_write
    l1_miss = ~l1_hit
    vwb = l1_miss & vdirty
    counts = wh.astype(np.int64) + l1_miss + vwb
    cum = np.cumsum(counts)
    total = int(cum[-1])
    offsets = cum
    offsets -= counts
    op_addr = np.empty(total, dtype=np.int64)
    op_write = np.empty(total, dtype=bool)
    op_refill = np.zeros(total, dtype=bool)
    op_src = np.empty(total, dtype=np.int64)

    # Position lists once per source; every later access is a short
    # gather instead of another O(n) boolean-mask pass.
    wh_pos = np.nonzero(wh)[0]
    vwb_pos = np.nonzero(vwb)[0]
    miss_pos = np.nonzero(l1_miss)[0]
    idx = offsets[wh_pos]
    op_addr[idx] = addr[wh_pos]
    op_write[idx] = True
    op_src[idx] = wh_pos
    idx = offsets[vwb_pos]
    op_addr[idx] = job.l1_vtag[vwb_pos] << l1._set_shift
    op_write[idx] = True
    op_src[idx] = vwb_pos
    idx = offsets[miss_pos] + vwb[miss_pos]
    op_addr[idx] = addr[miss_pos]
    op_write[idx] = is_write[miss_pos]
    op_refill[idx] = True
    op_src[idx] = miss_pos

    job.op_addr, job.op_write = op_addr, op_write
    job.op_refill, job.op_src = op_refill, op_src

    tag = op_addr >> l2._set_shift
    sidx = tag & l2._set_mask
    job.l2_plan = _plan_lanes(tag, op_write, sidx, len(l2._sets), l2._sets,
                              l2._ways, None)


def _gather_l2(job: _Job) -> None:
    """Per-set L2 lanes are exact (true seed, no chunking): just scatter
    outcomes back to op order and keep the final states for the commit."""
    plan = job.l2_plan
    total = len(job.op_addr)
    fin_tags, fin_dirty, fin_age = plan.final
    states = _state_dicts(fin_tags, fin_dirty, fin_age)
    job.l2_final = {s: states[j] for j, s in enumerate(plan.lane_set)}
    flat = plan.idx_flat
    job.op_hit = np.empty(total, dtype=bool)
    job.op_vtag = np.empty(total, dtype=np.int64)
    job.op_vdirty = np.empty(total, dtype=bool)
    job.op_hit[plan.order] = plan.hit.reshape(-1)[flat]
    job.op_vtag[plan.order] = plan.vtag.reshape(-1)[flat]
    job.op_vdirty[plan.order] = plan.vdirty.reshape(-1)[flat]


# ---------------------------------------------------------------------------
# Timing, stats, commit
# ---------------------------------------------------------------------------


def _finish(job: _Job):
    from repro.memory.mp import CpuRunResult

    memory = job.memory
    config = memory.config
    n = job.n
    compute_ns = job.compute_ns
    stall = job.stall
    l1_hit_ns = config.l1_hit_ns
    l2_hit_ns = config.l2_hit_ns
    tlb_miss_ns = config.tlb_miss_ns
    line = config.l1.line_bytes
    l2_shift = memory.l2s[0]._set_shift

    refill = job.op_refill
    refill_src = job.op_src[refill]
    refill_hit = np.zeros(n, dtype=bool)
    refill_hit[refill_src] = job.op_hit[refill]
    refill_wb = np.zeros(n, dtype=bool)
    refill_wb[refill_src] = ~job.op_hit[refill] & (
        job.op_vtag[refill] >= 0) & job.op_vdirty[refill]
    refill_wb_addr = np.zeros(n, dtype=np.int64)
    refill_wb_addr[refill_src] = job.op_vtag[refill] << l2_shift

    l1_hit, tlb_miss = job.l1_hit, job.tlb_miss
    slow = ~l1_hit & ~refill_hit

    # The four fast stall constants, argument grouping per the reference.
    stall_consts = np.array([
        stall(0.0 + l1_hit_ns, compute_ns),
        stall((0.0 + l1_hit_ns) + l2_hit_ns, compute_ns),
        stall(tlb_miss_ns + l1_hit_ns, compute_ns),
        stall((tlb_miss_ns + l1_hit_ns) + l2_hit_ns, compute_ns),
    ])
    key = tlb_miss.astype(np.int64) * 2 + ~l1_hit
    stall_arr = stall_consts[key]

    interleaved = np.empty(2 * n)
    interleaved[0::2] = compute_ns
    interleaved[1::2] = stall_arr

    sequencer = memory.sequencer
    memory_fetch = memory._memory_fetch
    addr_col = job.addr
    local = 0.0
    queueing_total = 0.0
    seg_start = 0
    buf = np.empty(2 * n + 1)
    for si in np.nonzero(slow)[0]:
        si = int(si)
        if si > seg_start:
            m = 2 * (si - seg_start) + 1
            seg = buf[:m]
            seg[0] = local
            seg[1:] = interleaved[2 * seg_start:2 * si]
            np.cumsum(seg, out=seg)
            local = float(seg[-1])
        issue = local + compute_ns
        translation = tlb_miss_ns if tlb_miss[si] else 0.0
        latency = translation + l1_hit_ns
        issue_bus = issue + latency + l2_hit_ns
        grant, phase_done = sequencer.occupy(issue_bus)
        queueing = grant - issue_bus
        latency += l2_hit_ns + (phase_done - issue_bus)
        start, done = memory_fetch(phase_done, int(addr_col[si]), line)
        queueing += start - phase_done
        latency += done - phase_done
        if refill_wb[si]:
            memory_fetch(phase_done, int(refill_wb_addr[si]), line)
        stall_ns = stall(latency, compute_ns)
        stall_arr[si] = stall_ns
        interleaved[2 * si + 1] = stall_ns
        local = issue + stall_ns
        queueing_total += queueing
        seg_start = si + 1
    if seg_start < n:
        m = 2 * (n - seg_start) + 1
        seg = buf[:m]
        seg[0] = local
        seg[1:] = interleaved[2 * seg_start:]
        np.cumsum(seg, out=seg)
        local = float(seg[-1])

    _commit(job, refill, refill_wb)
    compute_total = float(np.cumsum(np.full(n, compute_ns))[-1])
    stall_total = float(np.cumsum(stall_arr)[-1])
    return CpuRunResult(finish_ns=local, steps=n, compute_ns=compute_total,
                        stall_ns=stall_total, queueing_ns=queueing_total)


def _commit(job: _Job, refill: np.ndarray, refill_wb: np.ndarray) -> None:
    """Fold the oracle outcomes into the real caches and counters, with
    the same per-key attribution as the scalar routes."""
    memory = job.memory
    l1, l2, tlb = memory.l1s[0], memory.l2s[0], memory.tlbs[0]
    is_write, l1_hit = job.is_write, job.l1_hit
    vtag, vdirty = job.l1_vtag, job.l1_vdirty
    op_write, op_hit = job.op_write, job.op_hit
    op_vtag, op_vdirty = job.op_vtag, job.op_vdirty

    def count(mask) -> int:
        return int(np.count_nonzero(mask))

    def incr(counter, key, value) -> None:
        if value:
            counter.incr(key, value)

    incr(l1.stats, "read_hit", count(l1_hit & ~is_write))
    incr(l1.stats, "write_hit", count(l1_hit & is_write))
    incr(l1.stats, "read_miss", count(~l1_hit & ~is_write))
    incr(l1.stats, "write_miss", count(~l1_hit & is_write))
    incr(l1.stats, "writeback", count(vdirty))
    incr(l1.stats, "clean_evict", count((vtag >= 0) & ~vdirty))

    incr(l2.stats, "read_hit", count(op_hit & ~op_write))
    incr(l2.stats, "write_hit", count(op_hit & op_write))
    incr(l2.stats, "read_miss", count(~op_hit & ~op_write))
    incr(l2.stats, "write_miss", count(~op_hit & op_write))
    incr(l2.stats, "writeback", count((op_vtag >= 0) & op_vdirty))
    incr(l2.stats, "clean_evict", count((op_vtag >= 0) & ~op_vdirty))

    tlb_misses = count(job.tlb_miss)
    incr(tlb.stats, "hits", job.n - tlb_misses)
    incr(tlb.stats, "misses", tlb_misses)
    incr(tlb.stats, "evictions", job.tlb_evictions)

    refill_hits = count(refill & op_hit)
    incr(memory.domain.stats, "hit", refill_hits)
    incr(memory.domain.stats, "miss", count(refill & ~op_hit))
    incr(memory.stats, "l1_hits", count(l1_hit))
    incr(memory.stats, "tlb_misses", tlb_misses)
    incr(memory.stats, "l2_hits", refill_hits)
    incr(memory.stats, "memory_accesses", count(refill & ~op_hit))
    incr(memory.stats, "writebacks", count(refill_wb))

    for cache, finals in ((l1, job.l1_final), (l2, job.l2_final)):
        for s, state in finals.items():
            line_set = cache._sets[s]
            line_set.clear()
            for tag, dirty in state.items():
                line_set[tag] = _MODIFIED if dirty else _EXCLUSIVE
    tlb._entries.clear()
    for page in job.tlb_final:
        tlb._entries[int(page)] = None


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def replay_batch(specs: Sequence[Tuple]) -> List:
    """Vectorize many independent replays through shared lockstep passes.

    ``specs`` is a sequence of ``(memory, trace, compute_ns, stall_model)``
    tuples, each with its *own* ``MultiprocessorMemory`` (sweep points are
    isolated; batching shares host work, never simulated state).  Returns
    one entry per spec: a ``CpuRunResult``, or ``None`` when that spec's
    preconditions fail and the caller must use the scalar path instead —
    the trace is left unconsumed in that case only if it was an array.
    """
    from repro.memory.mp import CpuRunResult

    results: List = [None] * len(specs)
    jobs: List[_Job] = []
    for index, (memory, trace, compute_ns, stall) in enumerate(specs):
        try:
            arr = coerce_trace(trace)
        except (OverflowError, ValueError):
            continue
        if len(arr) and int(arr["addr"].min()) < 0:
            continue
        if not _supported(memory):
            continue
        if len(arr) == 0:
            results[index] = CpuRunResult(finish_ns=0.0, steps=0,
                                          compute_ns=0.0, stall_ns=0.0,
                                          queueing_ns=0.0)
            continue
        jobs.append(_Job(index, memory, arr, compute_ns, stall))
    if not jobs:
        return results
    for job in jobs:
        _plan_l1(job)
    _pooled_lockstep([job.l1_plan for job in jobs])
    for job in jobs:
        _fixup_l1(job)
        _run_tlb(job)
        _plan_l2(job)
    _pooled_lockstep([job.l2_plan for job in jobs])
    for job in jobs:
        _gather_l2(job)
        results[job.index] = _finish(job)
    return results


def replay_traces_vec(memory, trace, compute_ns: float, stall_model):
    """Single-replay wrapper over :func:`replay_batch` (may return None)."""
    return replay_batch([(memory, trace, compute_ns, stall_model)])[0]
