"""Memory-hierarchy substrate: caches, coherence, DRAM and node fabrics.

The node-performance results of the PowerMANNA paper (HINT, MatMult, SMP
speedup) are driven by cache geometry (line length, associativity, L2 size),
the MESI snoop protocol and the node's address/data-path organisation.  This
package provides:

* :mod:`repro.memory.address` — line/set/tag arithmetic.
* :mod:`repro.memory.cache` — set-associative write-back LRU caches with
  per-line MESI state.
* :mod:`repro.memory.mesi` — the MESI coherence protocol engine.
* :mod:`repro.memory.snoop` — snooping with the MPC620's queued-but-
  sequentialised address phases.
* :mod:`repro.memory.dram` — interleaved, pipelined DRAM banks.
* :mod:`repro.memory.hierarchy` — single-CPU L1/L2/memory timing stack.
* :mod:`repro.memory.mp` — multiprocessor timing simulation (shared-bus vs
  switched address/data paths).
* :mod:`repro.memory.trace_gen` — address-trace generators for the
  benchmark kernels.
"""

from repro.memory.address import AddressMap, line_address
from repro.memory.cache import AccessType, Cache, CacheGeometry, MESIState
from repro.memory.dram import DramConfig, InterleavedDram
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.mesi import CoherenceDomain
from repro.memory.mp import FabricKind, MultiprocessorMemory

__all__ = [
    "AccessType",
    "AddressMap",
    "Cache",
    "CacheGeometry",
    "CoherenceDomain",
    "DramConfig",
    "FabricKind",
    "HierarchyConfig",
    "InterleavedDram",
    "MESIState",
    "MemoryHierarchy",
    "MultiprocessorMemory",
    "line_address",
]
