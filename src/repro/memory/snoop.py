"""Snoop/address-phase timing.

The MPC620's bus-based snoop protocol requires the *address phases* of all
processors on a node to be sequentialised — every cacheable bus transaction
must be seen, in one global order, by every snooper.  The MPC620 softens
this by queueing several outstanding snoop requests, but the phases still
issue one at a time.  The paper's design-phase simulations found exactly
this sequentialisation (not memory bandwidth) to be the factor limiting the
node to ~4 processors.

:class:`AddressPhaseSequencer` models that serial resource with simple
next-free bookkeeping, plus a bounded snoop queue: when the queue is full
the requester is back-pressured (retried), adding latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sim.clock import Clock
from repro.sim.stats import Counter


@dataclass(frozen=True)
class SnoopConfig:
    """Timing of the serial address/snoop phase.

    Attributes:
        bus_clock: the node-bus clock (60 MHz on PowerMANNA).
        phase_cycles: bus cycles one address phase occupies the sequencer.
        queue_depth: outstanding snoop requests the protocol can queue
            (the MPC620 allows several; a depth of 1 models a naive
            blocking snoop).
    """

    bus_clock: Clock
    phase_cycles: float = 3.0
    queue_depth: int = 4

    def __post_init__(self):
        if self.phase_cycles <= 0:
            raise ValueError("address phase must take positive time")
        if self.queue_depth < 1:
            raise ValueError("snoop queue depth must be >= 1")

    @property
    def phase_ns(self) -> float:
        return self.bus_clock.cycles_to_ns(self.phase_cycles)


class AddressPhaseSequencer:
    """Serialises address phases; tracks contention statistics.

    The sequencer is *conservative-time* rather than event-driven: callers
    present their local issue time and receive (grant_time, done_time).
    This matches the two-pointer multiprocessor simulation in
    :mod:`repro.memory.mp`, which processes accesses in global time order.
    """

    def __init__(self, config: SnoopConfig, name: str = "snoop"):
        self.config = config
        self.name = name
        self._next_free = 0.0
        self.stats = Counter(name)
        self.total_wait_ns = 0.0
        self.busy_ns = 0.0

    def occupy(self, now_ns: float) -> Tuple[float, float]:
        """Issue an address phase at ``now_ns``.

        Returns ``(grant_ns, done_ns)``: when the phase won the sequencer
        and when it completed.  Queue-depth overflow shows up naturally as
        wait time because grants are strictly serial.
        """
        grant = max(now_ns, self._next_free)
        # Beyond the hardware queue depth, the master must retry: model the
        # retry penalty as one extra phase time of delay.
        backlog_phases = max(0.0, (grant - now_ns) / self.config.phase_ns)
        if backlog_phases > self.config.queue_depth:
            grant += self.config.phase_ns
            self.stats.incr("retries")
        done = grant + self.config.phase_ns
        self._next_free = done
        self.stats.incr("phases")
        waited = grant - now_ns
        self.total_wait_ns += waited
        self.busy_ns += self.config.phase_ns
        if waited > 0:
            self.stats.incr("contended")
        return grant, done

    def mean_wait_ns(self) -> float:
        phases = self.stats["phases"]
        return self.total_wait_ns / phases if phases else 0.0

    def utilization(self, elapsed_ns: float) -> float:
        return self.busy_ns / elapsed_ns if elapsed_ns > 0 else 0.0

    def reset(self) -> None:
        self._next_free = 0.0
        self.total_wait_ns = 0.0
        self.busy_ns = 0.0
        self.stats.reset()
