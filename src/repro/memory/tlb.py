"""TLB model.

The MPC620's MMUs provide demand-paged translation with on-chip TLBs; the
comparators have their own (the UltraSPARC-I famously handles TLB misses in
a software trap).  For the benchmarks this matters in one place, and it
matters a lot: the naive MatMult walks matrix B down columns, and once the
column stride passes the page size every reference touches a different
page — the TLB thrashes and translation cost dominates.  That, together
with the superfluous cache-line traffic, is what makes the paper's naive
curves collapse for large matrices.

The model is a fully-associative LRU TLB (dict insertion order as LRU,
like :mod:`repro.memory.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.memory.address import is_power_of_two
from repro.obs import OBS
from repro.sim.stats import Counter


@dataclass(frozen=True)
class TlbConfig:
    """TLB geometry and miss cost.

    Attributes:
        entries: translation slots (fully associative LRU).
        page_bytes: page size.
        miss_cycles: CPU cycles one table walk / miss trap costs.
    """

    entries: int = 128
    page_bytes: int = 4096
    miss_cycles: float = 50.0

    def __post_init__(self):
        if self.entries < 1:
            raise ValueError("TLB needs at least one entry")
        if not is_power_of_two(self.page_bytes):
            raise ValueError(f"page size must be a power of two, got {self.page_bytes}")
        if self.miss_cycles < 0:
            raise ValueError("miss cost must be nonnegative")

    def scaled(self, factor: int, min_page_bytes: int = 128) -> "TlbConfig":
        """Shrink the page size along with the caches (entries preserved).

        Scaling pages with the working set keeps the *reach* of the TLB
        (entries x page size) in proportion to the caches, so the stride
        regimes of the benchmarks appear at the scaled sizes too.
        """
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {factor}")
        page = max(min_page_bytes, self.page_bytes // factor)
        return TlbConfig(self.entries, page, self.miss_cycles)

    @property
    def reach_bytes(self) -> int:
        return self.entries * self.page_bytes


class Tlb:
    """Fully-associative LRU translation cache (presence only)."""

    def __init__(self, config: TlbConfig, name: str = "tlb"):
        self.config = config
        self.name = name
        self._page_shift = config.page_bytes.bit_length() - 1
        self._entries: Dict[int, None] = {}
        self.stats = Counter(name)

    def page_of(self, addr: int) -> int:
        return addr >> self._page_shift

    def access(self, addr: int) -> bool:
        """Translate one reference; returns True on a TLB hit."""
        page = self.page_of(addr)
        if page in self._entries:
            del self._entries[page]     # refresh LRU position
            self._entries[page] = None
            self.stats.incr("hits")
            if OBS.enabled:
                OBS.metrics.incr("tlb.hit", tlb=self.name)
            return True
        if len(self._entries) >= self.config.entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.stats.incr("evictions")
        self._entries[page] = None
        self.stats.incr("misses")
        if OBS.enabled:
            OBS.metrics.incr("tlb.miss", tlb=self.name)
        return False

    def contains(self, addr: int) -> bool:
        return self.page_of(addr) in self._entries

    def occupancy(self) -> int:
        return len(self._entries)

    def flush(self) -> None:
        self._entries.clear()

    def miss_rate(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["misses"] / total if total else 0.0

    def reset_stats(self) -> None:
        self.stats.reset()
