"""Single-CPU memory hierarchy timing: L1 -> L2 -> interleaved DRAM.

The hierarchy is inclusive (an L1 line is always present in L2) and
write-back at both levels.  Every access returns the level that served it
and its unloaded latency in nanoseconds; the CPU pipeline model decides how
much of that latency is overlapped (the MPC620's missing load pipelining is
a CPU property, not a memory property).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.memory.cache import AccessType, Cache, CacheGeometry
from repro.memory.dram import DramConfig, InterleavedDram
from repro.memory.tlb import Tlb, TlbConfig
from repro.sim.clock import Clock
from repro.sim.stats import Counter


class ServiceLevel(enum.IntEnum):
    L1 = 1
    L2 = 2
    MEMORY = 3
    REMOTE_CACHE = 4  # cache-to-cache intervention on SMP nodes


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and unloaded timing of one CPU's memory stack.

    Latencies are in the units natural to the hardware: cache hit times in
    CPU cycles, bus overhead in bus cycles, DRAM timing in nanoseconds.
    """

    cpu_clock: Clock
    bus_clock: Clock
    l1: CacheGeometry
    l2: CacheGeometry
    dram: DramConfig
    tlb: TlbConfig = TlbConfig()
    l1_hit_cycles: float = 1.0
    l2_hit_cycles: float = 9.0
    bus_overhead_bus_cycles: float = 4.0  # address + arbitration per bus transaction

    def __post_init__(self):
        if self.l2.line_bytes != self.l1.line_bytes:
            raise ValueError(
                "this model keeps L1 and L2 line sizes equal "
                f"(got {self.l1.line_bytes} and {self.l2.line_bytes})")
        if self.l2.size_bytes < self.l1.size_bytes:
            raise ValueError("inclusive hierarchy needs L2 >= L1")

    @property
    def l1_hit_ns(self) -> float:
        return self.cpu_clock.cycles_to_ns(self.l1_hit_cycles)

    @property
    def l2_hit_ns(self) -> float:
        return self.cpu_clock.cycles_to_ns(self.l2_hit_cycles)

    @property
    def bus_overhead_ns(self) -> float:
        return self.bus_clock.cycles_to_ns(self.bus_overhead_bus_cycles)

    @property
    def tlb_miss_ns(self) -> float:
        return self.cpu_clock.cycles_to_ns(self.tlb.miss_cycles)

    def scaled(self, factor: int) -> "HierarchyConfig":
        """Shrink cache capacities and page size by ``factor`` (for fast
        simulations); line sizes and latencies are preserved."""
        return HierarchyConfig(
            cpu_clock=self.cpu_clock, bus_clock=self.bus_clock,
            l1=self.l1.scaled(factor), l2=self.l2.scaled(factor),
            dram=self.dram,
            tlb=self.tlb.scaled(factor,
                                min_page_bytes=2 * self.l1.line_bytes),
            l1_hit_cycles=self.l1_hit_cycles,
            l2_hit_cycles=self.l2_hit_cycles,
            bus_overhead_bus_cycles=self.bus_overhead_bus_cycles)


@dataclass(frozen=True)
class MemoryAccessOutcome:
    latency_ns: float
    level: ServiceLevel


class MemoryHierarchy:
    """Timing front-end over an L1/L2 cache pair and a DRAM model.

    ``shared_dram`` lets several hierarchies (the CPUs of an SMP node)
    contend for the same banks; each hierarchy still owns its caches.
    """

    def __init__(self, config: HierarchyConfig, name: str = "mem",
                 shared_dram: Optional[InterleavedDram] = None):
        self.config = config
        self.name = name
        self.l1 = Cache(config.l1, name=f"{name}.l1")
        self.l2 = Cache(config.l2, name=f"{name}.l2")
        self.tlb = Tlb(config.tlb, name=f"{name}.tlb")
        self.dram = shared_dram or InterleavedDram(config.dram, name=f"{name}.dram")
        self.stats = Counter(name)

    def access(self, now_ns: float, addr: int,
               access: AccessType = AccessType.READ) -> MemoryAccessOutcome:
        """One load/store; returns its unloaded service latency and level."""
        line = self.config.l1.line_bytes
        translation_ns = 0.0
        if not self.tlb.access(addr):
            translation_ns = self.config.tlb_miss_ns
            self.stats.incr("tlb_misses")
        l1_result = self.l1.access(addr, access)
        if l1_result.hit:
            self.stats.incr("l1_hits")
            return MemoryAccessOutcome(translation_ns + self.config.l1_hit_ns,
                                       ServiceLevel.L1)

        # L1 miss: the refill comes from L2 (inclusive), possibly from memory.
        latency = translation_ns + self.config.l1_hit_ns
        # An L1 dirty victim is absorbed by L2 (same line size, inclusive).
        if l1_result.writeback is not None:
            self.l2.access(l1_result.writeback, AccessType.WRITE)
            self.stats.incr("l1_writebacks")

        l2_result = self.l2.access(addr, access)
        latency += self.config.l2_hit_ns
        if l2_result.hit:
            self.stats.incr("l2_hits")
            return MemoryAccessOutcome(latency, ServiceLevel.L2)

        # L2 miss: bus transaction + DRAM line fetch (bank-aware).
        self.stats.incr("memory_accesses")
        latency += self.config.bus_overhead_ns
        issue_time = now_ns + latency
        done = self.dram.service(issue_time, addr, line)
        latency += done - issue_time
        if l2_result.writeback is not None:
            # Write-back drains through a write buffer off the critical path,
            # but it does occupy its DRAM bank.
            self.dram.service(issue_time, l2_result.writeback, line)
            self.stats.incr("l2_writebacks")
            self._enforce_inclusion(l2_result.writeback)
        if l2_result.evicted is not None:
            self._enforce_inclusion(l2_result.evicted)
        return MemoryAccessOutcome(latency, ServiceLevel.MEMORY)

    def _enforce_inclusion(self, line_addr: int) -> None:
        """Back-invalidate L1 when L2 evicts (inclusive hierarchy)."""
        self.l1.snoop_invalidate(line_addr)

    # -- instrumentation -----------------------------------------------------

    def level_counts(self) -> Tuple[int, int, int]:
        return (self.stats["l1_hits"], self.stats["l2_hits"],
                self.stats["memory_accesses"])

    def reset_stats(self) -> None:
        self.stats.reset()
        self.l1.reset_stats()
        self.l2.reset_stats()

    def flush(self) -> None:
        self.l1.invalidate_all()
        self.l2.invalidate_all()
