"""Interleaved, pipelined DRAM model.

The PowerMANNA node memory uses cheap standard DRAM modules organised into
interleaved banks, pipelined to deliver 640 Mbyte/s.  The model tracks a
next-free time per bank so that consecutive line fetches to different banks
overlap (pipelining) while same-bank accesses serialise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.address import is_power_of_two
from repro.sim.stats import Counter


@dataclass(frozen=True)
class DramConfig:
    """DRAM organisation and timing.

    Attributes:
        num_banks: interleave factor (power of two).
        interleave_bytes: consecutive address stride mapped to the next
            bank — the node interleaves on cache-line granularity.
        access_ns: time from request to first data word (row access).
        bandwidth_mb_s: sustained per-module burst bandwidth; a line
            transfer occupies its bank for line_bytes / bandwidth.
    """

    num_banks: int = 4
    interleave_bytes: int = 64
    access_ns: float = 60.0
    bandwidth_mb_s: float = 640.0

    def __post_init__(self):
        if not is_power_of_two(self.num_banks):
            raise ValueError(f"bank count must be a power of two, got {self.num_banks}")
        if not is_power_of_two(self.interleave_bytes):
            raise ValueError(
                f"interleave granularity must be a power of two, "
                f"got {self.interleave_bytes}")
        if self.access_ns <= 0 or self.bandwidth_mb_s <= 0:
            raise ValueError("DRAM timing parameters must be positive")

    def transfer_ns(self, nbytes: int) -> float:
        """Time the bank is busy streaming ``nbytes``."""
        return nbytes * 1e3 / self.bandwidth_mb_s

    def line_service_ns(self, line_bytes: int) -> float:
        """Unloaded latency of one full line fetch."""
        return self.access_ns + self.transfer_ns(line_bytes)


class InterleavedDram:
    """Bank-level timing: per-bank next-free bookkeeping.

    ``service(now, addr, nbytes)`` returns the completion time of a fetch
    issued at ``now``, queueing behind earlier work on the same bank but
    overlapping with other banks.
    """

    def __init__(self, config: DramConfig, name: str = "dram"):
        self.config = config
        self.name = name
        self._bank_free: List[float] = [0.0] * config.num_banks
        self._bank_shift = config.interleave_bytes.bit_length() - 1
        self._bank_mask = config.num_banks - 1
        self.stats = Counter(name)

    def bank_of(self, addr: int) -> int:
        return (addr >> self._bank_shift) & self._bank_mask

    def service(self, now: float, addr: int, nbytes: int) -> float:
        """Issue a fetch/writeback; returns its completion time (ns)."""
        if nbytes <= 0:
            raise ValueError(f"transfer size must be positive, got {nbytes}")
        bank = self.bank_of(addr)
        start = max(now, self._bank_free[bank])
        queued = start - now
        done = start + self.config.access_ns + self.config.transfer_ns(nbytes)
        self._bank_free[bank] = done
        self.stats.incr("requests")
        if queued > 0:
            self.stats.incr("bank_conflicts")
        return done

    def peek_service(self, now: float, addr: int, nbytes: int) -> float:
        """Completion time a fetch *would* get, without issuing it."""
        bank = self.bank_of(addr)
        start = max(now, self._bank_free[bank])
        return start + self.config.access_ns + self.config.transfer_ns(nbytes)

    def reset(self) -> None:
        self._bank_free = [0.0] * self.config.num_banks
        self.stats.reset()

    def conflict_rate(self) -> float:
        if self.stats["requests"] == 0:
            return 0.0
        return self.stats["bank_conflicts"] / self.stats["requests"]
