"""Multiprocessor memory timing: shared-bus versus switched fabrics.

This module answers the Figure-8 question (does MatMult scale to both
processors of a node?) and the ref-[4] design question (how many MPC620s
fit on one node?).  The three machines differ in how the address and data
paths are organised:

* **PowerMANNA** (``FabricKind.SWITCHED``): the ADSP bus switch gives every
  device a point-to-point data path; split transactions let data phases of
  different CPUs proceed in parallel.  Only the snoop **address phases**
  are serial — per the MPC620 protocol — and the interleaved DRAM banks
  are shared.
* **SUN UE/Ultra-I** (``FabricKind.SPLIT_BUS``): a packet-switched data bus
  (UPA-like); address phases serial, the single data bus is occupied only
  for the data packet itself.
* **Pentium II PC** (``FabricKind.SHARED_BUS``): one GTL+ bus carries both
  address and data phases; a memory transaction holds the data path for
  DRAM access *and* transfer.

The simulation is conservative-time: CPU access streams are merged in
global issue-time order and shared resources use next-free bookkeeping.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.memory.cache import AccessType, Cache, MESIState
from repro.memory.dram import InterleavedDram
from repro.memory.hierarchy import HierarchyConfig, ServiceLevel
from repro.memory.mesi import BusOp, CoherenceDomain
from repro.memory.snoop import AddressPhaseSequencer, SnoopConfig
from repro.memory.tlb import Tlb
from repro.obs import OBS
from repro.sim.stats import Counter


class FabricKind(enum.Enum):
    SWITCHED = "switched"
    SPLIT_BUS = "split_bus"
    SHARED_BUS = "shared_bus"


@dataclass(frozen=True)
class FabricConfig:
    """Node-fabric organisation and timing.

    Attributes:
        kind: address/data path organisation (see module docstring).
        snoop: serial address-phase timing.
        data_bus_mb_s: bandwidth of the shared data path (bus fabrics).
        c2c_transfer_mb_s: cache-to-cache intervention bandwidth.
        c2c_latency_ns: fixed cost of an intervention before data flows.
    """

    kind: FabricKind
    snoop: SnoopConfig
    data_bus_mb_s: float = 480.0
    c2c_transfer_mb_s: float = 480.0
    c2c_latency_ns: float = 50.0


class _ChannelTimer:
    """Next-free bookkeeping for one serial channel."""

    def __init__(self, name: str):
        self.name = name
        self._next_free = 0.0
        self.busy_ns = 0.0
        self.grants = 0

    def occupy(self, now_ns: float, duration_ns: float) -> Tuple[float, float]:
        start = max(now_ns, self._next_free)
        done = start + duration_ns
        self._next_free = done
        self.busy_ns += duration_ns
        self.grants += 1
        return start, done

    def reset(self) -> None:
        self._next_free = 0.0
        self.busy_ns = 0.0
        self.grants = 0


@dataclass(frozen=True)
class MpAccessOutcome:
    """Latency decomposition of one access on the SMP node."""

    latency_ns: float
    level: ServiceLevel
    queueing_ns: float = 0.0  # time lost to address-phase/bus contention


class MultiprocessorMemory:
    """N private L1/L2 stacks over one coherent node fabric."""

    def __init__(self, config: HierarchyConfig, num_cpus: int,
                 fabric: FabricConfig, name: str = "node"):
        if num_cpus < 1:
            raise ValueError(f"need at least one CPU, got {num_cpus}")
        self.config = config
        self.fabric = fabric
        self.num_cpus = num_cpus
        self.name = name
        self.l1s = [Cache(config.l1, name=f"{name}.cpu{i}.l1", level="l1")
                    for i in range(num_cpus)]
        self.l2s = [Cache(config.l2, name=f"{name}.cpu{i}.l2", level="l2")
                    for i in range(num_cpus)]
        self.tlbs = [Tlb(config.tlb, name=f"{name}.cpu{i}.tlb")
                     for i in range(num_cpus)]
        self.domain = CoherenceDomain(self.l2s)
        self.dram = InterleavedDram(config.dram, name=f"{name}.dram")
        self.sequencer = AddressPhaseSequencer(fabric.snoop, name=f"{name}.snoop")
        self.data_bus = _ChannelTimer(f"{name}.databus")
        self.stats = Counter(name)

    # -- single access ---------------------------------------------------------

    def access(self, cpu: int, now_ns: float, addr: int,
               access: AccessType = AccessType.READ) -> MpAccessOutcome:
        line = self.config.l1.line_bytes
        l1 = self.l1s[cpu]
        is_write = access == AccessType.WRITE

        translation_ns = 0.0
        if not self.tlbs[cpu].access(addr):
            translation_ns = self.config.tlb_miss_ns
            self.stats.incr("tlb_misses")

        l1_state = l1.state_of(addr)
        if l1_state != MESIState.INVALID:
            # L1 hit.  A write to a line SHARED at L2 still needs the
            # upgrade address phase; everything else is core-private.
            if is_write and self.l2s[cpu].state_of(addr) == MESIState.SHARED:
                return self._upgrade_hit(cpu, now_ns, addr)
            l1.access(addr, access)
            if is_write:
                # Keep L2's view of dirtiness in sync for remote snoops.
                self.l2s[cpu].access(addr, AccessType.WRITE)
            self.stats.incr("l1_hits")
            return MpAccessOutcome(translation_ns + self.config.l1_hit_ns,
                                   ServiceLevel.L1)

        # L1 miss: victim goes to L2, then the coherent L2-level access.
        latency = translation_ns + self.config.l1_hit_ns
        l1_result = l1.access(addr, access)
        if l1_result.writeback is not None:
            self.l2s[cpu].access(l1_result.writeback, AccessType.WRITE)

        outcome = self.domain.access(cpu, addr, access)
        self._repair_l1_inclusion(addr)

        if outcome.bus_op is None:
            # Clean L2 hit.
            self.stats.incr("l2_hits")
            return MpAccessOutcome(latency + self.config.l2_hit_ns, ServiceLevel.L2)

        # Any bus op serialises through the address-phase sequencer.
        issue = now_ns + latency + self.config.l2_hit_ns
        grant, phase_done = self.sequencer.occupy(issue)
        queueing = grant - issue
        latency += self.config.l2_hit_ns + (phase_done - issue)

        if outcome.bus_op == BusOp.UPGRADE:
            self.stats.incr("upgrades")
            return MpAccessOutcome(latency, ServiceLevel.L2, queueing_ns=queueing)

        # Data phase: remote cache or DRAM.
        if outcome.supplied_by is not None:
            self.stats.incr("c2c_transfers")
            transfer = line * 1e3 / self.fabric.c2c_transfer_mb_s
            dur = self.fabric.c2c_latency_ns + transfer
            start, done = self._occupy_data_path(phase_done, dur, dram_addr=None)
            queueing += start - phase_done
            latency += done - phase_done
            level = ServiceLevel.REMOTE_CACHE
        else:
            self.stats.incr("memory_accesses")
            start, done = self._memory_fetch(phase_done, addr, line)
            queueing += start - phase_done
            latency += done - phase_done
            level = ServiceLevel.MEMORY

        for wb in outcome.writebacks:
            # Writebacks drain off the critical path but consume bandwidth.
            self._memory_fetch(phase_done, wb, line)
            self.stats.incr("writebacks")
        return MpAccessOutcome(latency, level, queueing_ns=queueing)

    def _upgrade_hit(self, cpu: int, now_ns: float, addr: int) -> MpAccessOutcome:
        issue = now_ns + self.config.l1_hit_ns
        grant, done = self.sequencer.occupy(issue)
        self.domain.access(cpu, addr, AccessType.WRITE)
        self._repair_l1_inclusion(addr)
        self.l1s[cpu].access(addr, AccessType.WRITE)
        self.stats.incr("upgrades")
        return MpAccessOutcome(self.config.l1_hit_ns + (done - issue),
                               ServiceLevel.L2, queueing_ns=grant - issue)

    def _repair_l1_inclusion(self, addr: int) -> None:
        """Invalidate L1 copies whose L2 line vanished or lost write rights."""
        for l1, l2 in zip(self.l1s, self.l2s):
            l2_state = l2.state_of(addr)
            if l2_state == MESIState.INVALID:
                l1.snoop_invalidate(addr)
            elif l2_state == MESIState.SHARED:
                l1.snoop_downgrade(addr)

    # -- fabric-specific data-path timing -----------------------------------------

    def _memory_fetch(self, ready_ns: float, addr: int, nbytes: int,
                      ) -> Tuple[float, float]:
        """Route a line fetch over the fabric; returns (start, done)."""
        kind = self.fabric.kind
        if kind == FabricKind.SWITCHED:
            # Point-to-point path; only DRAM banks are shared.
            done = self.dram.service(ready_ns, addr, nbytes)
            return ready_ns, done
        transfer = nbytes * 1e3 / self.fabric.data_bus_mb_s
        if kind == FabricKind.SPLIT_BUS:
            # Bus occupied for the data packet only; DRAM latency overlaps.
            done_mem = self.dram.service(ready_ns, addr, nbytes)
            start, done = self.data_bus.occupy(done_mem - transfer, transfer)
            return start, max(done, done_mem)
        # SHARED_BUS: the transaction holds the bus across DRAM access.
        access = self.config.dram.access_ns
        start, done = self.data_bus.occupy(ready_ns, access + transfer)
        self.dram.service(start, addr, nbytes)
        return start, done

    def _occupy_data_path(self, ready_ns: float, duration_ns: float,
                          dram_addr: Optional[int]) -> Tuple[float, float]:
        if self.fabric.kind == FabricKind.SWITCHED:
            return ready_ns, ready_ns + duration_ns
        return self.data_bus.occupy(ready_ns, duration_ns)

    def reset(self) -> None:
        for cache in self.l1s + self.l2s:
            cache.invalidate_all()
            cache.reset_stats()
        for tlb in self.tlbs:
            tlb.flush()
            tlb.reset_stats()
        self.reset_timing()
        self.stats.reset()

    def reset_timing(self) -> None:
        """Start a fresh timing epoch: clear next-free bookkeeping of the
        shared resources while keeping all cache contents.

        Trace replays start their local clocks at zero, so successive
        replays on one node (e.g. a cache-warming pass followed by a
        measured pass) must not inherit stale bank/bus reservation times.
        """
        self.dram.reset()
        self.sequencer.reset()
        self.data_bus.reset()


@dataclass(frozen=True)
class TraceStep:
    """One unit of CPU work: ``compute_ns`` of execution then one access."""

    compute_ns: float
    addr: int
    access: AccessType = AccessType.READ


StallModel = Callable[[float, float], float]
"""Maps (memory_latency_ns, preceding_compute_ns) -> CPU stall ns."""


@dataclass
class CpuRunResult:
    finish_ns: float
    steps: int
    compute_ns: float
    stall_ns: float
    queueing_ns: float


def run_interleaved(memory: MultiprocessorMemory,
                    traces: Sequence[Iterable[TraceStep]],
                    stall_models: Sequence[StallModel],
                    ) -> List[CpuRunResult]:
    """Run one access stream per CPU, merged in global issue-time order.

    Each CPU's local clock advances by ``compute_ns`` plus the stall its
    stall model derives from the access latency.  Shared-resource
    next-free bookkeeping stays causally correct because the merge always
    services the earliest pending access.
    """
    if len(traces) != len(stall_models):
        raise ValueError("need one stall model per trace")
    if len(traces) > memory.num_cpus:
        raise ValueError(
            f"{len(traces)} traces for a {memory.num_cpus}-CPU node")

    iterators: List[Iterator[TraceStep]] = [iter(t) for t in traces]
    results = [CpuRunResult(0.0, 0, 0.0, 0.0, 0.0) for _ in traces]
    local = [0.0] * len(traces)
    heap: List[Tuple[float, int, TraceStep]] = []

    def push(cpu: int) -> None:
        step = next(iterators[cpu], None)
        if step is not None:
            heapq.heappush(heap, (local[cpu] + step.compute_ns, cpu, step))

    for cpu in range(len(traces)):
        push(cpu)

    while heap:
        issue, cpu, step = heapq.heappop(heap)
        outcome = memory.access(cpu, issue, step.addr, step.access)
        if OBS.enabled:
            OBS.metrics.observe("mem.access_ns", outcome.latency_ns,
                                node=memory.name,
                                level=outcome.level.name.lower())
        stall = stall_models[cpu](outcome.latency_ns, step.compute_ns)
        local[cpu] = issue + stall
        res = results[cpu]
        res.steps += 1
        res.compute_ns += step.compute_ns
        res.stall_ns += stall
        res.queueing_ns += outcome.queueing_ns
        res.finish_ns = local[cpu]
        push(cpu)
    return results
