"""Multiprocessor memory timing: shared-bus versus switched fabrics.

This module answers the Figure-8 question (does MatMult scale to both
processors of a node?) and the ref-[4] design question (how many MPC620s
fit on one node?).  The three machines differ in how the address and data
paths are organised:

* **PowerMANNA** (``FabricKind.SWITCHED``): the ADSP bus switch gives every
  device a point-to-point data path; split transactions let data phases of
  different CPUs proceed in parallel.  Only the snoop **address phases**
  are serial — per the MPC620 protocol — and the interleaved DRAM banks
  are shared.
* **SUN UE/Ultra-I** (``FabricKind.SPLIT_BUS``): a packet-switched data bus
  (UPA-like); address phases serial, the single data bus is occupied only
  for the data packet itself.
* **Pentium II PC** (``FabricKind.SHARED_BUS``): one GTL+ bus carries both
  address and data phases; a memory transaction holds the data path for
  DRAM access *and* transfer.

The simulation is conservative-time: CPU access streams are merged in
global issue-time order and shared resources use next-free bookkeeping.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.memory.cache import AccessType, Cache, MESIState
from repro.memory.dram import InterleavedDram
from repro.memory.hierarchy import HierarchyConfig, ServiceLevel
from repro.memory.mesi import BusOp, CoherenceDomain
from repro.memory.snoop import AddressPhaseSequencer, SnoopConfig
from repro.memory.tlb import Tlb
from repro.obs import OBS
from repro.sim.stats import Counter


class FabricKind(enum.Enum):
    SWITCHED = "switched"
    SPLIT_BUS = "split_bus"
    SHARED_BUS = "shared_bus"


@dataclass(frozen=True)
class FabricConfig:
    """Node-fabric organisation and timing.

    Attributes:
        kind: address/data path organisation (see module docstring).
        snoop: serial address-phase timing.
        data_bus_mb_s: bandwidth of the shared data path (bus fabrics).
        c2c_transfer_mb_s: cache-to-cache intervention bandwidth.
        c2c_latency_ns: fixed cost of an intervention before data flows.
    """

    kind: FabricKind
    snoop: SnoopConfig
    data_bus_mb_s: float = 480.0
    c2c_transfer_mb_s: float = 480.0
    c2c_latency_ns: float = 50.0


class _ChannelTimer:
    """Next-free bookkeeping for one serial channel."""

    def __init__(self, name: str):
        self.name = name
        self._next_free = 0.0
        self.busy_ns = 0.0
        self.grants = 0

    def occupy(self, now_ns: float, duration_ns: float) -> Tuple[float, float]:
        start = max(now_ns, self._next_free)
        done = start + duration_ns
        self._next_free = done
        self.busy_ns += duration_ns
        self.grants += 1
        return start, done

    def reset(self) -> None:
        self._next_free = 0.0
        self.busy_ns = 0.0
        self.grants = 0


@dataclass(frozen=True)
class MpAccessOutcome:
    """Latency decomposition of one access on the SMP node."""

    latency_ns: float
    level: ServiceLevel
    queueing_ns: float = 0.0  # time lost to address-phase/bus contention


class MultiprocessorMemory:
    """N private L1/L2 stacks over one coherent node fabric."""

    def __init__(self, config: HierarchyConfig, num_cpus: int,
                 fabric: FabricConfig, name: str = "node"):
        if num_cpus < 1:
            raise ValueError(f"need at least one CPU, got {num_cpus}")
        self.config = config
        self.fabric = fabric
        self.num_cpus = num_cpus
        self.name = name
        self.l1s = [Cache(config.l1, name=f"{name}.cpu{i}.l1", level="l1")
                    for i in range(num_cpus)]
        self.l2s = [Cache(config.l2, name=f"{name}.cpu{i}.l2", level="l2")
                    for i in range(num_cpus)]
        self.tlbs = [Tlb(config.tlb, name=f"{name}.cpu{i}.tlb")
                     for i in range(num_cpus)]
        self.domain = CoherenceDomain(self.l2s)
        self.dram = InterleavedDram(config.dram, name=f"{name}.dram")
        self.sequencer = AddressPhaseSequencer(fabric.snoop, name=f"{name}.snoop")
        self.data_bus = _ChannelTimer(f"{name}.databus")
        self.stats = Counter(name)

    # -- single access ---------------------------------------------------------

    def access(self, cpu: int, now_ns: float, addr: int,
               access: AccessType = AccessType.READ) -> MpAccessOutcome:
        line = self.config.l1.line_bytes
        l1 = self.l1s[cpu]
        is_write = access == AccessType.WRITE

        translation_ns = 0.0
        if not self.tlbs[cpu].access(addr):
            translation_ns = self.config.tlb_miss_ns
            self.stats.incr("tlb_misses")

        l1_state = l1.state_of(addr)
        if l1_state != MESIState.INVALID:
            # L1 hit.  A write to a line SHARED at L2 still needs the
            # upgrade address phase; everything else is core-private.
            if is_write and self.l2s[cpu].state_of(addr) == MESIState.SHARED:
                return self._upgrade_hit(cpu, now_ns, addr)
            l1.access(addr, access)
            if is_write:
                # Keep L2's view of dirtiness in sync for remote snoops.
                self.l2s[cpu].access(addr, AccessType.WRITE)
            self.stats.incr("l1_hits")
            return MpAccessOutcome(translation_ns + self.config.l1_hit_ns,
                                   ServiceLevel.L1)

        # L1 miss: victim goes to L2, then the coherent L2-level access.
        latency = translation_ns + self.config.l1_hit_ns
        l1_result = l1.access(addr, access)
        if l1_result.writeback is not None:
            self.l2s[cpu].access(l1_result.writeback, AccessType.WRITE)

        outcome = self.domain.access(cpu, addr, access)
        self._repair_l1_inclusion(addr)

        if outcome.bus_op is None:
            # Clean L2 hit.
            self.stats.incr("l2_hits")
            return MpAccessOutcome(latency + self.config.l2_hit_ns, ServiceLevel.L2)

        # Any bus op serialises through the address-phase sequencer.
        issue = now_ns + latency + self.config.l2_hit_ns
        grant, phase_done = self.sequencer.occupy(issue)
        queueing = grant - issue
        latency += self.config.l2_hit_ns + (phase_done - issue)

        if outcome.bus_op == BusOp.UPGRADE:
            self.stats.incr("upgrades")
            return MpAccessOutcome(latency, ServiceLevel.L2, queueing_ns=queueing)

        # Data phase: remote cache or DRAM.
        if outcome.supplied_by is not None:
            self.stats.incr("c2c_transfers")
            transfer = line * 1e3 / self.fabric.c2c_transfer_mb_s
            dur = self.fabric.c2c_latency_ns + transfer
            start, done = self._occupy_data_path(phase_done, dur, dram_addr=None)
            queueing += start - phase_done
            latency += done - phase_done
            level = ServiceLevel.REMOTE_CACHE
        else:
            self.stats.incr("memory_accesses")
            start, done = self._memory_fetch(phase_done, addr, line)
            queueing += start - phase_done
            latency += done - phase_done
            level = ServiceLevel.MEMORY

        for wb in outcome.writebacks:
            # Writebacks drain off the critical path but consume bandwidth.
            self._memory_fetch(phase_done, wb, line)
            self.stats.incr("writebacks")
        return MpAccessOutcome(latency, level, queueing_ns=queueing)

    def _upgrade_hit(self, cpu: int, now_ns: float, addr: int) -> MpAccessOutcome:
        issue = now_ns + self.config.l1_hit_ns
        grant, done = self.sequencer.occupy(issue)
        self.domain.access(cpu, addr, AccessType.WRITE)
        self._repair_l1_inclusion(addr)
        self.l1s[cpu].access(addr, AccessType.WRITE)
        self.stats.incr("upgrades")
        return MpAccessOutcome(self.config.l1_hit_ns + (done - issue),
                               ServiceLevel.L2, queueing_ns=grant - issue)

    def _repair_l1_inclusion(self, addr: int) -> None:
        """Invalidate L1 copies whose L2 line vanished or lost write rights."""
        for l1, l2 in zip(self.l1s, self.l2s):
            l2_state = l2.state_of(addr)
            if l2_state == MESIState.INVALID:
                l1.snoop_invalidate(addr)
            elif l2_state == MESIState.SHARED:
                l1.snoop_downgrade(addr)

    # -- fabric-specific data-path timing -----------------------------------------

    def _memory_fetch(self, ready_ns: float, addr: int, nbytes: int,
                      ) -> Tuple[float, float]:
        """Route a line fetch over the fabric; returns (start, done)."""
        kind = self.fabric.kind
        if kind == FabricKind.SWITCHED:
            # Point-to-point path; only DRAM banks are shared.
            done = self.dram.service(ready_ns, addr, nbytes)
            return ready_ns, done
        transfer = nbytes * 1e3 / self.fabric.data_bus_mb_s
        if kind == FabricKind.SPLIT_BUS:
            # Bus occupied for the data packet only; DRAM latency overlaps.
            done_mem = self.dram.service(ready_ns, addr, nbytes)
            start, done = self.data_bus.occupy(done_mem - transfer, transfer)
            return start, max(done, done_mem)
        # SHARED_BUS: the transaction holds the bus across DRAM access.
        access = self.config.dram.access_ns
        start, done = self.data_bus.occupy(ready_ns, access + transfer)
        self.dram.service(start, addr, nbytes)
        return start, done

    def _occupy_data_path(self, ready_ns: float, duration_ns: float,
                          dram_addr: Optional[int]) -> Tuple[float, float]:
        if self.fabric.kind == FabricKind.SWITCHED:
            return ready_ns, ready_ns + duration_ns
        return self.data_bus.occupy(ready_ns, duration_ns)

    def reset(self) -> None:
        for cache in self.l1s + self.l2s:
            cache.invalidate_all()
            cache.reset_stats()
        for tlb in self.tlbs:
            tlb.flush()
            tlb.reset_stats()
        self.reset_timing()
        self.stats.reset()

    def reset_timing(self) -> None:
        """Start a fresh timing epoch: clear next-free bookkeeping of the
        shared resources while keeping all cache contents.

        Trace replays start their local clocks at zero, so successive
        replays on one node (e.g. a cache-warming pass followed by a
        measured pass) must not inherit stale bank/bus reservation times.
        """
        self.dram.reset()
        self.sequencer.reset()
        self.data_bus.reset()


@dataclass(frozen=True)
class TraceStep:
    """One unit of CPU work: ``compute_ns`` of execution then one access."""

    compute_ns: float
    addr: int
    access: AccessType = AccessType.READ


StallModel = Callable[[float, float], float]
"""Maps (memory_latency_ns, preceding_compute_ns) -> CPU stall ns."""


@dataclass
class CpuRunResult:
    finish_ns: float
    steps: int
    compute_ns: float
    stall_ns: float
    queueing_ns: float


def run_interleaved(memory: MultiprocessorMemory,
                    traces: Sequence[Iterable[TraceStep]],
                    stall_models: Sequence[StallModel],
                    ) -> List[CpuRunResult]:
    """Run one access stream per CPU, merged in global issue-time order.

    Each CPU's local clock advances by ``compute_ns`` plus the stall its
    stall model derives from the access latency.  Shared-resource
    next-free bookkeeping stays causally correct because the merge always
    services the earliest pending access.
    """
    if len(traces) != len(stall_models):
        raise ValueError("need one stall model per trace")
    if len(traces) > memory.num_cpus:
        raise ValueError(
            f"{len(traces)} traces for a {memory.num_cpus}-CPU node")

    iterators: List[Iterator[TraceStep]] = [iter(t) for t in traces]
    results = [CpuRunResult(0.0, 0, 0.0, 0.0, 0.0) for _ in traces]
    local = [0.0] * len(traces)
    heap: List[Tuple[float, int, TraceStep]] = []

    def push(cpu: int) -> None:
        step = next(iterators[cpu], None)
        if step is not None:
            heapq.heappush(heap, (local[cpu] + step.compute_ns, cpu, step))

    for cpu in range(len(traces)):
        push(cpu)

    while heap:
        issue, cpu, step = heapq.heappop(heap)
        outcome = memory.access(cpu, issue, step.addr, step.access)
        if OBS.enabled:
            OBS.metrics.observe("mem.access_ns", outcome.latency_ns,
                                node=memory.name,
                                level=outcome.level.name.lower())
        stall = stall_models[cpu](outcome.latency_ns, step.compute_ns)
        local[cpu] = issue + stall
        res = results[cpu]
        res.steps += 1
        res.compute_ns += step.compute_ns
        res.stall_ns += stall
        res.queueing_ns += outcome.queueing_ns
        res.finish_ns = local[cpu]
        push(cpu)
    return results


# ---------------------------------------------------------------------------
# Batch replay fast path
# ---------------------------------------------------------------------------
#
# Replaying an address trace through ``run_interleaved`` costs one TraceStep
# dataclass, one AccessResult, one MpAccessOutcome, two MESIState
# constructions and several Counter dict updates per reference — dominated
# by accesses that are plain L1 hits.  ``replay_traces`` keeps those
# accesses entirely inside one loop frame: set/tag shifts are precomputed,
# the L1/L2/TLB dicts are touched directly (same dict-order LRU as
# ``Cache.access``), and the per-access counters accumulate in locals that
# flush into the real ``Counter`` objects once per replay.  Anything that
# is not a private L1 hit (misses, SHARED-line upgrades, inclusion repair)
# falls through to ``MultiprocessorMemory.access`` untouched, *before* any
# state is mutated, so the replay is access-for-access identical to the
# reference path — same hit/miss/evict/upgrade counters, same float
# operation order, hence bit-identical timing.
#
# With observability enabled the reference path runs instead, so the
# per-access metric stream is preserved exactly.

_CHUNK = 8192

_SHARED_INT = int(MESIState.SHARED)
_MODIFIED_INT = int(MESIState.MODIFIED)


def _trace_pairs(trace):
    """Adapt a trace to ``(int, AccessType)`` pairs.

    Structured ``(addr, is_write)`` arrays (see ``repro.memory.trace_gen``
    array emitters) are accepted by every backend; plain iterables pass
    through untouched.
    """
    if hasattr(trace, "dtype"):
        read = AccessType.READ
        write = AccessType.WRITE
        return ((addr, write if is_write else read)
                for addr, is_write in zip(trace["addr"].tolist(),
                                          trace["is_write"].tolist()))
    return trace


def _try_vec(memory, trace, compute_ns, stall):
    """Attempt the numpy backend; on any unmet precondition return the
    (already materialised) trace so the scalar path can still consume it."""
    try:
        from repro.memory import vec
    except ImportError:
        return None, trace
    try:
        arr = vec.coerce_trace(trace)
    except (OverflowError, ValueError):
        return None, trace
    return vec.replay_traces_vec(memory, arr, compute_ns, stall), arr


REPLAY_BACKENDS = ("fast", "numpy")


def replay_traces(memory: MultiprocessorMemory,
                  traces: Sequence[Iterable[Tuple[int, AccessType]]],
                  compute_ns: float,
                  stall_models: Sequence[StallModel],
                  use_fast_path: bool = True,
                  backend: str = "fast") -> List[CpuRunResult]:
    """Replay raw ``(addr, AccessType)`` streams, one per CPU.

    Semantically identical to wrapping each stream in
    :class:`TraceStep` objects (with uniform ``compute_ns``) and calling
    :func:`run_interleaved`; ``use_fast_path=False`` forces exactly that,
    and is the reference implementation the equivalence tests compare
    against.

    ``backend="numpy"`` routes single-trace replays through the
    vectorized engine in :mod:`repro.memory.vec`, falling back to the
    scalar fast path whenever the engine's preconditions do not hold
    (multiple traces, SHARED lines resident, warm sibling CPUs, numpy
    unavailable).  Every backend accepts structured ``(addr, is_write)``
    array traces as well as iterables, and ``OBS.enabled`` still forces
    the reference path so per-access metric streams are preserved.
    """
    if backend not in REPLAY_BACKENDS:
        raise ValueError(f"unknown replay backend {backend!r}; "
                         f"have {list(REPLAY_BACKENDS)}")
    if len(traces) != len(stall_models):
        raise ValueError("need one stall model per trace")
    if len(traces) > memory.num_cpus:
        raise ValueError(
            f"{len(traces)} traces for a {memory.num_cpus}-CPU node")
    if not use_fast_path or OBS.enabled:
        steps = [(TraceStep(compute_ns, addr, access)
                  for addr, access in _trace_pairs(t)) for t in traces]
        return run_interleaved(memory, steps, stall_models)
    if len(traces) == 1:
        trace = traces[0]
        if backend == "numpy":
            result, trace = _try_vec(memory, trace, compute_ns,
                                     stall_models[0])
            if result is not None:
                return [result]
        return [_replay_fast_single(memory, _trace_pairs(trace), compute_ns,
                                    stall_models[0])]
    return _replay_fast_merged(memory, [_trace_pairs(t) for t in traces],
                               compute_ns, stall_models)


def _replay_fast_single(memory: MultiprocessorMemory,
                        trace: Iterable[Tuple[int, AccessType]],
                        compute_ns: float,
                        stall: StallModel) -> CpuRunResult:
    """Single-CPU replay: the merge heap degenerates to a tight loop."""
    config = memory.config
    l1_hit_ns = config.l1_hit_ns
    l2_hit_ns = config.l2_hit_ns
    tlb_miss_ns = config.tlb_miss_ns
    write_t = AccessType.WRITE
    shared = _SHARED_INT
    exclusive = int(MESIState.EXCLUSIVE)
    modified = _MODIFIED_INT

    l1 = memory.l1s[0]
    l2 = memory.l2s[0]
    tlb = memory.tlbs[0]
    l1_sets = l1._sets
    l2_sets = l2._sets
    l1_shift = l1._set_shift
    l1_mask = l1._set_mask
    l1_ways = l1._ways
    l2_shift = l2._set_shift
    l2_mask = l2._set_mask
    tlb_entries = tlb._entries
    page_shift = tlb._page_shift
    tlb_capacity = tlb.config.entries
    other_l1s = memory.l1s[1:]
    slow_access = memory.access

    local = 0.0
    steps = 0
    compute_total = 0.0
    stall_total = 0.0
    queueing_total = 0.0
    tlb_hits = tlb_misses = tlb_evictions = 0
    read_hits = write_hits = upgrades = l2_write_hits = 0
    read_misses = write_misses = l1_writebacks = clean_evicts = 0
    l2_read_hits = l2_upgrades = domain_hits = mp_l2_hits = 0

    islice = itertools.islice
    it = iter(trace)
    while True:
        chunk = list(islice(it, _CHUNK))
        if not chunk:
            break
        for addr, access in chunk:
            issue = local + compute_ns
            is_write = access is write_t
            tag = addr >> l1_shift
            line_set = l1_sets[tag & l1_mask]
            state = line_set.get(tag)
            l2_tag = addr >> l2_shift
            l2_set = l2_sets[l2_tag & l2_mask]
            l2_state = l2_set.get(l2_tag)

            if state is not None and not (is_write and
                                          (l2_state is None
                                           or l2_state == shared)):
                # --- private L1 hit -------------------------------------
                page = addr >> page_shift
                if page in tlb_entries:
                    del tlb_entries[page]
                    tlb_entries[page] = None
                    tlb_hits += 1
                    translation = 0.0
                else:
                    if len(tlb_entries) >= tlb_capacity:
                        del tlb_entries[next(iter(tlb_entries))]
                        tlb_evictions += 1
                    tlb_entries[page] = None
                    tlb_misses += 1
                    translation = tlb_miss_ns
                del line_set[tag]
                if is_write:
                    if state == shared:
                        upgrades += 1
                    line_set[tag] = modified
                    write_hits += 1
                    del l2_set[l2_tag]
                    l2_set[l2_tag] = modified
                    l2_write_hits += 1
                else:
                    line_set[tag] = state
                    read_hits += 1
                stall_ns = stall(translation + l1_hit_ns, compute_ns)
                local = issue + stall_ns
                steps += 1
                compute_total += compute_ns
                stall_total += stall_ns
                continue

            fast_miss = (state is None
                         and (l2_state == exclusive or l2_state == modified))
            victim_tag = -1
            victim_state = 0
            victim_l2_set = None
            if fast_miss and len(line_set) >= l1_ways:
                victim_tag = next(iter(line_set))
                victim_state = line_set[victim_tag]
                if victim_state == modified:
                    v_l2_tag = (victim_tag << l1_shift) >> l2_shift
                    victim_l2_set = l2_sets[v_l2_tag & l2_mask]
                    if v_l2_tag not in victim_l2_set:
                        # Inclusion breach on the victim: reference path.
                        fast_miss = False

            if fast_miss:
                # --- L1 miss refilled by a private (E/M) L2 hit ---------
                # Mirrors MultiprocessorMemory.access exactly: TLB, L1
                # victim to L2, the coherence-domain plain hit (no bus
                # op), and the inclusion repair against the other CPUs.
                page = addr >> page_shift
                if page in tlb_entries:
                    del tlb_entries[page]
                    tlb_entries[page] = None
                    tlb_hits += 1
                    translation = 0.0
                else:
                    if len(tlb_entries) >= tlb_capacity:
                        del tlb_entries[next(iter(tlb_entries))]
                        tlb_evictions += 1
                    tlb_entries[page] = None
                    tlb_misses += 1
                    translation = tlb_miss_ns
                if victim_tag >= 0:
                    del line_set[victim_tag]
                    if victim_state == modified:
                        l1_writebacks += 1
                        v_l2_tag = (victim_tag << l1_shift) >> l2_shift
                        v_state = victim_l2_set[v_l2_tag]
                        del victim_l2_set[v_l2_tag]
                        victim_l2_set[v_l2_tag] = modified
                        l2_write_hits += 1
                        if v_state == shared:
                            l2_upgrades += 1
                        if victim_l2_set is l2_set:
                            l2_state = l2_set.get(l2_tag)
                    else:
                        clean_evicts += 1
                if is_write:
                    line_set[tag] = modified
                    write_misses += 1
                    del l2_set[l2_tag]
                    l2_set[l2_tag] = modified
                    l2_write_hits += 1
                else:
                    line_set[tag] = exclusive
                    read_misses += 1
                    del l2_set[l2_tag]
                    l2_set[l2_tag] = l2_state
                    l2_read_hits += 1
                domain_hits += 1
                for other in other_l1s:
                    other.snoop_invalidate(addr)
                mp_l2_hits += 1
                stall_ns = stall((translation + l1_hit_ns) + l2_hit_ns,
                                 compute_ns)
            else:
                # Bus-op miss, SHARED upgrade, or repair case: reference
                # path (nothing mutated yet, so it sees pristine state).
                outcome = slow_access(0, issue, addr, access)
                stall_ns = stall(outcome.latency_ns, compute_ns)
                queueing_total += outcome.queueing_ns
            local = issue + stall_ns
            steps += 1
            compute_total += compute_ns
            stall_total += stall_ns

    _flush_replay_counters(memory, 0, tlb_hits, tlb_misses, tlb_evictions,
                           read_hits, write_hits, upgrades, l2_write_hits)
    l1_stats = l1.stats
    if read_misses:
        l1_stats.incr("read_miss", read_misses)
    if write_misses:
        l1_stats.incr("write_miss", write_misses)
    if l1_writebacks:
        l1_stats.incr("writeback", l1_writebacks)
    if clean_evicts:
        l1_stats.incr("clean_evict", clean_evicts)
    if l2_read_hits:
        l2.stats.incr("read_hit", l2_read_hits)
    if l2_upgrades:
        l2.stats.incr("upgrade", l2_upgrades)
    if domain_hits:
        memory.domain.stats.incr("hit", domain_hits)
    if mp_l2_hits:
        memory.stats.incr("l2_hits", mp_l2_hits)
    return CpuRunResult(finish_ns=local, steps=steps,
                        compute_ns=compute_total, stall_ns=stall_total,
                        queueing_ns=queueing_total)


def _replay_fast_merged(memory: MultiprocessorMemory,
                        traces: Sequence[Iterable[Tuple[int, AccessType]]],
                        compute_ns: float,
                        stall_models: Sequence[StallModel],
                        ) -> List[CpuRunResult]:
    """Multi-CPU replay: same inlined access, merge heap kept."""
    config = memory.config
    l1_hit_ns = config.l1_hit_ns
    tlb_miss_ns = config.tlb_miss_ns
    write_t = AccessType.WRITE
    shared = _SHARED_INT
    modified = _MODIFIED_INT

    l1_sets_by_cpu = [l1._sets for l1 in memory.l1s]
    l2_sets_by_cpu = [l2._sets for l2 in memory.l2s]
    tlb_by_cpu = [tlb._entries for tlb in memory.tlbs]
    l1_shift = memory.l1s[0]._set_shift
    l1_mask = memory.l1s[0]._set_mask
    l2_shift = memory.l2s[0]._set_shift
    l2_mask = memory.l2s[0]._set_mask
    page_shift = memory.tlbs[0]._page_shift
    tlb_capacity = config.tlb.entries
    slow_access = memory.access

    n = len(traces)
    iterators = [iter(t) for t in traces]
    local = [0.0] * n
    steps = [0] * n
    compute_total = [0.0] * n
    stall_total = [0.0] * n
    queueing_total = [0.0] * n
    counts = [[0] * 7 for _ in range(n)]  # see _flush_replay_counters

    heappush = heapq.heappush
    heappop = heapq.heappop
    heap: List[Tuple[float, int, int, AccessType]] = []
    for cpu in range(n):
        ref = next(iterators[cpu], None)
        if ref is not None:
            heappush(heap, (compute_ns, cpu, ref[0], ref[1]))

    while heap:
        issue, cpu, addr, access = heappop(heap)
        tag = addr >> l1_shift
        line_set = l1_sets_by_cpu[cpu][tag & l1_mask]
        state = line_set.get(tag)
        l2_set = l2_state = None
        if state is not None and access is write_t:
            l2_tag = addr >> l2_shift
            l2_set = l2_sets_by_cpu[cpu][l2_tag & l2_mask]
            l2_state = l2_set.get(l2_tag)
        if state is None or (access is write_t and
                             (l2_state is None or l2_state == shared)):
            outcome = slow_access(cpu, issue, addr, access)
            stall_ns = stall_models[cpu](outcome.latency_ns, compute_ns)
            queueing_total[cpu] += outcome.queueing_ns
        else:
            c = counts[cpu]
            tlb_entries = tlb_by_cpu[cpu]
            page = addr >> page_shift
            if page in tlb_entries:
                del tlb_entries[page]
                tlb_entries[page] = None
                c[0] += 1
                translation = 0.0
            else:
                if len(tlb_entries) >= tlb_capacity:
                    del tlb_entries[next(iter(tlb_entries))]
                    c[2] += 1
                tlb_entries[page] = None
                c[1] += 1
                translation = tlb_miss_ns
            del line_set[tag]
            if access is write_t:
                if state == shared:
                    c[5] += 1
                line_set[tag] = modified
                c[4] += 1
                del l2_set[l2_tag]
                l2_set[l2_tag] = modified
                c[6] += 1
            else:
                line_set[tag] = state
                c[3] += 1
            stall_ns = stall_models[cpu](translation + l1_hit_ns, compute_ns)
        now = issue + stall_ns
        local[cpu] = now
        steps[cpu] += 1
        compute_total[cpu] += compute_ns
        stall_total[cpu] += stall_ns
        ref = next(iterators[cpu], None)
        if ref is not None:
            heappush(heap, (now + compute_ns, cpu, ref[0], ref[1]))

    for cpu in range(n):
        c = counts[cpu]
        _flush_replay_counters(memory, cpu, c[0], c[1], c[2], c[3], c[4],
                               c[5], c[6])
    return [CpuRunResult(finish_ns=local[cpu], steps=steps[cpu],
                         compute_ns=compute_total[cpu],
                         stall_ns=stall_total[cpu],
                         queueing_ns=queueing_total[cpu])
            for cpu in range(n)]


def _flush_replay_counters(memory: MultiprocessorMemory, cpu: int,
                           tlb_hits: int, tlb_misses: int,
                           tlb_evictions: int, read_hits: int,
                           write_hits: int, upgrades: int,
                           l2_write_hits: int) -> None:
    """Fold one CPU's locally-accumulated counters into the real stats."""
    tlb_stats = memory.tlbs[cpu].stats
    if tlb_hits:
        tlb_stats.incr("hits", tlb_hits)
    if tlb_misses:
        tlb_stats.incr("misses", tlb_misses)
        memory.stats.incr("tlb_misses", tlb_misses)
    if tlb_evictions:
        tlb_stats.incr("evictions", tlb_evictions)
    l1_stats = memory.l1s[cpu].stats
    if read_hits:
        l1_stats.incr("read_hit", read_hits)
    if write_hits:
        l1_stats.incr("write_hit", write_hits)
    if upgrades:
        l1_stats.incr("upgrade", upgrades)
    if l2_write_hits:
        memory.l2s[cpu].stats.incr("write_hit", l2_write_hits)
    if read_hits or write_hits:
        memory.stats.incr("l1_hits", read_hits + write_hits)
