"""EARTH — an Efficient Architecture for Running THreads, on PowerMANNA.

The paper closes with: "for the forerunner MANNA machine, the EARTH system
was shown to offer low communication cost close to the hardware limits
[18].  In a cooperation project with the University of Delaware, EARTH is
currently being ported to the PowerMANNA machine."  This package *is* that
port, for the simulated machine: a fine-grain multithreading runtime in
the EARTH-MANNA style (Hum/Maquelin/Theobald/Tian/Gao/Hendren, IJPP 1996).

The programming model:

* programs are **threaded procedures** decomposed into **fibers** —
  short, non-preemptive code sequences;
* a fiber becomes ready when its **sync slot** counts down to zero;
* fibers issue **split-phase operations** — remote loads/stores, remote
  fiber spawns, data-sync sends — and terminate without blocking; the
  reply decrements the sync slot of whichever fiber consumes the result.

Each node runs an **EU** (execution unit: pops ready fibers and runs
them) and an **SU** (synchronisation unit: fields network messages,
services remote requests, counts down sync slots).  On PowerMANNA both
are node CPUs driving the lightweight link interface — exactly the
machine's "can also perform well with multithreaded software" claim,
which :mod:`repro.earth.bench` quantifies against round-trip-style
blocking communication.
"""

from repro.earth.runtime import EarthConfig, EarthMachine, EarthNode
from repro.earth.fibers import Fiber, SyncSlot
from repro.earth.operations import (
    DataSync,
    Operation,
    RemoteLoad,
    RemoteStore,
    Spawn,
)

__all__ = [
    "DataSync",
    "EarthConfig",
    "EarthMachine",
    "EarthNode",
    "Fiber",
    "Operation",
    "RemoteLoad",
    "RemoteStore",
    "Spawn",
    "SyncSlot",
]
