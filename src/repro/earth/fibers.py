"""Fibers and sync slots — the units of EARTH's fine-grain threading.

A *fiber* is a short, non-preemptive piece of work plus the split-phase
operations it issues when it runs.  A *sync slot* is a countdown: every
inbound datum or signal decrements it, and when it reaches zero the
associated fiber is enqueued for execution.  This is the whole EARTH
scheduling contract — no blocking, no preemption, no stacks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.earth.operations import Operation
    from repro.earth.runtime import EarthNode

_fiber_ids = itertools.count(1)

Frame = Dict[str, Any]
FiberBody = Callable[["EarthNode", Frame], List["Operation"]]


@dataclass
class Fiber:
    """One schedulable unit.

    Attributes:
        body: the code — runs atomically, returns the split-phase
            operations to issue.  It may read/write its ``frame`` and the
            node's local memory.
        frame: the activation frame shared by the fibers of one threaded
            procedure invocation.
        work_ns: simulated execution time of the body (the model's stand-in
            for the fiber's instruction stream).
        label: debugging/tracing name.
    """

    body: FiberBody
    frame: Frame = field(default_factory=dict)
    work_ns: float = 200.0
    label: str = ""
    fiber_id: int = field(default_factory=lambda: next(_fiber_ids))

    def __post_init__(self):
        if self.work_ns < 0:
            raise ValueError("fiber work time must be nonnegative")
        if not callable(self.body):
            raise TypeError("fiber body must be callable")

    def run(self, node: "EarthNode") -> List["Operation"]:
        ops = self.body(node, self.frame)
        return list(ops) if ops else []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Fiber {self.label or self.body.__name__}#{self.fiber_id}>"


class SyncSlot:
    """A countdown gate in front of a fiber.

    ``count`` arrivals are needed before ``fiber`` fires.  Slots may be
    reusable (``reset=True``: the count reloads after firing, as in loop
    bodies) or one-shot.
    """

    def __init__(self, count: int, fiber: Fiber, reset: bool = False,
                 label: str = ""):
        if count < 1:
            raise ValueError("sync count must be >= 1")
        self.initial_count = count
        self.count = count
        self.fiber = fiber
        self.reset = reset
        self.label = label
        self.fired = 0

    def signal(self) -> Optional[Fiber]:
        """One arrival; returns the fiber if this one released it."""
        if self.count <= 0:
            raise RuntimeError(
                f"sync slot {self.label!r} signalled after exhaustion")
        self.count -= 1
        if self.count > 0:
            return None
        self.fired += 1
        if self.reset:
            self.count = self.initial_count
        return self.fiber

    @property
    def pending(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SyncSlot {self.label!r} {self.count}/"
                f"{self.initial_count}>")
