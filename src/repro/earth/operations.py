"""Split-phase operations — EARTH's replacement for blocking communication.

Every operation is fire-and-forget from the issuing fiber's perspective:
the fiber terminates, and the *effect* (a value landing in a frame, a sync
count reaching zero, a fiber appearing on a remote ready queue) later
re-enables whatever consumes it.  On PowerMANNA these map directly onto
short messages through the CPU-driven link interface, which is why the
machine suits the model so well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.earth.fibers import Fiber, Frame, SyncSlot


class Operation:
    """Marker base class for split-phase operations."""

    #: payload bytes the operation occupies on the wire (request side).
    wire_bytes: int = 16


@dataclass
class Spawn(Operation):
    """INVOKE: enqueue ``fiber`` on ``node``'s ready queue."""

    node: int
    fiber: Fiber
    wire_bytes: int = 32


@dataclass
class RemoteLoad(Operation):
    """GET_SYNC: fetch ``addr`` from ``node``'s memory; on reply, store the
    value into ``frame[key]`` and signal ``slot`` (both on the *issuing*
    node).

    ``origin`` is stamped by the issuing EU so the reply can find its way
    home; programs never set it.
    """

    node: int
    addr: int
    frame: Frame
    key: str
    slot: SyncSlot
    origin: int = -1
    wire_bytes: int = 16


@dataclass
class RemoteStore(Operation):
    """Write ``value`` to ``node``'s memory at ``addr``; optionally signal
    a slot on the destination node afterwards."""

    node: int
    addr: int
    value: Any
    slot: Optional[SyncSlot] = None
    wire_bytes: int = 24


@dataclass
class DataSync(Operation):
    """SYNC with data: deposit ``value`` into a (possibly remote) frame and
    signal its slot — the canonical way a child returns its result."""

    node: int
    frame: Frame
    key: str
    value: Any
    slot: SyncSlot
    wire_bytes: int = 24


@dataclass
class LocalSignal(Operation):
    """A purely local sync arrival (no network traffic)."""

    slot: SyncSlot
    wire_bytes: int = 0


@dataclass
class _LoadReply(Operation):
    """Internal: the response half of a RemoteLoad."""

    node: int            # issuing node, where frame/slot live
    frame: Frame
    key: str
    value: Any
    slot: SyncSlot
    wire_bytes: int = 24
