"""EARTH measurement harness.

Ref [18] showed EARTH on MANNA delivering communication cost close to the
hardware limits; the paper ports it to PowerMANNA to exploit multithreaded
software.  Two experiments quantify that here:

* :func:`remote_load_latency_ns` — one split-phase remote load, request to
  sync-fire, the EARTH analogue of half a ping-pong;
* :func:`overlap_experiment` — K remote loads issued *blocking* (one
  round trip at a time, what a naive message-passing code does) versus
  *split-phase* (all in flight, one sync slot counts them down).  The
  ratio is the latency-tolerance win of the threaded model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.earth.fibers import Fiber, SyncSlot
from repro.earth.operations import RemoteLoad
from repro.earth.runtime import EarthConfig, EarthMachine


@dataclass(frozen=True)
class OverlapResult:
    count: int
    blocking_ns: float
    split_phase_ns: float

    @property
    def overlap_factor(self) -> float:
        if self.split_phase_ns <= 0:
            return float("inf")
        return self.blocking_ns / self.split_phase_ns


def _populate(machine: EarthMachine, node: int, count: int) -> None:
    for index in range(count):
        machine.node(node).memory[index * 8] = index * 11


def remote_load_latency_ns(machine: EarthMachine | None = None,
                           src: int = 0, dst: int = 1) -> float:
    """Time from issuing one remote load to its sync slot firing."""
    machine = machine or EarthMachine()
    _populate(machine, dst, 1)
    times = {}

    def done_body(node, frame):
        times["done"] = node.sim.now
        return []

    done = Fiber(done_body, work_ns=0.0, label="done")
    slot = SyncSlot(1, done, label="load")
    frame: dict = {}

    def issue_body(node, frame_):
        times["start"] = node.sim.now
        return [RemoteLoad(node=dst, addr=0, frame=frame, key="x", slot=slot)]

    machine.spawn(src, Fiber(issue_body, work_ns=0.0, label="issue"))
    machine.run()
    if frame.get("x") != 0:
        raise AssertionError(f"remote load returned {frame.get('x')!r}")
    return times["done"] - times["start"]


def overlap_experiment(count: int = 16, src: int = 0,
                       dst: int = 1,
                       config: EarthConfig = EarthConfig()) -> OverlapResult:
    """Blocking versus split-phase remote loads (fresh machine each arm)."""

    # -- blocking arm: each load's sync fires the next load's fiber --------
    machine = EarthMachine(config=config)
    _populate(machine, dst, count)
    times = {}
    frame: dict = {}

    def make_chain(index: int) -> Fiber:
        def body(node, frame_):
            if index == count:
                times["end"] = node.sim.now
                return []
            follow = make_chain(index + 1)
            slot = SyncSlot(1, follow, label=f"chain{index}")
            return [RemoteLoad(node=dst, addr=index * 8, frame=frame,
                               key=f"v{index}", slot=slot)]

        return Fiber(body, work_ns=0.0, label=f"chain{index}")

    def root_blocking(node, frame_):
        times["start"] = node.sim.now
        follow = make_chain(1)
        slot = SyncSlot(1, follow, label="chain0")
        return [RemoteLoad(node=dst, addr=0, frame=frame, key="v0",
                           slot=slot)]

    machine.spawn(src, Fiber(root_blocking, work_ns=0.0, label="root"))
    machine.run()
    blocking_ns = times["end"] - times["start"]
    _check_values(frame, count)

    # -- split-phase arm: all loads in flight, one slot counts them -------
    machine = EarthMachine(config=config)
    _populate(machine, dst, count)
    times = {}
    frame = {}

    def finish(node, frame_):
        times["end"] = node.sim.now
        return []

    slot = SyncSlot(count, Fiber(finish, work_ns=0.0, label="finish"),
                    label="all-loads")

    def root_split(node, frame_):
        times["start"] = node.sim.now
        return [RemoteLoad(node=dst, addr=index * 8, frame=frame,
                           key=f"v{index}", slot=slot)
                for index in range(count)]

    machine.spawn(src, Fiber(root_split, work_ns=0.0, label="root"))
    machine.run()
    split_ns = times["end"] - times["start"]
    _check_values(frame, count)

    return OverlapResult(count=count, blocking_ns=blocking_ns,
                         split_phase_ns=split_ns)


def _check_values(frame: dict, count: int) -> None:
    for index in range(count):
        expected = index * 11
        if frame.get(f"v{index}") != expected:
            raise AssertionError(
                f"load {index} returned {frame.get(f'v{index}')!r}, "
                f"expected {expected}")
