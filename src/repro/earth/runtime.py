"""The EARTH runtime: one EU + SU pair per PowerMANNA node.

Mechanics per node:

* the **EU process** pops ready fibers, charges their simulated work time,
  runs the body, and hands the resulting operations to the outbox;
* the **outbox process** drives the PIO link driver, one short message per
  remote operation (local operations are applied immediately by the EU);
* the **SU process** receives network messages and applies their semantic:
  deposit a value, count down a sync slot, enqueue a spawned fiber, or
  serve a remote load by sending the reply.

Values move for real (frames and node memories are Python dicts), so EARTH
programs in the examples compute real answers while the discrete-event
clock prices every hop through the crossbar network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.earth.fibers import Fiber, SyncSlot
from repro.earth.operations import (
    DataSync,
    LocalSignal,
    Operation,
    RemoteLoad,
    RemoteStore,
    Spawn,
    _LoadReply,
)
from repro.msg.api import CommWorld, build_cluster_world
from repro.ni.driver import DriverConfig
from repro.obs import OBS
from repro.sim.engine import SimulationError, Simulator
from repro.sim.resources import FifoStore
from repro.sim.stats import Counter, Histogram


@dataclass(frozen=True)
class EarthConfig:
    """Runtime costs.

    EARTH messages are tiny and pre-matched (a slot address travels with
    the data), so the per-operation software cost is far below an MPI
    send; ``op_setup_ns`` reflects the EARTH-MANNA measurements of ref
    [18] scaled to the PowerMANNA link interface.
    """

    fiber_dispatch_ns: float = 150.0   # pop + frame pointer setup
    op_issue_ns: float = 120.0         # EU -> outbox hand-off per operation
    su_handle_ns: float = 250.0        # SU work per inbound message
    driver: DriverConfig = DriverConfig(
        send_setup_ns=350.0,           # no matching, no header build: a
        recv_dispatch_ns=300.0,        # slot-addressed active message
        copy_out_mb_s=120.0,
        copy_in_mb_s=90.0,
    )

    def __post_init__(self):
        if min(self.fiber_dispatch_ns, self.op_issue_ns,
               self.su_handle_ns) < 0:
            raise ValueError("runtime costs must be nonnegative")


class EarthNode:
    """EU + SU + outbox over one node's link interface."""

    def __init__(self, machine: "EarthMachine", node_id: int):
        self.machine = machine
        self.node_id = node_id
        self.sim = machine.sim
        self.config = machine.config
        self.memory: Dict[int, Any] = {}
        self.ready = FifoStore(self.sim, name=f"earth{node_id}.ready")
        self.outbox = FifoStore(self.sim, name=f"earth{node_id}.outbox")
        self.stats = Counter(f"earth{node_id}")
        self.fiber_latency = Histogram(f"earth{node_id}.fiber_ns")
        self.sim.process(self._execution_unit())
        self.sim.process(self._outbox_pump())
        self.sim.process(self._synchronization_unit())

    # -- program-facing API -----------------------------------------------------

    def enqueue(self, fiber: Fiber) -> None:
        """Make a fiber ready on this node (local spawn)."""
        if not self.ready.try_put(fiber):
            raise SimulationError("unbounded ready queue refused a fiber")
        self.stats.incr("fibers_enqueued")

    def signal(self, slot: SyncSlot) -> None:
        """Count down a local sync slot; enqueue its fiber when released."""
        fiber = slot.signal()
        self.stats.incr("sync_signals")
        if fiber is not None:
            self.enqueue(fiber)

    # -- the three engine processes -----------------------------------------------

    def _execution_unit(self):
        config = self.config
        while True:
            fiber = yield self.ready.get()
            started = self.sim.now
            fiber_span = 0
            if OBS.enabled:
                fiber_span = OBS.tracer.begin(
                    "earth.fiber", f"earth{self.node_id}", started,
                    category="earth",
                    fiber=fiber.label or fiber.body.__name__)
            yield self.sim.timeout(config.fiber_dispatch_ns + fiber.work_ns)
            operations = fiber.run(self)
            for op in operations:
                yield self.sim.timeout(config.op_issue_ns)
                self._issue(op)
            self.stats.incr("fibers_run")
            self.fiber_latency.add(self.sim.now - started)
            if OBS.enabled:
                OBS.tracer.end(fiber_span, self.sim.now)
                OBS.metrics.incr("earth.fibers_run", node=self.node_id)
                OBS.metrics.observe("earth.fiber_ns", self.sim.now - started,
                                    node=self.node_id)

    def _issue(self, op: Operation) -> None:
        if isinstance(op, LocalSignal):
            self.signal(op.slot)
            return
        if isinstance(op, RemoteLoad) and op.origin < 0:
            op.origin = self.node_id
        target = getattr(op, "node", None)
        if target == self.node_id:
            # Local fast path: no network, apply directly.
            self._apply(op)
            return
        if not self.outbox.try_put(op):
            raise SimulationError("unbounded outbox refused an operation")
        self.stats.incr("remote_ops")

    def _outbox_pump(self):
        world = self.machine.world
        while True:
            op = yield self.outbox.get()
            message = world.make_message(self.node_id, op.node,
                                         op.wire_bytes, tag={"earth": op})
            driver = world.endpoint(self.node_id).driver
            yield self.sim.process(driver.send_message(message))

    def _synchronization_unit(self):
        world = self.machine.world
        driver = world.endpoint(self.node_id).driver
        while True:
            message = yield self.sim.process(driver.receive_message())
            yield self.sim.timeout(self.config.su_handle_ns)
            op = message.tag["earth"] if isinstance(message.tag, dict) else None
            if op is None:
                raise SimulationError(
                    f"node {self.node_id}: non-EARTH message "
                    f"{message.message_id} on the EARTH plane")
            self._apply(op)
            self.stats.incr("messages_handled")
            if OBS.enabled:
                OBS.metrics.incr("earth.messages_handled", node=self.node_id)

    # -- operation semantics ----------------------------------------------------------

    def _apply(self, op: Operation) -> None:
        if isinstance(op, Spawn):
            self.enqueue(op.fiber)
        elif isinstance(op, RemoteStore):
            self.memory[op.addr] = op.value
            self.stats.incr("stores_served")
            if op.slot is not None:
                self.signal(op.slot)
        elif isinstance(op, RemoteLoad):
            value = self.memory.get(op.addr)
            self.stats.incr("loads_served")
            origin = op.origin if op.origin >= 0 else self.node_id
            reply = _LoadReply(node=origin, frame=op.frame, key=op.key,
                               value=value, slot=op.slot)
            if origin == self.node_id:
                self._apply(reply)
            elif not self.outbox.try_put(reply):
                raise SimulationError("outbox refused a load reply")
        elif isinstance(op, (DataSync, _LoadReply)):
            op.frame[op.key] = op.value
            self.signal(op.slot)
        else:
            raise SimulationError(f"unknown EARTH operation {op!r}")

class EarthMachine:
    """An EARTH instance over a PowerMANNA cluster plane."""

    def __init__(self, n_nodes: int = 8,
                 config: EarthConfig = EarthConfig(),
                 world: Optional[CommWorld] = None,
                 sim: Optional[Simulator] = None,
                 topology=None):
        self.config = config
        if world is None and topology is not None:
            # Fibers execute on simulated nodes, so EARTH needs the flit
            # tier's real endpoints — reject flow specs up front.
            from repro.msg.api import build_topology_world

            if topology.fidelity != "flit":
                raise ValueError(
                    f"EARTH needs flit fidelity (got {topology.fidelity!r})")
            sim, world = build_topology_world(topology,
                                              driver_config=config.driver)
        elif world is None:
            sim, world = build_cluster_world(n_nodes=n_nodes,
                                             driver_config=config.driver)
        elif sim is None:
            raise ValueError("pass sim together with an existing world")
        self.sim = sim
        self.world = world
        self.nodes: List[EarthNode] = [
            EarthNode(self, node) for node in world.fabric.node_ids()]

    def node(self, node_id: int) -> EarthNode:
        return self.nodes[node_id]

    def spawn(self, node_id: int, fiber: Fiber) -> None:
        """Inject a root fiber from 'outside' (program start)."""
        self.node(node_id).enqueue(fiber)

    def run(self, until: Optional[float] = None) -> float:
        """Run to quiescence (or ``until``); returns the final time."""
        return self.sim.run(until=until)

    def total(self, key: str) -> int:
        return sum(node.stats[key] for node in self.nodes)
