"""The recorded pre-optimization (seed) baseline of the hot kernels.

These wall times were measured with :func:`repro.perf.harness.run_bench`
(3 repeats, best-of) against the *seed* implementations of the trace
replay and DES kernels — i.e. immediately before the batch-replay and
event-kernel fast paths landed — on the reference development machine.
``speedup_vs_seed`` in ``BENCH_perf.json`` is computed against these
numbers, so the speedup is only meaningful on comparable hardware; the
absolute trajectory to track across PRs is the ``kernels`` section of
successive ``BENCH_perf.json`` artifacts on the same machine.
"""

from __future__ import annotations

SEED_BASELINE = {
    "recorded": "2026-08-06",
    "commit": "seed (pre fast-path)",
    "kernels": {
        "fig6_hint": {"wall_s": 0.0999},
        "fig7_matmult": {"wall_s": 2.9401},
        "fig9_pingpong": {"wall_s": 0.1490},
        "fig11_unidir": {"wall_s": 0.2956},
    },
}
