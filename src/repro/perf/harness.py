"""Perf-regression harness: time the hot kernels behind the figures.

Every figure in the reproduction funnels through two engines — the
trace-driven cache/TLB replay (:mod:`repro.memory`) and the flit-level
discrete-event kernel (:mod:`repro.sim`).  This harness times one
representative kernel per figure family at fixed, scaled sizes and writes
``BENCH_perf.json`` so each PR leaves a throughput trajectory the next one
has to beat:

* ``fig6_hint`` — HINT refinement + checkpoint scan replays (DOUBLE).
* ``fig7_matmult`` — full naive MatMult address-trace replay (N=48,
  caches scaled 1/16): the cache/TLB hot loop.
* ``fig7_matmult_vec`` — the same replay through the numpy backend
  (``replay_backend="numpy"``): identical work/check by the equivalence
  contract, so its wall-time ratio to ``fig7_matmult`` *is* the
  vectorization speedup.
* ``replay_batch_vec`` — many independent sweep-point replays stacked
  into single padded lockstep passes via ``vec.replay_batch``: the
  batched multi-point mode behind ``run_sweep(replay_backend="numpy")``.
* ``fig9_pingpong`` — one-way latency ping-pongs over the full DES stack
  (driver -> NI -> link -> crossbar -> drain): the event-kernel hot loop.
* ``fig11_unidir`` — back-to-back streaming bandwidth (DES under load).
* ``topo_hypercube_1k`` — 1024-node hypercube fabric construction (the
  topology generator + realizer path at sweep scale).

Kernel sizes are identical in ``--quick`` and full mode (only the repeat
count differs) so every ``BENCH_perf.json`` is comparable with every
other, including the recorded seed baseline in
:mod:`repro.perf.baseline`.  Wall times take the *best* of ``repeats``
runs — the minimum is the least noisy estimator of the achievable time.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.perf.baseline import SEED_BASELINE

SCHEMA = "repro.perf/v1"

FIG9_SIZES = (8, 64, 512, 1024)


@dataclass(frozen=True)
class KernelResult:
    """One timed kernel.

    Attributes:
        name: kernel key (``fig7_matmult``, ...).
        wall_s: best wall time over the repeats.
        mean_s: mean wall time over the repeats.
        repeats: how many times the kernel ran.
        work: deterministic work units performed per run (simulated
            memory accesses for replay kernels, processed DES events for
            network kernels).
        work_unit: "accesses" or "events".
        check: a deterministic simulation-side figure from the run (a
            latency, a bandwidth, a QUIPS value) — any drift here means
            the kernel's *semantics* changed, not just its speed.
    """

    name: str
    wall_s: float
    mean_s: float
    repeats: int
    work: int
    work_unit: str
    check: float

    @property
    def rate(self) -> float:
        """Work units per second of host wall time."""
        return self.work / self.wall_s if self.wall_s > 0 else 0.0

    def speedup_vs_seed(self) -> Optional[float]:
        base = SEED_BASELINE["kernels"].get(self.name)
        if base is None or self.wall_s <= 0:
            return None
        return base["wall_s"] / self.wall_s


# ---------------------------------------------------------------------------
# The kernels.  Each returns (work_units, work_unit_name, check_value).
# ---------------------------------------------------------------------------


def _kernel_fig6_hint() -> Tuple[int, str, float]:
    from repro.bench.hint import hint_on_machine
    from repro.core.specs import POWERMANNA

    result = hint_on_machine(POWERMANNA, data_type="double", scale=16,
                             max_subintervals=2048)
    # run_hint builds its own node; charge the refinement count as work.
    return 2048, "refinements", result.final_quips


def _kernel_fig7_matmult() -> Tuple[int, str, float]:
    from repro.bench.matmult import run_matmult
    from repro.core.specs import POWERMANNA

    node = POWERMANNA.node(scale=16)
    result = run_matmult(node, 48, version="naive",
                         machine_key="powermanna")
    accesses = sum(l1.access_count() for l1 in node.memory.l1s)
    return accesses, "accesses", result.mflops


def _kernel_fig7_matmult_vec() -> Tuple[int, str, float]:
    from repro.bench.matmult import run_matmult
    from repro.core.specs import POWERMANNA

    node = POWERMANNA.node(scale=16)
    result = run_matmult(node, 48, version="naive",
                         machine_key="powermanna", replay_backend="numpy")
    accesses = sum(l1.access_count() for l1 in node.memory.l1s)
    return accesses, "accesses", result.mflops


def _kernel_replay_batch_vec() -> Tuple[int, str, float]:
    """Batched multi-point replay: several independent MatMult points
    (one isolated memory each, as under ``run_sweep``) through one
    ``vec.replay_batch`` call, so the padded lockstep passes are shared
    across all of them."""
    from repro.bench.matmult import _alloc_matrices, _per_access_compute_ns
    from repro.core.specs import POWERMANNA
    from repro.memory import vec
    from repro.memory.trace_gen import matmult_naive_array

    specs = []
    for n in (16, 20, 24, 28, 32, 36):
        node = POWERMANNA.node(scale=16)
        node.reset()
        base_a, base_b, _, base_c = _alloc_matrices(0, n)
        trace = matmult_naive_array(base_a, base_b, base_c, n)
        compute = _per_access_compute_ns(node, n, "naive")
        specs.append((node.memory, trace, compute, node._stall))
    results = vec.replay_batch(specs)
    if any(r is None for r in results):
        raise AssertionError("replay_batch fell back on a supported spec")
    work = sum(len(spec[1]) for spec in specs)
    return work, "accesses", sum(r.finish_ns for r in results)


def _kernel_fig9_pingpong() -> Tuple[int, str, float]:
    from repro.msg.api import build_cluster_world

    _, world = build_cluster_world()
    total = 0.0
    for nbytes in FIG9_SIZES:
        total += world.one_way_latency_ns(0, 1, nbytes)
    events = getattr(world.sim, "events_processed", 0)
    return events, "events", total


def _kernel_fig11_unidir() -> Tuple[int, str, float]:
    from repro.msg.api import build_cluster_world

    _, world = build_cluster_world()
    bw = world.unidirectional_mb_s(0, 1, 4096, count=8)
    events = getattr(world.sim, "events_processed", 0)
    return events, "events", bw


def _kernel_topo_hypercube_1k() -> Tuple[int, str, float]:
    """Stand up a 1024-node hypercube flit fabric: the generator +
    realizer construction path at sweep scale (no simulation run)."""
    from repro.network.topo import TopologySpec, build_fabric
    from repro.sim.engine import Simulator

    spec = TopologySpec("hypercube",
                        {"dimensions": 8, "nodes_per_router": 4})
    sim = Simulator()
    fabric = build_fabric(sim, spec)
    work = (fabric.graph.number_of_nodes()
            + fabric.graph.number_of_edges())
    return work, "components", float(len(fabric.crossbars))


KERNELS: Dict[str, Callable[[], Tuple[int, str, float]]] = {
    "fig6_hint": _kernel_fig6_hint,
    "fig7_matmult": _kernel_fig7_matmult,
    "fig7_matmult_vec": _kernel_fig7_matmult_vec,
    "replay_batch_vec": _kernel_replay_batch_vec,
    "fig9_pingpong": _kernel_fig9_pingpong,
    "fig11_unidir": _kernel_fig11_unidir,
    "topo_hypercube_1k": _kernel_topo_hypercube_1k,
}


def _warm_imports() -> None:
    """Import the kernels' dependency trees before the clock starts.

    The kernel functions import lazily (so ``import repro.perf`` stays
    light); without this, a single-repeat run would charge the first
    kernel of each family its whole import chain.
    """
    import repro.bench.hint  # noqa: F401
    import repro.bench.matmult  # noqa: F401
    import repro.memory.vec  # noqa: F401
    import repro.core.specs  # noqa: F401
    import repro.msg.api  # noqa: F401
    import repro.network.topo  # noqa: F401


def run_kernel(name: str, repeats: int = 3) -> KernelResult:
    """Time one kernel; the first run's work/check values are recorded
    (they are deterministic, so later repeats must match)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    _warm_imports()
    fn = KERNELS[name]
    best = float("inf")
    total = 0.0
    work, unit, check = 0, "", 0.0
    for rep in range(repeats):
        start = time.perf_counter()
        w, unit, c = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
        if rep == 0:
            work, check = w, c
        elif (w, c) != (work, check):
            raise AssertionError(
                f"kernel {name} is nondeterministic: "
                f"({w}, {c}) != ({work}, {check})")
    return KernelResult(name=name, wall_s=best, mean_s=total / repeats,
                        repeats=repeats, work=work, work_unit=unit,
                        check=check)


def _bench_unit(config: Dict[str, str], seed: int) -> Tuple[float, int, str,
                                                            float]:
    """One (kernel, repeat) timing unit as a sweep task (picklable).

    ``_warm_imports`` runs before the clock starts; pool workers persist
    across units, so each worker pays the import chain once.
    """
    _warm_imports()
    fn = KERNELS[config["kernel"]]
    start = time.perf_counter()
    work, unit, check = fn()
    elapsed = time.perf_counter() - start
    return elapsed, work, unit, check


class BenchInterrupted(KeyboardInterrupt):
    """Ctrl-C mid-bench; carries the kernels that did finish, so the CLI
    can flush a ``"partial": true`` payload before exiting 130."""

    def __init__(self, results: List[KernelResult]):
        super().__init__("bench interrupted")
        self.results = results


def run_bench(repeats: int = 3,
              kernels: Optional[Sequence[str]] = None,
              jobs: int = 1,
              supervise=None) -> List[KernelResult]:
    """Time every kernel ``repeats`` times, optionally over ``jobs`` workers.

    The (kernel, repeat) units fan out through the sweep scheduler; the
    deterministic work/check values are identical at any jobs level (and
    asserted to be), but wall times are host measurements — running
    timing units concurrently trades timing fidelity for throughput, so
    keep ``jobs=1`` when the walls themselves are the deliverable.

    A :class:`~repro.parallel.supervise.SuperviseConfig` routes even
    ``jobs=1`` through the sweep scheduler, which journals every
    (kernel, repeat) unit and makes the bench resumable — note that
    replayed units reuse the interrupted run's wall times, so a resumed
    bench is *reproducible*, not re-measured.
    """
    names = list(kernels) if kernels else list(KERNELS)
    unknown = [n for n in names if n not in KERNELS]
    if unknown:
        raise ValueError(f"unknown kernels {unknown}; have {list(KERNELS)}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if jobs <= 1 and supervise is None:
        results: List[KernelResult] = []
        try:
            for name in names:
                results.append(run_kernel(name, repeats=repeats))
        except KeyboardInterrupt:
            raise BenchInterrupted(results)
        return results

    from repro.parallel import run_sweep

    units = [((name, rep), {"kernel": name})
             for name in names for rep in range(repeats)]
    # Timings must always be measured, never replayed: no cache, and no
    # observability capture inside the timed region.
    outcomes = run_sweep("bench", units, _bench_unit, jobs=jobs,
                         cache=None, capture=False, supervise=supervise)
    by_kernel: Dict[str, List[Tuple[float, int, str, float]]] = {}
    for outcome in outcomes:
        by_kernel.setdefault(outcome.key[0], []).append(outcome.value)
    results = []
    for name in names:
        runs = by_kernel[name]
        work, unit, check = runs[0][1], runs[0][2], runs[0][3]
        for elapsed, w, u, c in runs[1:]:
            if (w, c) != (work, check):
                raise AssertionError(
                    f"kernel {name} is nondeterministic: "
                    f"({w}, {c}) != ({work}, {check})")
        walls = [run[0] for run in runs]
        results.append(KernelResult(
            name=name, wall_s=min(walls), mean_s=sum(walls) / len(walls),
            repeats=repeats, work=work, work_unit=unit, check=check))
    return results


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def bench_payload(results: Sequence[KernelResult],
                  quick: bool = False, partial: bool = False) -> dict:
    """The ``BENCH_perf.json`` document.  ``partial`` marks a payload
    flushed after an interrupt — some kernels are missing, and no tool
    should treat it as a comparable baseline."""
    kernels = {}
    for r in results:
        entry = {
            "wall_s": r.wall_s,
            "mean_s": r.mean_s,
            "repeats": r.repeats,
            "work": r.work,
            "work_unit": r.work_unit,
            f"{r.work_unit}_per_s": r.rate,
            "check": r.check,
        }
        speedup = r.speedup_vs_seed()
        if speedup is not None:
            entry["speedup_vs_seed"] = speedup
        kernels[r.name] = entry
    payload = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "kernels": kernels,
        "seed_baseline": SEED_BASELINE,
    }
    if partial:
        payload["partial"] = True
    return payload


def write_bench_json(path: str, results: Sequence[KernelResult],
                     quick: bool = False, partial: bool = False) -> dict:
    from repro.atomicio import atomic_write_text

    payload = bench_payload(results, quick=quick, partial=partial)
    atomic_write_text(
        path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def format_bench_table(results: Sequence[KernelResult]) -> str:
    from repro.bench.report import format_table

    rows = []
    for r in results:
        speedup = r.speedup_vs_seed()
        rows.append([
            r.name,
            f"{r.wall_s:.3f}",
            f"{r.rate:,.0f} {r.work_unit}/s",
            f"{r.check:.4g}",
            "-" if speedup is None else f"{speedup:.2f}x",
        ])
    return format_table(
        ["kernel", "best wall (s)", "throughput", "check", "vs seed"],
        rows, title="Hot-kernel performance")
