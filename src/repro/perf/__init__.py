"""repro.perf — the performance-regression harness.

Times the hot kernels behind the figures (trace replay and the DES
network stack) at fixed scaled sizes and writes ``BENCH_perf.json`` so
every PR has a throughput trajectory to beat.  See
:mod:`repro.perf.harness` for the kernel definitions and
:mod:`repro.perf.baseline` for the recorded seed baseline.
"""

from repro.perf.baseline import SEED_BASELINE
from repro.perf.compare import (
    KernelDelta,
    compare_payloads,
    format_compare_table,
    load_payload,
)
from repro.perf.harness import (
    KERNELS,
    KernelResult,
    SCHEMA,
    bench_payload,
    format_bench_table,
    run_bench,
    run_kernel,
    write_bench_json,
)

__all__ = [
    "KERNELS",
    "KernelDelta",
    "KernelResult",
    "SCHEMA",
    "SEED_BASELINE",
    "bench_payload",
    "compare_payloads",
    "format_bench_table",
    "format_compare_table",
    "load_payload",
    "run_bench",
    "run_kernel",
    "write_bench_json",
]
