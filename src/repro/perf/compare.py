"""Compare two ``BENCH_perf.json`` documents: the perf trajectory gate.

``repro bench --compare OLD.json NEW.json`` prints a per-kernel delta
table (best wall and throughput) and exits non-zero when any kernel's
wall time regressed by more than ``--threshold`` (default 10%), when a
kernel disappeared, or when a kernel's deterministic *check* value
drifted — a check drift means the kernel's semantics changed, so its
wall times are no longer comparable at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.harness import SCHEMA


def load_payload(path: str) -> dict:
    """Read one bench document, insisting on the known schema."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{path}: schema {schema!r}, expected {SCHEMA!r}")
    if not isinstance(payload.get("kernels"), dict):
        raise ValueError(f"{path}: payload lacks a kernels table")
    return payload


@dataclass(frozen=True)
class KernelDelta:
    """One kernel's movement between two bench documents."""

    name: str
    old_wall_s: Optional[float]
    new_wall_s: Optional[float]
    old_rate: Optional[float]
    new_rate: Optional[float]
    check_drift: bool

    @property
    def wall_change(self) -> Optional[float]:
        """Relative wall change (positive = slower) or None if unpaired."""
        if not self.old_wall_s or self.new_wall_s is None:
            return None
        return (self.new_wall_s - self.old_wall_s) / self.old_wall_s

    def regressed(self, threshold: float) -> bool:
        if self.new_wall_s is None or self.check_drift:
            return True  # vanished or incomparable counts as a regression
        change = self.wall_change
        return change is not None and change > threshold


def compare_payloads(old: dict, new: dict,
                     threshold: float = 0.10) -> Tuple[List[KernelDelta],
                                                       List[KernelDelta]]:
    """(all deltas sorted by name, the subset that regressed)."""
    old_kernels: Dict[str, dict] = old["kernels"]
    new_kernels: Dict[str, dict] = new["kernels"]
    deltas = []
    for name in sorted(set(old_kernels) | set(new_kernels)):
        before = old_kernels.get(name)
        after = new_kernels.get(name)

        def rate(entry: Optional[dict]) -> Optional[float]:
            if entry is None:
                return None
            unit = entry.get("work_unit", "")
            return entry.get(f"{unit}_per_s")

        drift = (before is not None and after is not None
                 and before.get("check") != after.get("check"))
        deltas.append(KernelDelta(
            name=name,
            old_wall_s=before.get("wall_s") if before else None,
            new_wall_s=after.get("wall_s") if after else None,
            old_rate=rate(before),
            new_rate=rate(after),
            check_drift=drift))
    regressions = [d for d in deltas if d.regressed(threshold)]
    return deltas, regressions


def format_compare_table(deltas: Sequence[KernelDelta],
                         threshold: float) -> str:
    from repro.bench.report import format_table

    def pct(value: Optional[float]) -> str:
        return "-" if value is None else f"{value * 100.0:+.1f}%"

    def num(value: Optional[float], fmt: str) -> str:
        return "-" if value is None else format(value, fmt)

    rows = []
    for d in deltas:
        if d.check_drift:
            verdict = "CHECK DRIFT"
        elif d.new_wall_s is None:
            verdict = "MISSING"
        elif d.old_wall_s is None:
            verdict = "new"
        elif d.regressed(threshold):
            verdict = "REGRESSED"
        else:
            verdict = "ok"
        rate_change = None
        if d.old_rate and d.new_rate is not None:
            rate_change = (d.new_rate - d.old_rate) / d.old_rate
        rows.append([
            d.name,
            num(d.old_wall_s, ".3f"),
            num(d.new_wall_s, ".3f"),
            pct(d.wall_change),
            pct(rate_change),
            verdict,
        ])
    return format_table(
        ["kernel", "old wall (s)", "new wall (s)", "wall delta",
         "throughput delta", "verdict"],
        rows,
        title=f"Bench comparison (threshold {threshold * 100.0:.0f}%)")
