"""Atomic artifact writes: temp file in the target dir, fsync, rename.

Every artifact the CLI leaves behind — traces, metrics dumps, timelines,
bench payloads, HTML dashboards, chaos reports, journals' sidecar
payloads — goes through one of these helpers so a crash (or an OOM kill,
or a Ctrl-C) can never leave a truncated, half-written file where a
consumer expects a complete one.  The recipe is the classic one the
result cache already used:

* write to a uniquely-named temp file *in the same directory* (so the
  final rename cannot cross filesystems);
* flush and ``fsync`` so the bytes are durable before the name is;
* ``os.replace`` onto the destination — atomic on POSIX, so readers see
  either the old complete file or the new complete one, never a mix.

``tempfile.mkstemp`` opens the temp file with ``O_EXCL``, so concurrent
writers of the same destination each get their own temp file and the
last ``os.replace`` wins whole-file.
"""

from __future__ import annotations

import os
import tempfile


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` atomically (temp + fsync + replace)."""
    target = os.path.abspath(path)
    directory = os.path.dirname(target)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already renamed or gone
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8",
                      fsync: bool = True) -> None:
    """Write ``text`` to ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)
