"""The user-level point-to-point communication API.

A :class:`CommWorld` owns one network plane of a fabric: per node it builds
the link interface and PIO driver, computes source routes, and exposes
send/receive/exchange as simulation processes.  Because communication is
pure user level (the CPU's MMU is involved in every copy), there are no
system calls to model — the driver constants are the whole software stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.network.link import LinkConfig
from repro.network.crossbar import CrossbarConfig
from repro.network.message import Message
from repro.network.routing import RouteTable
from repro.network.topology import Fabric, node_key
from repro.ni.driver import DriverConfig, PioDriver
from repro.ni.interface import LinkInterface, LinkInterfaceConfig
from repro.obs import OBS
from repro.sim.engine import Simulator
from repro.sim.process import Process


@dataclass
class Endpoint:
    """One node's presence on the plane: link interface + driver."""

    node_id: int
    ni: LinkInterface
    driver: PioDriver


class CommWorld:
    """All endpoints of one network plane plus route computation."""

    fidelity = "flit"

    def __init__(self, sim: Simulator, fabric: Fabric, plane: int = 0,
                 ni_config: LinkInterfaceConfig = LinkInterfaceConfig(),
                 driver_config: DriverConfig = DriverConfig()):
        self.sim = sim
        self.fabric = fabric
        self.plane = plane
        self.ni_config = ni_config
        self.driver_config = driver_config
        self.registry: Dict[int, Message] = {}
        self.routes = RouteTable(fabric.graph)
        #: Route provider consulted by :meth:`make_message`; normally the
        #: RouteTable itself, swapped for an
        #: :class:`~repro.network.qos.AdaptiveRouter` by
        #: :meth:`enable_adaptive`.
        self.router = self.routes
        self.endpoints: Dict[int, Endpoint] = {}
        for node in fabric.node_ids():
            attachment = fabric.attachment(node, plane)
            ni = LinkInterface(sim, ni_config, attachment.tx_link,
                               attachment.rx_fifo, name=f"n{node}.ni{plane}")
            driver = PioDriver(sim, ni, driver_config, self.registry,
                               name=f"n{node}.drv{plane}")
            self.endpoints[node] = Endpoint(node, ni, driver)

    # -- message construction ---------------------------------------------------

    def make_message(self, src: int, dst: int, nbytes: int,
                     tag: Optional[object] = None,
                     sclass: int = 0) -> Message:
        if src == dst:
            raise ValueError(f"node {src} cannot send to itself over the network")
        route = self.router.route_bytes(node_key(src, self.plane),
                                        node_key(dst, self.plane))
        return Message(source=src, dest=dst, payload_bytes=nbytes,
                       route=tuple(route), tag=tag, sclass=sclass)

    def enable_adaptive(self, config=None):
        """Swap congestion-aware routing in front of the route table.

        Future :meth:`make_message` calls route around output ports the
        :class:`~repro.network.qos.AdaptiveRouter` judges congested.
        Returns the router (for its ``reroutes``/``fallbacks`` counters).
        """
        from repro.network.qos import AdaptiveConfig, AdaptiveRouter

        router = AdaptiveRouter(self.routes, self.fabric,
                                config or AdaptiveConfig())
        self.router = router
        return router

    def endpoint(self, node: int) -> Endpoint:
        try:
            return self.endpoints[node]
        except KeyError:
            raise KeyError(f"node {node} is not part of this world") from None

    def node_ids(self) -> List[int]:
        return sorted(self.endpoints)

    def far_pair(self) -> Tuple[int, int]:
        """The lowest node id and its most distant peer (same rule as
        :meth:`repro.network.topo.flow.FlowWorld.far_pair`, so the two
        fidelity tiers measure the same pair)."""
        import networkx as nx

        nodes = self.node_ids()
        src = nodes[0]
        lengths = nx.single_source_shortest_path_length(
            self.fabric.graph, node_key(src, self.plane))
        best, best_len = None, -1
        for node in nodes[1:]:
            length = lengths.get(node_key(node, self.plane))
            if length is not None and length > best_len:
                best, best_len = node, length
        if best is None:
            raise ValueError(f"node {src} reaches no peer on plane "
                             f"{self.plane}")
        return src, best

    # -- process factories --------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int,
             tag: Optional[object] = None, sclass: int = 0) -> Process:
        message = self.make_message(src, dst, nbytes, tag=tag, sclass=sclass)
        return self.sim.process(self.endpoint(src).driver.send_message(message))

    def recv(self, node: int) -> Process:
        return self.sim.process(self.endpoint(node).driver.receive_message())

    def exchange(self, node: int, peer: int, nbytes: int) -> Process:
        """Bidirectional: ``node`` sends to ``peer`` while receiving from it."""
        message = self.make_message(node, peer, nbytes)
        return self.sim.process(
            self.endpoint(node).driver.bidirectional_exchange(message))

    # -- measurement helpers (run the simulation to completion) ----------------------

    def ping_pong(self, a: int, b: int, nbytes: int, reps: int = 4,
                  warmup: int = 1) -> List[float]:
        """Round-trip times (ns) for ``reps`` measured ping-pongs."""
        times: List[float] = []

        def bench():
            for rep in range(warmup + reps):
                start = self.sim.now
                recv_b = self.recv(b)
                yield self.send(a, b, nbytes)
                yield recv_b
                recv_a = self.recv(a)
                yield self.send(b, a, nbytes)
                yield recv_a
                if rep >= warmup:
                    times.append(self.sim.now - start)

        with OBS.label_scope(bench="ping_pong", nbytes=nbytes):
            proc = self.sim.process(bench())
            self.sim.run_until_complete(proc)
        return times

    def one_way_latency_ns(self, a: int, b: int, nbytes: int,
                           reps: int = 4) -> float:
        """Half the mean ping-pong time — the paper's latency metric."""
        times = self.ping_pong(a, b, nbytes, reps=reps)
        return sum(times) / len(times) / 2.0

    def send_gap_ns(self, a: int, b: int, nbytes: int, count: int = 16) -> float:
        """Mean inter-send time at saturation (the LogP g parameter).

        ``count`` messages are pushed back-to-back; the receiver drains
        continuously.  The gap is the steady-state per-message time at the
        *sender*, i.e. message-sending time at the network saturation point
        (Figure 10).
        """
        if count < 2:
            raise ValueError("need at least 2 messages to measure a gap")
        finished: List[float] = []

        def sender():
            for _ in range(count):
                message = self.make_message(a, b, nbytes)
                yield self.sim.process(
                    self.endpoint(a).driver.send_message(message))
                finished.append(self.sim.now)

        def receiver():
            for _ in range(count):
                yield self.recv(b)

        with OBS.label_scope(bench="send_gap", nbytes=nbytes):
            sender_proc = self.sim.process(sender())
            receiver_proc = self.sim.process(receiver())
            self.sim.run_until_complete(receiver_proc)
        if not sender_proc.finished:
            raise AssertionError("sender did not finish")
        # Skip the first message (cold route) for the steady-state gap.
        return (finished[-1] - finished[0]) / (count - 1)

    def unidirectional_mb_s(self, a: int, b: int, nbytes: int,
                            count: int = 8) -> float:
        """Streaming bandwidth for back-to-back ``nbytes`` messages."""
        start = self.sim.now
        received: List[float] = []

        def sender():
            for _ in range(count):
                message = self.make_message(a, b, nbytes)
                yield self.sim.process(
                    self.endpoint(a).driver.send_message(message))

        def receiver():
            for _ in range(count):
                yield self.recv(b)
                received.append(self.sim.now)

        with OBS.label_scope(bench="unidirectional", nbytes=nbytes):
            self.sim.process(sender())
            receiver_proc = self.sim.process(receiver())
            self.sim.run_until_complete(receiver_proc)
        elapsed = received[-1] - start
        return count * nbytes * 1e3 / elapsed if elapsed > 0 else 0.0

    def bidirectional_mb_s(self, a: int, b: int, nbytes: int,
                           rounds: int = 4) -> float:
        """Aggregate bandwidth when both nodes send and receive at once."""
        start = self.sim.now

        def side(me: int, peer: int):
            for _ in range(rounds):
                message = self.make_message(me, peer, nbytes)
                yield self.sim.process(
                    self.endpoint(me).driver.bidirectional_exchange(message))

        with OBS.label_scope(bench="bidirectional", nbytes=nbytes):
            proc_a = self.sim.process(side(a, b))
            proc_b = self.sim.process(side(b, a))
            self.sim.run_until_complete(proc_a)
            if not proc_b.finished:
                self.sim.run_until_complete(proc_b)
        elapsed = self.sim.now - start
        total_bytes = 2 * rounds * nbytes
        return total_bytes * 1e3 / elapsed if elapsed > 0 else 0.0


def build_cluster_world(n_nodes: int = 8,
                        fifo_words: int = 32,
                        link_config: LinkConfig = LinkConfig(),
                        crossbar_config: CrossbarConfig = CrossbarConfig(),
                        driver_config: DriverConfig = DriverConfig(),
                        plane: int = 0,
                        ) -> Tuple[Simulator, CommWorld]:
    """A fresh simulator plus an 8-node-cluster CommWorld.

    Keeps the fabric's node receive FIFOs consistent with the link-interface
    configuration (the ablation knob for Figure 12).
    """
    from repro.network.topology import cluster_spec

    return build_topology_world(cluster_spec(n_nodes=n_nodes),
                                fifo_words=fifo_words,
                                link_config=link_config,
                                crossbar_config=crossbar_config,
                                driver_config=driver_config, plane=plane)


def build_topology_world(spec,
                         fifo_words: int = 32,
                         link_config: LinkConfig = LinkConfig(),
                         crossbar_config: CrossbarConfig = CrossbarConfig(),
                         driver_config: DriverConfig = DriverConfig(),
                         plane: int = 0):
    """A measurement world for any :class:`TopologySpec`, at its fidelity.

    Returns ``(sim, world)``.  At flit fidelity the world is a
    :class:`CommWorld` over a fully simulated fabric (the node receive
    FIFOs track ``fifo_words`` like :func:`build_cluster_world`); at flow
    fidelity it is a :class:`~repro.network.topo.flow.FlowWorld` and
    ``sim`` is ``None`` — both expose the same measurement surface.
    """
    from repro.network.topo import FlowWorld, build_fabric

    if spec.fidelity == "flow":
        world = FlowWorld(spec, link_config=link_config,
                          crossbar_config=crossbar_config,
                          driver_config=driver_config,
                          fifo_words=fifo_words, plane=plane)
        return None, world
    sim = Simulator()
    ni_config = LinkInterfaceConfig(fifo_words=fifo_words)
    fabric = build_fabric(sim, spec, link_config=link_config,
                          crossbar_config=crossbar_config,
                          node_rx_fifo_bytes=ni_config.fifo_bytes)
    world = CommWorld(sim, fabric, plane=plane, ni_config=ni_config,
                      driver_config=driver_config)
    return sim, world
