"""Sliding-window (go-back-N) reliable delivery.

The stop-and-wait protocol in :mod:`repro.msg.reliable` is correct but
idles the links for a full round trip per message, capping goodput far
below the link's bandwidth-delay product for small messages.  This module
pipelines: each (sender, receiver) flow keeps up to ``window`` sequence-
numbered messages in flight, the receiver acknowledges cumulatively, and a
timeout on the oldest unacked message retransmits the whole outstanding
window (go-back-N — the receiver discards out-of-order arrivals, so no
reassembly buffers are needed, matching the software-only PowerMANNA
stack).

Robustness upgrades over stop-and-wait:

* **Adaptive timeout** — Jacobson/Karels SRTT + RTTVAR estimation from
  ack round trips (Karn's rule: retransmitted messages contribute no
  samples), plus a wire-time allowance for the bytes currently in flight.
* **Exponential backoff with jitter** on consecutive timeouts, so a
  congested or faulted path is not hammered in lockstep.
* **Link-down detection** — after ``link_down_after`` consecutive
  timeouts of the same base sequence the flow declares the path suspect
  and calls :meth:`RouteTable.invalidate`, forcing the next retransmission
  to recompute its source route; combined with the fault controller
  marking failed edges, traffic reroutes through surviving crossbar paths
  and the flow completes instead of deadlocking.
* **Both directions draw faults** — data *and* acks are corrupted by the
  built-in injector (``error_rate``/``ack_error_rate``) and by the
  cross-layer :mod:`repro.faults` engine (CRC verdicts via
  ``message.crc_ok``).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.faults import FAULTS
from repro.msg.api import CommWorld
from repro.msg.reliable import Delivery, DeliveryError
from repro.network.routing import NoRouteError
from repro.obs import OBS
from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import Process
from repro.sim.resources import FifoStore, Signal
from repro.sim.stats import Counter


@dataclass(frozen=True)
class SlidingWindowConfig:
    """Protocol parameters.

    Attributes:
        window: max unacked messages per (src, dst) flow.
        error_rate: probability a data transmission is corrupted on the
            wire (CRC-detected and discarded at the receiver).
        ack_error_rate: same for acks; ``None`` mirrors ``error_rate``.
        ack_bytes: size of an acknowledgement message.
        initial_rto_ns: retransmission timeout before any RTT sample.
        min_rto_ns / max_rto_ns: clamp on the adaptive timeout.
        rtt_alpha / rtt_beta: SRTT / RTTVAR gains (Jacobson's 1/8, 1/4).
        backoff: timeout multiplier per consecutive timeout.
        jitter: uniform random timeout stretch in [1, 1 + jitter].
        max_retries: consecutive-timeout bound per base sequence before
            the flow fails with :class:`DeliveryError`.
        link_down_after: consecutive timeouts before the flow suspects
            the path and invalidates the route cache (reroute trigger).
        seed: injector / jitter seed (deterministic runs).
    """

    window: int = 8
    error_rate: float = 0.0
    ack_error_rate: Optional[float] = None
    ack_bytes: int = 8
    initial_rto_ns: float = 40_000.0
    min_rto_ns: float = 8_000.0
    max_rto_ns: float = 4_000_000.0
    rtt_alpha: float = 0.125
    rtt_beta: float = 0.25
    backoff: float = 2.0
    jitter: float = 0.1
    max_retries: int = 30
    link_down_after: int = 3
    seed: int = 99

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must hold at least one message")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error rate must be in [0, 1)")
        if self.ack_error_rate is not None and not (
                0.0 <= self.ack_error_rate < 1.0):
            raise ValueError("ack error rate must be in [0, 1)")
        if self.initial_rto_ns <= 0 or self.min_rto_ns <= 0:
            raise ValueError("timeouts must be positive")
        if self.max_rto_ns < self.min_rto_ns:
            raise ValueError("max_rto_ns below min_rto_ns")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.jitter < 0.0:
            raise ValueError("jitter must be nonnegative")
        if self.max_retries < 1:
            raise ValueError("need at least one retry")
        if self.link_down_after < 1:
            raise ValueError("link_down_after must be >= 1")

    @property
    def effective_ack_error_rate(self) -> float:
        return (self.error_rate if self.ack_error_rate is None
                else self.ack_error_rate)


@dataclass
class _SendRequest:
    nbytes: int
    done: object  # Event firing with the sequence (or an exception)


@dataclass
class _InFlight:
    seq: int
    nbytes: int
    request: _SendRequest
    sent_at: float = 0.0
    retransmitted: bool = False


@dataclass
class _Flow:
    src: int
    dst: int
    wakeup: Signal
    ack_signal: Signal
    pending: Deque[_SendRequest] = field(default_factory=deque)
    inflight: Deque[_InFlight] = field(default_factory=deque)
    next_seq: int = 0
    base: int = 0
    retries: int = 0
    srtt_ns: Optional[float] = None
    rttvar_ns: float = 0.0
    rto_ns: float = 0.0
    last_route: Optional[Tuple[int, ...]] = None
    failed: bool = False


class SlidingWindowChannel:
    """Go-back-N ack/retransmit protocol over one CommWorld plane."""

    def __init__(self, world: CommWorld,
                 config: SlidingWindowConfig = SlidingWindowConfig()):
        self.world = world
        self.sim: Simulator = world.sim
        self.config = config
        self._rng = random.Random(config.seed)
        self._ack_rng = random.Random(config.seed ^ 0x5DEECE66D)
        self.stats = Counter("sliding")
        self._flows: Dict[Tuple[int, int], _Flow] = {}
        self._expected: Dict[Tuple[int, int], int] = {}
        self._deliveries: Dict[int, FifoStore] = {}
        for node in world.fabric.node_ids():
            self._deliveries[node] = FifoStore(self.sim,
                                               name=f"slw{node}.deliveries")
            self.sim.process(self._pump(node))
        if OBS.enabled and OBS.timeline.enabled:
            probe = OBS.timeline.probe
            probe(self.sim, "sliding.inflight",
                  lambda: float(sum(len(f.inflight)
                                    for f in self._flows.values())))
            probe(self.sim, "sliding.rto_ns",
                  lambda: max((f.rto_ns for f in self._flows.values()),
                              default=0.0))

    # -- application API ----------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int) -> Process:
        """Process: deliver ``nbytes`` reliably; finishes when acked.

        Raises :class:`DeliveryError` (in the returned process) when the
        flow exhausts its retries or loses every route to ``dst``.
        """
        return self.sim.process(self._await(self._submit(src, dst, nbytes),
                                            raise_errors=True))

    def send_outcome(self, src: int, dst: int, nbytes: int) -> Process:
        """Like :meth:`send`, but resolves to ``("ok", seq)`` or
        ``("failed", error)`` instead of raising — chaos harness use."""
        return self.sim.process(self._await(self._submit(src, dst, nbytes),
                                            raise_errors=False))

    def recv(self, node: int):
        """Event firing with the next :class:`Delivery` for ``node``."""
        return self._deliveries[node].get()

    # -- sender side --------------------------------------------------------

    def _submit(self, src: int, dst: int, nbytes: int) -> _SendRequest:
        if src == dst:
            raise ValueError(f"node {src} cannot send to itself")
        flow = self._flow(src, dst)
        request = _SendRequest(nbytes, self.sim.event(name="slw.send"))
        flow.pending.append(request)
        flow.wakeup.fire()
        return request

    def _await(self, request: _SendRequest, raise_errors: bool):
        result = yield request.done
        if isinstance(result, Exception):
            if raise_errors:
                raise result
            return ("failed", result)
        return result if raise_errors else ("ok", result)

    def _flow(self, src: int, dst: int) -> _Flow:
        key = (src, dst)
        flow = self._flows.get(key)
        if flow is None:
            flow = _Flow(src, dst,
                         wakeup=Signal(self.sim, name=f"slw{key}.wakeup"),
                         ack_signal=Signal(self.sim, name=f"slw{key}.ack"))
            flow.rto_ns = self.config.initial_rto_ns
            self._flows[key] = flow
            self.sim.process(self._flow_proc(flow))
        return flow

    def _flow_proc(self, flow: _Flow):
        cfg = self.config
        while True:
            # Top up the window from the pending queue.
            while flow.pending and len(flow.inflight) < cfg.window:
                request = flow.pending.popleft()
                entry = _InFlight(flow.next_seq, request.nbytes, request)
                flow.next_seq += 1
                flow.inflight.append(entry)
                if not self._transmit(flow, entry, retransmit=False):
                    break
            if flow.failed:
                flow.failed = False
                continue
            if not flow.inflight:
                yield flow.wakeup.wait()
                continue

            base_before = flow.base
            timer = self.sim.timeout(self._timeout_ns(flow))
            fired = yield self.sim.any_of([flow.ack_signal.wait(), timer,
                                           flow.wakeup.wait()])
            if flow.base > base_before or not flow.inflight:
                flow.retries = 0
                continue
            if timer not in fired:
                continue  # woken by a new request; refill the window

            # Timeout on the oldest unacked message.
            flow.retries += 1
            self.stats.incr("timeouts")
            if OBS.enabled:
                OBS.metrics.incr("sliding.timeouts")
            if flow.retries > cfg.max_retries:
                self._fail_flow(flow, DeliveryError(
                    f"{flow.src}->{flow.dst} seq {flow.base}: no ack after "
                    f"{cfg.max_retries} consecutive timeouts"))
                continue
            if flow.retries == cfg.link_down_after:
                # The path looks dead: drop cached routes so the coming
                # retransmissions recompute against current failure state.
                self.world.routes.invalidate()
                self.stats.incr("link_down")
                if OBS.enabled:
                    OBS.metrics.incr("faults.link_down",
                                     flow=f"{flow.src}->{flow.dst}")
            # Go-back-N: retransmit the whole outstanding window in order.
            for entry in list(flow.inflight):
                if not self._transmit(flow, entry, retransmit=True):
                    break
            if flow.failed:
                flow.failed = False

    def _transmit(self, flow: _Flow, entry: _InFlight,
                  retransmit: bool) -> bool:
        cfg = self.config
        corrupted = self._rng.random() < cfg.error_rate
        tag = {"slw": {"kind": "data", "seq": entry.seq, "src": flow.src,
                       "dst": flow.dst, "corrupt": corrupted}}
        try:
            message = self.world.make_message(flow.src, flow.dst,
                                              entry.nbytes, tag=tag)
        except NoRouteError as exc:
            self._fail_flow(flow, DeliveryError(
                f"{flow.src}->{flow.dst}: no surviving route ({exc})"))
            return False
        route = tuple(message.route)
        if flow.last_route is not None and route != flow.last_route:
            self.stats.incr("reroutes")
            if OBS.enabled:
                OBS.metrics.incr("faults.reroutes",
                                 flow=f"{flow.src}->{flow.dst}")
                span = OBS.tracer.begin(
                    "faults.reroute", f"n{flow.src}", self.sim.now,
                    category="faults", message=message.message_id,
                    seq=entry.seq)
                OBS.tracer.end(span, self.sim.now)
        flow.last_route = route
        entry.sent_at = self.sim.now
        entry.retransmitted = entry.retransmitted or retransmit
        self.stats.incr("transmissions")
        if retransmit:
            self.stats.incr("retransmissions")
        if corrupted:
            self.stats.incr("corrupted")
        if OBS.enabled:
            OBS.metrics.incr("sliding.transmissions")
            if retransmit:
                OBS.metrics.incr("sliding.retransmissions")
                span = OBS.tracer.begin(
                    "faults.retransmit", f"n{flow.src}", self.sim.now,
                    category="faults", message=message.message_id,
                    seq=entry.seq, attempt=flow.retries)
                OBS.tracer.end(span, self.sim.now)
            if corrupted:
                OBS.metrics.incr("sliding.corrupted")
        driver = self.world.endpoint(flow.src).driver
        self.sim.process(driver.send_message(message))
        return True

    def _timeout_ns(self, flow: _Flow) -> float:
        cfg = self.config
        outstanding = sum(e.nbytes + cfg.ack_bytes for e in flow.inflight)
        wire_ns = (outstanding * 1e3
                   / self.world.fabric.link_config.bandwidth_mb_s)
        rto = max(cfg.min_rto_ns, min(cfg.max_rto_ns, flow.rto_ns))
        scaled = (rto + 2.0 * wire_ns) * (
            cfg.backoff ** min(flow.retries, 12))
        jittered = scaled * (1.0 + cfg.jitter * self._rng.random())
        # max_rto_ns is a hard ceiling on the armed timer: the backoff
        # multiplier, the in-flight drain allowance, and the jitter factor
        # all scale *within* it, never past it.
        return min(jittered, cfg.max_rto_ns)

    def _fail_flow(self, flow: _Flow, error: DeliveryError) -> None:
        self.stats.incr("failed_flows")
        if OBS.enabled:
            OBS.metrics.incr("sliding.failed_flows",
                             flow=f"{flow.src}->{flow.dst}")
        for entry in flow.inflight:
            self.stats.incr("undeliverable")
            entry.request.done.trigger(error)
        for request in flow.pending:
            self.stats.incr("undeliverable")
            request.done.trigger(error)
        flow.inflight.clear()
        flow.pending.clear()
        flow.retries = 0
        flow.failed = True

    def _apply_ack(self, flow: _Flow, upto: int) -> None:
        cfg = self.config
        progressed = False
        while flow.inflight and flow.inflight[0].seq <= upto:
            entry = flow.inflight.popleft()
            progressed = True
            self.stats.incr("acked")
            if OBS.enabled:
                OBS.metrics.incr("sliding.acked")
            if not entry.retransmitted:
                # Karn's rule: only first-transmission acks sample the RTT.
                sample = self.sim.now - entry.sent_at
                if flow.srtt_ns is None:
                    flow.srtt_ns = sample
                    flow.rttvar_ns = sample / 2.0
                else:
                    flow.rttvar_ns = ((1.0 - cfg.rtt_beta) * flow.rttvar_ns
                                      + cfg.rtt_beta
                                      * abs(flow.srtt_ns - sample))
                    flow.srtt_ns = ((1.0 - cfg.rtt_alpha) * flow.srtt_ns
                                    + cfg.rtt_alpha * sample)
                flow.rto_ns = flow.srtt_ns + 4.0 * flow.rttvar_ns
            entry.request.done.trigger(entry.seq)
        if progressed:
            flow.base = upto + 1
            flow.retries = 0
            flow.ack_signal.fire()

    # -- receiver side ------------------------------------------------------

    def _pump(self, node: int):
        driver = self.world.endpoint(node).driver
        while True:
            message = yield self.sim.process(driver.receive_message())
            meta = (message.tag or {}).get("slw") if isinstance(
                message.tag, dict) else None
            if meta is None:
                raise SimulationError(
                    f"node {node}: non-protocol message on a sliding-window "
                    "plane")
            corrupt = bool(meta.get("corrupt")) or not message.crc_ok

            if meta["kind"] == "ack":
                if corrupt:
                    # The CRC flags the ack; the sender's timeout recovers.
                    self.stats.incr("acks_discarded")
                    if OBS.enabled:
                        OBS.metrics.incr("sliding.acks_discarded")
                    continue
                flow = self._flows.get((meta["src"], meta["dst"]))
                if flow is not None:
                    self._apply_ack(flow, meta["upto"])
                continue

            # Data message.
            src, seq = meta["src"], meta["seq"]
            if FAULTS.enabled and FAULTS.engine.node_down(node):
                # Crashed node: the hardware drains, software is gone —
                # nothing is delivered and nothing is acknowledged.
                self.stats.incr("dropped_at_crashed_node")
                if OBS.enabled:
                    OBS.metrics.incr("faults.crashed_node_drops", node=node)
                continue
            if corrupt:
                self.stats.incr("discarded")
                if OBS.enabled:
                    OBS.metrics.incr("sliding.discarded")
                continue
            key = (src, node)
            expected = self._expected.get(key, 0)
            if seq == expected:
                self._expected[key] = expected + 1
                self._deliveries[node].try_put(Delivery(
                    source=src, nbytes=message.payload_bytes, sequence=seq,
                    delivered_at=message.delivered_at or self.sim.now))
                self.stats.incr("delivered")
                if OBS.enabled:
                    OBS.metrics.incr("sliding.delivered")
            elif seq < expected:
                self.stats.incr("duplicates")
            else:
                # Go-back-N: a gap means an earlier message was lost; the
                # cumulative ack below tells the sender where to resume.
                self.stats.incr("out_of_order")
                if OBS.enabled:
                    OBS.metrics.incr("sliding.out_of_order")
            upto = self._expected.get(key, 0) - 1
            if upto >= 0:
                self._send_ack(node, src, upto)

    def _send_ack(self, node: int, src: int, upto: int) -> None:
        cfg = self.config
        corrupted = self._ack_rng.random() < cfg.effective_ack_error_rate
        tag = {"slw": {"kind": "ack", "src": src, "dst": node, "upto": upto,
                       "corrupt": corrupted}}
        try:
            ack = self.world.make_message(node, src, cfg.ack_bytes, tag=tag)
        except NoRouteError:
            self.stats.incr("acks_unroutable")
            return
        self.stats.incr("acks_sent")
        if corrupted:
            self.stats.incr("acks_corrupted")
        self.sim.process(
            self.world.endpoint(node).driver.send_message(ack))

    # -- measurement --------------------------------------------------------

    def goodput_mb_s(self, src: int, dst: int, nbytes: int,
                     count: int = 8) -> float:
        """Reliable streaming goodput (payload delivered over elapsed)."""
        start = self.sim.now
        received: list[float] = []

        def sender():
            sends = [self.send(src, dst, nbytes) for _ in range(count)]
            for process in sends:
                yield process

        def receiver():
            for _ in range(count):
                delivery = yield self.recv(dst)
                received.append(delivery.delivered_at)

        self.sim.process(sender())
        receiver_proc = self.sim.process(receiver())
        self.sim.run_until_complete(receiver_proc)
        elapsed = received[-1] - start
        return count * nbytes * 1e3 / elapsed if elapsed > 0 else 0.0
