"""User-level messaging software.

PowerMANNA's communication stack is all software on the node CPUs: the
driver (:mod:`repro.ni.driver`) moves bytes, and this package provides the
layers above it — a point-to-point user-level API (:mod:`repro.msg.api`),
a small MPI-flavoured library (:mod:`repro.msg.mpi`) and LogP parameter
measurement (:mod:`repro.msg.logp`).
"""

from repro.msg.api import CommWorld, build_cluster_world
from repro.msg.logp import LogPParameters, measure_logp
from repro.msg.mpi import MiniMpi, RankContext
from repro.msg.reliable import (
    Delivery,
    DeliveryError,
    ReliableChannel,
    ReliableConfig,
)
from repro.msg.sliding_window import SlidingWindowChannel, SlidingWindowConfig
from repro.msg.striping import StripedChannel, StripingConfig

__all__ = [
    "CommWorld",
    "Delivery",
    "DeliveryError",
    "LogPParameters",
    "MiniMpi",
    "RankContext",
    "ReliableChannel",
    "ReliableConfig",
    "SlidingWindowChannel",
    "SlidingWindowConfig",
    "StripedChannel",
    "StripingConfig",
    "build_cluster_world",
    "measure_logp",
]
