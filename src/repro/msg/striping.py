"""Dual-plane striping — the paper's Section-4 future work, implemented.

"In future work, we will implement a low-level protocol to coordinate the
link access between the operating system and the application so that both
links are available for application communication and the communication
bandwidth can be fully exploited."

:class:`StripedChannel` does exactly that over the two network planes of a
PowerMANNA system: large messages are split into two half-messages sent
simultaneously on both planes and rejoined at the receiver; messages below
``stripe_threshold`` take a single plane (splitting tiny messages would
double their per-message overhead for nothing).  The result is up to
2 x 60 Mbyte/s unidirectional application bandwidth with unchanged
short-message latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import itertools
from typing import TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.resources import FifoStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.machine import PowerMannaSystem


@dataclass(frozen=True)
class StripingConfig:
    """Striping policy.

    Attributes:
        stripe_threshold: messages of at least this many bytes split over
            both planes; smaller ones use one plane (round-robin).
        reassembly_ns: software cost of joining the halves at the receiver.
    """

    stripe_threshold: int = 512
    reassembly_ns: float = 300.0

    def __post_init__(self):
        if self.stripe_threshold < 2:
            raise ValueError("threshold must cover at least two bytes")
        if self.reassembly_ns < 0:
            raise ValueError("reassembly cost must be nonnegative")


@dataclass(frozen=True)
class StripedDelivery:
    """A reassembled message."""

    source: int
    nbytes: int
    planes_used: int
    delivered_at: float


class StripedChannel:
    """Both planes of a PowerMannaSystem as one fat application channel."""

    def __init__(self, system: "PowerMannaSystem | None" = None,
                 config: StripingConfig = StripingConfig()):
        if system is None:
            # Imported lazily: repro.core builds on repro.msg, so the
            # default construction cannot import it at module load time.
            from repro.core.machine import PowerMannaSystem
            system = PowerMannaSystem.cluster()
        self.system = system
        if len(self.system.worlds) < 2:
            raise ValueError("striping needs both network planes")
        self.sim: Simulator = self.system.sim
        self.config = config
        self._round_robin: Dict[int, int] = {}
        self._stripe_ids = itertools.count(1)
        # Per node: both planes pump into one parts queue; recv() assembles.
        self._parts: Dict[int, FifoStore] = {}
        for node in self.system.fabric.node_ids():
            self._parts[node] = FifoStore(self.sim,
                                          name=f"stripe{node}.parts")
            for plane in (0, 1):
                self.sim.process(self._pump(node, plane))

    def _pump(self, node: int, plane: int):
        driver = self.system.world(plane).endpoint(node).driver
        while True:
            message = yield self.sim.process(driver.receive_message())
            yield self._parts[node].put(message)

    # -- sending ---------------------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int) -> Process:
        """Process: send ``nbytes``, striped when large enough."""
        return self.sim.process(self._send(src, dst, nbytes))

    def _send(self, src: int, dst: int, nbytes: int):
        if nbytes >= self.config.stripe_threshold:
            half = nbytes // 2
            parts = [(0, nbytes - half), (1, half)]
        else:
            plane = self._round_robin.get(src, 0)
            self._round_robin[src] = plane ^ 1
            parts = [(plane, nbytes)]
        stripe_id = next(self._stripe_ids)
        sends = []
        for plane, part_bytes in parts:
            world = self.system.world(plane)
            message = world.make_message(
                src, dst, part_bytes,
                tag={"stripe": {"parts": len(parts), "src": src,
                                "total": nbytes, "sid": stripe_id}})
            sends.append(self.sim.process(
                world.endpoint(src).driver.send_message(message)))
        for send in sends:
            yield send
        return len(parts)

    # -- receiving ----------------------------------------------------------------

    def recv(self, node: int) -> Process:
        """Process: receive one (possibly striped) message, reassembled."""
        return self.sim.process(self._recv(node))

    def _recv(self, node: int):
        # Halves arrive on either plane in any order (and halves of
        # *different* messages may interleave); assemble by stripe id.
        pending: Dict[int, List] = {}
        while True:
            message = yield self._parts[node].get()
            meta = message.tag["stripe"]
            group = pending.setdefault(meta["sid"], [])
            group.append(message)
            if len(group) == meta["parts"]:
                parts = pending.pop(meta["sid"])
                break
        if meta["parts"] > 1:
            yield self.sim.pooled_timeout(self.config.reassembly_ns)
        total = meta["total"]
        got = sum(p.payload_bytes for p in parts)
        if got != total:
            raise AssertionError(
                f"stripe reassembly mismatch: {got} B of {total} B")
        return StripedDelivery(source=meta["src"], nbytes=total,
                               planes_used=meta["parts"],
                               delivered_at=self.sim.now)

    # -- measurement -----------------------------------------------------------------

    def unidirectional_mb_s(self, src: int, dst: int, nbytes: int,
                            count: int = 6) -> float:
        start = self.sim.now
        finished: List[float] = []

        def sender():
            for _ in range(count):
                yield self.send(src, dst, nbytes)

        def receiver():
            for _ in range(count):
                delivery = yield self.recv(dst)
                finished.append(delivery.delivered_at)

        self.sim.process(sender())
        receiver_proc = self.sim.process(receiver())
        self.sim.run_until_complete(receiver_proc)
        elapsed = finished[-1] - start
        return count * nbytes * 1e3 / elapsed if elapsed > 0 else 0.0

    def one_way_latency_ns(self, src: int, dst: int, nbytes: int,
                           reps: int = 3) -> float:
        times: List[float] = []

        def bench():
            for _ in range(reps + 1):
                start = self.sim.now
                recv = self.recv(dst)
                yield self.send(src, dst, nbytes)
                yield recv
                times.append(self.sim.now - start)

        proc = self.sim.process(bench())
        self.sim.run_until_complete(proc)
        return sum(times[1:]) / reps   # drop the cold-route first rep
