"""LogP parameter measurement.

The paper reports its communication results in LogP terms (ref [13]):
one-way latency as half the ping-pong time and the *gap* as the
message-sending time at the network saturation point.  This module runs
those experiments on a simulated machine and packages the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.msg.api import CommWorld


@dataclass(frozen=True)
class LogPParameters:
    """The LogP model of one machine, measured at one message size.

    Attributes:
        latency_ns: end-to-end one-way latency (L + o_s + o_r combined, as
            the paper plots it).
        overhead_send_ns: sender CPU occupancy per message (o_s).
        gap_ns: inter-message time at saturation (g).
        nbytes: message size the parameters were measured at.
    """

    latency_ns: float
    overhead_send_ns: float
    gap_ns: float
    nbytes: int

    @property
    def bandwidth_mb_s(self) -> float:
        """Implied streaming bandwidth n/g."""
        if self.gap_ns <= 0:
            return float("inf")
        return self.nbytes * 1e3 / self.gap_ns

    @property
    def network_latency_ns(self) -> float:
        """The wire share of latency: L ~ latency - o_s (receiver overhead
        cannot be separated without hardware timestamps; the paper has the
        same limitation)."""
        return max(0.0, self.latency_ns - self.overhead_send_ns)


def measure_send_overhead_ns(world: CommWorld, a: int, b: int, nbytes: int,
                             count: int = 8) -> float:
    """Sender CPU time per message: how long send_message occupies the CPU."""
    times = []

    def bench():
        for _ in range(count):
            message = world.make_message(a, b, nbytes)
            start = world.sim.now
            yield world.sim.process(
                world.endpoint(a).driver.send_message(message))
            times.append(world.sim.now - start)

    def drain():
        for _ in range(count):
            yield world.recv(b)

    proc = world.sim.process(bench())
    drain_proc = world.sim.process(drain())
    world.sim.run_until_complete(drain_proc)
    if not proc.finished:
        raise AssertionError("send-overhead bench did not finish")
    times.sort()
    return times[len(times) // 2]  # median: steady-state, not cold route


def measure_logp(world: CommWorld, a: int, b: int, nbytes: int,
                 reps: int = 4) -> LogPParameters:
    """Measure all LogP parameters between nodes ``a`` and ``b``."""
    latency = world.one_way_latency_ns(a, b, nbytes, reps=reps)
    overhead = measure_send_overhead_ns(world, a, b, nbytes)
    gap = world.send_gap_ns(a, b, nbytes)
    return LogPParameters(latency_ns=latency, overhead_send_ns=overhead,
                          gap_ns=gap, nbytes=nbytes)


def logp_sweep(world: CommWorld, a: int, b: int,
               sizes: Sequence[int]) -> Dict[int, LogPParameters]:
    """LogP parameters across message sizes (the Figures 9-11 x-axis)."""
    return {size: measure_logp(world, a, b, size) for size in sizes}


def flow_logp(world, a: int, b: int, nbytes: int) -> LogPParameters:
    """LogP parameters of a flow-fidelity world, priced analytically.

    ``world`` is a :class:`repro.network.topo.flow.FlowWorld`; the
    returned parameters mean exactly what :func:`measure_logp` measures
    on the flit tier (the equivalence suite holds them together), so
    LogP-based analyses can run on 1k-4k-node machines.
    """
    crossbars, async_hops = world.path_costs(a, b)
    params = world.params
    return LogPParameters(
        latency_ns=params.latency_ns(nbytes, crossbars, async_hops),
        overhead_send_ns=params.overhead_ns(nbytes),
        gap_ns=params.gap_ns(nbytes),
        nbytes=nbytes)
