"""A small MPI-flavoured message-passing library over the CommWorld.

The paper ships PVM and MPI on LinuxPPC with an optimised user-level MPI.
This module is the reproduction's equivalent: rank programs are written as
generators against a :class:`RankContext` (``yield ctx.send(...)``,
``yield ctx.recv(...)``) and :class:`MiniMpi` runs one program per rank on
the simulated machine.  Point-to-point matching is by source and tag;
collectives (barrier, broadcast, gather, allreduce-style combine) are
implemented as message algorithms on top, exactly as a user-level MPI
would be.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.msg.api import CommWorld
from repro.network.message import Message
from repro.sim.engine import Event, Simulator
from repro.sim.process import Process

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Envelope:
    """Metadata of a received message."""

    source: int
    tag: int
    nbytes: int
    delivered_at: float


class RankContext:
    """The per-rank API surface handed to MPI programs."""

    def __init__(self, mpi: "MiniMpi", rank: int):
        self._mpi = mpi
        self.rank = rank
        self.size = mpi.size

    # -- point to point ------------------------------------------------------

    def send(self, dest: int, nbytes: int, tag: int = 0) -> Process:
        """Blocking-ish send: the returned process finishes when the
        message has left this rank's driver."""
        return self._mpi._send(self.rank, dest, nbytes, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Process:
        """Receive one matching message; the process value is an Envelope."""
        return self._mpi._recv(self.rank, source, tag)

    def sendrecv(self, dest: int, nbytes: int,
                 source: int = ANY_SOURCE, tag: int = 0):
        """Combined send+receive (safe exchange)."""
        send_proc = self.send(dest, nbytes, tag)
        recv_proc = self.recv(source, tag)
        yield send_proc
        envelope = yield recv_proc
        return envelope

    # -- collectives ------------------------------------------------------------

    def barrier(self, tag: int = -101):
        """Dissemination barrier: ceil(log2(size)) rounds of 0-byte pairs."""
        size, rank = self.size, self.rank
        distance = 1
        while distance < size:
            peer_up = (rank + distance) % size
            peer_down = (rank - distance) % size
            send_proc = self.send(peer_up, 0, tag)
            recv_proc = self.recv(peer_down, tag)
            yield send_proc
            yield recv_proc
            distance *= 2
        return None

    def broadcast(self, root: int, nbytes: int, tag: int = -102):
        """Binomial-tree broadcast rooted at ``root``.

        In relative-rank space the parent of r is r minus its highest set
        bit; children are r + m for each m above that bit (recursive
        doubling: the reached set doubles every round).
        """
        size = self.size
        relative = (self.rank - root) % size
        if relative == 0:
            mask = 1
        else:
            msb = 1 << (relative.bit_length() - 1)
            parent = ((relative - msb) + root) % size
            yield self.recv(parent, tag)
            mask = msb << 1
        while mask < size:
            if relative + mask < size:
                child = (relative + mask + root) % size
                yield self.send(child, nbytes, tag)
            mask <<= 1
        return None

    def gather(self, root: int, nbytes: int, tag: int = -103):
        """Flat gather of ``nbytes`` from every rank to ``root``."""
        if self.rank == root:
            envelopes = []
            for _ in range(self.size - 1):
                envelope = yield self.recv(ANY_SOURCE, tag)
                envelopes.append(envelope)
            return envelopes
        yield self.send(root, nbytes, tag)
        return None

    def reduce_tree(self, root: int, nbytes: int, tag: int = -104):
        """Binomial-tree reduction (combine) toward ``root``."""
        size = self.size
        relative = (self.rank - root) % size
        mask = 1
        while mask < size:
            if relative & mask:
                parent = (self.rank - mask) % size
                yield self.send(parent, nbytes, tag)
                return None
            partner = relative | mask
            if partner < size:
                yield self.recv((root + partner) % size, tag)
            mask <<= 1
        return None

    def compute(self, duration_ns: float) -> Event:
        """Model local computation: an event firing after ``duration_ns``.

        Rank programs charge their CPU time this way so communication and
        computation interleave on the simulated clock.
        """
        return self._mpi.sim.timeout(duration_ns)

    @property
    def now(self) -> float:
        return self._mpi.sim.now


RankProgram = Callable[[RankContext], Generator]


class MiniMpi:
    """Runs one generator program per rank on a CommWorld."""

    def __init__(self, world: CommWorld, ranks: Optional[List[int]] = None):
        self.world = world
        self.sim: Simulator = world.sim
        self.ranks = ranks if ranks is not None else world.fabric.node_ids()
        self.size = len(self.ranks)
        if self.size < 1:
            raise ValueError("MiniMpi needs at least one rank")
        self._rank_of_node = {node: i for i, node in enumerate(self.ranks)}
        # Per rank: queue of unexpected envelopes + waiters with filters.
        self._inbox: Dict[int, Deque[Envelope]] = {r: deque()
                                                   for r in range(self.size)}
        self._waiters: Dict[int, List[Tuple[int, int, Event]]] = {
            r: [] for r in range(self.size)}
        for rank in range(self.size):
            self.sim.process(self._pump(rank))

    # -- rank/node mapping ---------------------------------------------------

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.size:
            raise IndexError(f"rank {rank} out of range 0..{self.size - 1}")
        return self.ranks[rank]

    # -- internals ---------------------------------------------------------------

    def _send(self, src_rank: int, dst_rank: int, nbytes: int,
              tag: int) -> Process:
        src, dst = self.node_of(src_rank), self.node_of(dst_rank)
        message = self.world.make_message(src, dst, nbytes,
                                          tag={"mpi_tag": tag,
                                               "src_rank": src_rank})
        driver = self.world.endpoint(src).driver
        return self.sim.process(driver.send_message(message))

    def _recv(self, rank: int, source: int, tag: int) -> Process:
        def waiter():
            envelope = self._match(rank, source, tag)
            if envelope is None:
                event = Event(self.sim, name=f"mpi.recv.r{rank}")
                self._waiters[rank].append((source, tag, event))
                envelope = yield event
            return envelope

        return self.sim.process(waiter())

    def _pump(self, rank: int):
        """Continuously receive from the driver and match/queue envelopes."""
        node = self.node_of(rank)
        driver = self.world.endpoint(node).driver
        while True:
            message: Message = yield self.sim.process(driver.receive_message())
            meta = message.tag if isinstance(message.tag, dict) else {}
            envelope = Envelope(
                source=meta.get("src_rank", self._rank_of_node.get(
                    message.source, -1)),
                tag=meta.get("mpi_tag", 0),
                nbytes=message.payload_bytes,
                delivered_at=message.delivered_at or self.sim.now)
            self._deliver(rank, envelope)

    def _deliver(self, rank: int, envelope: Envelope) -> None:
        for idx, (source, tag, event) in enumerate(self._waiters[rank]):
            if self._matches(envelope, source, tag):
                del self._waiters[rank][idx]
                event.trigger(envelope)
                return
        self._inbox[rank].append(envelope)

    def _match(self, rank: int, source: int, tag: int) -> Optional[Envelope]:
        inbox = self._inbox[rank]
        for idx, envelope in enumerate(inbox):
            if self._matches(envelope, source, tag):
                del inbox[idx]
                return envelope
        return None

    @staticmethod
    def _matches(envelope: Envelope, source: int, tag: int) -> bool:
        if source != ANY_SOURCE and envelope.source != source:
            return False
        if tag != ANY_TAG and envelope.tag != tag:
            return False
        return True

    # -- running programs -------------------------------------------------------------

    def run(self, program: RankProgram, until: Optional[float] = None,
            ) -> List[Any]:
        """Run ``program`` on every rank; returns per-rank return values."""
        processes = [self.sim.process(program(RankContext(self, rank)))
                     for rank in range(self.size)]
        self.sim.run(until=until)
        unfinished = [i for i, p in enumerate(processes) if not p.finished]
        if unfinished:
            raise RuntimeError(
                f"MPI program deadlocked: ranks {unfinished} never finished")
        return [p.value for p in processes]
