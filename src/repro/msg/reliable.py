"""Reliable delivery over the CRC-checked links.

The link-interface chip "performs generation and checking of a CRC check
sum, ensuring that communication is not only efficient but also
reliable" — detection, that is; recovery is software's job.  This module
is that software: a sequence-numbered ack/retransmit protocol running
over the user-level driver, plus a fault injector that corrupts messages
at a configurable rate (the CRC flags them on receipt and the receiver
discards, exactly as the hardware would).

The protocol is stop-and-wait per (sender, receiver) pair with duplicate
suppression — simple, deadlock-free over the full-duplex links, and
enough to measure how goodput degrades with the link error rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.msg.api import CommWorld
from repro.obs import OBS
from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.process import Process
from repro.sim.resources import FifoStore
from repro.sim.stats import Counter


@dataclass(frozen=True)
class ReliableConfig:
    """Protocol parameters.

    Attributes:
        error_rate: probability a transmission is corrupted on the wire
            (detected by CRC at the receiver and discarded).
        ack_error_rate: probability an *acknowledgement* is corrupted;
            ``None`` mirrors ``error_rate``.  A lost ack forces a
            retransmission the receiver must suppress as a duplicate.
        ack_bytes: size of an acknowledgement message.
        retry_timeout_ns: sender timeout before retransmission.
        max_retries: give-up bound (raises DeliveryError beyond it).
        seed: fault-injection seed (deterministic runs).
    """

    error_rate: float = 0.0
    ack_error_rate: Optional[float] = None
    ack_bytes: int = 8
    retry_timeout_ns: float = 60_000.0
    max_retries: int = 25
    seed: int = 99

    def __post_init__(self):
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error rate must be in [0, 1)")
        if self.ack_error_rate is not None and not (
                0.0 <= self.ack_error_rate < 1.0):
            raise ValueError("ack error rate must be in [0, 1)")
        if self.retry_timeout_ns <= 0:
            raise ValueError("retry timeout must be positive")
        if self.max_retries < 1:
            raise ValueError("need at least one retry")

    @property
    def effective_ack_error_rate(self) -> float:
        return (self.error_rate if self.ack_error_rate is None
                else self.ack_error_rate)


class DeliveryError(RuntimeError):
    """Retransmission budget exhausted."""


@dataclass(frozen=True)
class Delivery:
    """What the application receives."""

    source: int
    nbytes: int
    sequence: int
    delivered_at: float


class ReliableChannel:
    """Ack/retransmit protocol over one CommWorld plane."""

    def __init__(self, world: CommWorld,
                 config: ReliableConfig = ReliableConfig()):
        self.world = world
        self.sim: Simulator = world.sim
        self.config = config
        self._rng = random.Random(config.seed)
        # A separate stream for acks, so turning ack corruption on does
        # not perturb the forward-path fault sequence of a given seed.
        self._ack_rng = random.Random(config.seed ^ 0x5DEECE66D)
        self.stats = Counter("reliable")
        # Per node: application-facing delivery queue + ack wakeups.
        self._deliveries: Dict[int, FifoStore] = {}
        self._ack_events: Dict[Tuple[int, int, int], Event] = {}
        # Per (src, dst): next sequence to send / next expected.
        self._next_seq: Dict[Tuple[int, int], int] = {}
        self._expected: Dict[Tuple[int, int], int] = {}
        for node in world.fabric.node_ids():
            self._deliveries[node] = FifoStore(self.sim,
                                               name=f"rel{node}.deliveries")
            self.sim.process(self._pump(node))

    # -- application API -----------------------------------------------------

    def send(self, src: int, dst: int, nbytes: int) -> Process:
        """Process: deliver ``nbytes`` reliably; finishes when acked."""
        return self.sim.process(self._send(src, dst, nbytes))

    def recv(self, node: int) -> Event:
        """Event firing with the next :class:`Delivery` for ``node``."""
        return self._deliveries[node].get()

    # -- protocol internals --------------------------------------------------------

    def _send(self, src: int, dst: int, nbytes: int):
        key = (src, dst)
        sequence = self._next_seq.get(key, 0)
        self._next_seq[key] = sequence + 1
        driver = self.world.endpoint(src).driver

        for attempt in range(self.config.max_retries):
            corrupted = self._rng.random() < self.config.error_rate
            tag = {"rel": {"kind": "data", "seq": sequence, "src": src,
                           "corrupt": corrupted}}
            message = self.world.make_message(src, dst, nbytes, tag=tag)
            yield self.sim.process(driver.send_message(message))
            self.stats.incr("transmissions")
            if OBS.enabled:
                OBS.metrics.incr("reliable.transmissions")
                if attempt:
                    OBS.metrics.incr("reliable.retransmissions")
            if corrupted:
                self.stats.incr("corrupted")
                if OBS.enabled:
                    OBS.metrics.incr("reliable.corrupted")

            ack_key = (src, dst, sequence)
            ack_event = Event(self.sim, name=f"ack{ack_key}")
            self._ack_events[ack_key] = ack_event
            # Adaptive timeout: base RTT allowance plus twice the wire
            # time of the payload (stop-and-wait must outwait its own
            # serialisation on the 60 MB/s link).
            wire_ns = nbytes * 1e3 / self.world.fabric.link_config.bandwidth_mb_s
            timeout = self.sim.timeout(self.config.retry_timeout_ns
                                       + 2.0 * wire_ns)
            fired = yield self.sim.any_of([ack_event, timeout])
            if ack_event in fired:
                self.stats.incr("acked")
                if OBS.enabled:
                    OBS.metrics.incr("reliable.acked")
                return sequence
            self._ack_events.pop(ack_key, None)
            self.stats.incr("timeouts")
            if OBS.enabled:
                OBS.metrics.incr("reliable.timeouts")
        raise DeliveryError(
            f"{src}->{dst} seq {sequence}: no ack after "
            f"{self.config.max_retries} attempts")

    def _pump(self, node: int):
        driver = self.world.endpoint(node).driver
        while True:
            message = yield self.sim.process(driver.receive_message())
            meta = (message.tag or {}).get("rel") if isinstance(
                message.tag, dict) else None
            if meta is None:
                raise SimulationError(
                    f"node {node}: non-protocol message on a reliable plane")
            if meta["kind"] == "ack":
                if meta.get("corrupt") or not message.crc_ok:
                    # A corrupted ack is dropped by CRC like any other
                    # message; the sender retransmits and the receiver's
                    # duplicate suppression absorbs the replay.
                    self.stats.incr("acks_discarded")
                    if OBS.enabled:
                        OBS.metrics.incr("reliable.acks_discarded")
                    continue
                event = self._ack_events.pop(
                    (meta["src"], meta["dst"], meta["seq"]), None)
                # A late/duplicate ack for an already-satisfied send is
                # dropped — the protocol tolerates it.
                if event is not None and not event.triggered:
                    event.trigger(meta["seq"])
                continue

            # Data message.
            if meta["corrupt"] or not message.crc_ok:
                # The CRC flags it; the receiver discards silently and the
                # sender's timeout drives the retransmission.
                self.stats.incr("discarded")
                if OBS.enabled:
                    OBS.metrics.incr("reliable.discarded")
                continue
            src, sequence = meta["src"], meta["seq"]
            expected = self._expected.get((src, node), 0)
            if sequence == expected:
                self._expected[(src, node)] = expected + 1
                self._deliveries[node].try_put(Delivery(
                    source=src, nbytes=message.payload_bytes,
                    sequence=sequence,
                    delivered_at=message.delivered_at or self.sim.now))
                self.stats.incr("delivered")
                if OBS.enabled:
                    OBS.metrics.incr("reliable.delivered")
            else:
                # Duplicate of an already-delivered message (our ack was
                # lost or late): re-ack, do not re-deliver.
                self.stats.incr("duplicates")
            ack_corrupt = (self._ack_rng.random()
                           < self.config.effective_ack_error_rate)
            ack_tag = {"rel": {"kind": "ack", "seq": sequence, "src": src,
                               "dst": node, "corrupt": ack_corrupt}}
            ack = self.world.make_message(node, src, self.config.ack_bytes,
                                          tag=ack_tag)
            self.stats.incr("acks_sent")
            if ack_corrupt:
                self.stats.incr("acks_corrupted")
                if OBS.enabled:
                    OBS.metrics.incr("reliable.acks_corrupted")
            # Fire-and-forget: the sender's timeout covers a lost ack.
            self.sim.process(
                self.world.endpoint(node).driver.send_message(ack))

    # -- measurement -------------------------------------------------------------

    def goodput_mb_s(self, src: int, dst: int, nbytes: int,
                     count: int = 8) -> float:
        """Reliable streaming goodput (payload delivered over elapsed)."""
        start = self.sim.now
        received: list[float] = []

        def sender():
            for _ in range(count):
                yield self.send(src, dst, nbytes)

        def receiver():
            for _ in range(count):
                delivery = yield self.recv(dst)
                received.append(delivery.delivered_at)

        self.sim.process(sender())
        receiver_proc = self.sim.process(receiver())
        self.sim.run_until_complete(receiver_proc)
        elapsed = received[-1] - start
        return count * nbytes * 1e3 / elapsed if elapsed > 0 else 0.0
