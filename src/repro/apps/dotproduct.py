"""Distributed dot product: local multiply-accumulate plus one reduction.

The collective-bound counterpart to the stencil: per call, each rank does
n/P fused multiply-adds and then the partial sums combine over a binomial
tree to rank 0.  Results are real numbers checked against numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.specs import POWERMANNA, MachineSpec
from repro.cpu.isa import fma_mix, InstructionMix
from repro.cpu.pipeline import PipelineModel
from repro.msg.api import build_cluster_world
from repro.msg.mpi import MiniMpi, RankContext

PARTIAL_BYTES = 8
_REDUCE_TAG = -600


@dataclass(frozen=True)
class DotProductResult:
    """Outcome of one distributed dot product."""

    value: float
    elapsed_ns: float
    compute_ns: float
    ranks: int
    n: int

    @property
    def comm_fraction(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return max(0.0, 1.0 - self.compute_ns / self.elapsed_ns)


def _per_element_ns(spec: MachineSpec) -> float:
    """One multiply-accumulate with its two loads and loop overhead."""
    mix = fma_mix(spec.cpu.has_fma, mults=1.0, adds=1.0) + InstructionMix(
        int_ops=1.0, loads=2.0, branches=1.0)
    return PipelineModel(spec.cpu).block_ns(mix, dependent_fp_chain=0.5)


def distributed_dot(x: np.ndarray, y: np.ndarray, ranks: int = 8,
                    machine: MachineSpec = POWERMANNA,
                    topology=None) -> DotProductResult:
    """Dot(x, y) over ``ranks`` nodes of a fresh cluster.

    ``topology`` (a flit-fidelity :class:`TopologySpec`) runs the
    reduction over that fabric instead; ranks map onto its first
    ``ranks`` node ids.
    """
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = len(x)
    if n < ranks:
        raise ValueError(f"{n} elements cannot split over {ranks} ranks")

    if topology is not None:
        from repro.msg.api import build_topology_world

        _, world = build_topology_world(topology)
        if world.fidelity != "flit":
            raise ValueError("distributed_dot needs a flit-fidelity world")
    else:
        _, world = build_cluster_world()
    mpi = MiniMpi(world, ranks=list(range(ranks)))
    element_ns = _per_element_ns(machine)

    bounds = np.linspace(0, n, ranks + 1, dtype=int)
    partials: List[float] = [0.0] * ranks
    compute_times = [0.0] * ranks

    def program(ctx: RankContext):
        rank = ctx.rank
        lo, hi = bounds[rank], bounds[rank + 1]
        partials[rank] = float(np.dot(x[lo:hi], y[lo:hi]))
        work = (hi - lo) * element_ns
        compute_times[rank] += work
        yield ctx.compute(work)

        # Binomial-tree combine toward rank 0, summing as values climb.
        size = ctx.size
        mask = 1
        while mask < size:
            if rank & mask:
                parent = rank - mask
                yield ctx.send(parent, PARTIAL_BYTES, tag=_REDUCE_TAG)
                return None
            partner = rank | mask
            if partner < size:
                yield ctx.recv(partner, tag=_REDUCE_TAG)
                partials[rank] += partials[partner]
            mask <<= 1
        return partials[rank] if rank == 0 else None

    results = mpi.run(program)
    value = results[0]
    return DotProductResult(value=value, elapsed_ns=world.sim.now,
                            compute_ns=max(compute_times), ranks=ranks, n=n)
