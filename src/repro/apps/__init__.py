"""Application-level studies on the simulated machine.

The paper closes by asking "to what extent application performance can
benefit ... from the short set up times and low latencies provided by the
lightweight communication protocol" — a question it leaves to future work
because the SMP Linux port wasn't ready.  This package answers it on the
reproduction with two real distributed computations:

* :mod:`repro.apps.stencil` — a 1-D Jacobi heat-equation solver with halo
  exchange (latency-sensitive: two small messages per iteration);
* :mod:`repro.apps.dotproduct` — a distributed dot product (one
  reduction per call; pure collective cost).

Both run genuine numerics (results are checked against serial references)
while every message crosses the simulated network and every flop is
charged through the CPU model.
"""

from repro.apps.dotproduct import DotProductResult, distributed_dot
from repro.apps.stencil import StencilResult, run_stencil, serial_stencil

__all__ = [
    "DotProductResult",
    "StencilResult",
    "distributed_dot",
    "run_stencil",
    "serial_stencil",
]
