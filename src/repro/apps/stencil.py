"""1-D Jacobi heat diffusion with halo exchange.

The canonical latency-sensitive SPMD kernel: each rank owns a slab of the
rod, and every iteration trades one boundary cell with each neighbour
before updating its interior.  Small halos mean the *message rate*, not
bandwidth, dominates — exactly where PowerMANNA's 2.75 µs sends pay off.

The arithmetic is real (numpy arrays; results checked against
:func:`serial_stencil`); compute time is charged through the machine's
CPU pipeline model per updated cell, so the compute/communication balance
on the simulated clock is faithful to the machine being modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.specs import POWERMANNA, MachineSpec
from repro.cpu.isa import InstructionMix
from repro.cpu.pipeline import PipelineModel
from repro.msg.api import build_cluster_world
from repro.msg.mpi import MiniMpi, RankContext
from repro.ni.driver import DriverConfig

HALO_TAG = 77
ELEM_BYTES = 8


def _cell_update_ns(spec: MachineSpec) -> float:
    """Compute charge per updated cell: u[i] = (u[i-1] + u[i+1]) / 2.

    Two loads, an add, a halved multiply, a store, loop overhead — all
    L1-resident for the slab sizes used here, so a pure pipeline cost.
    """
    mix = InstructionMix(fp_ops=2.0, fp_instructions=2.0, int_ops=1.0,
                         loads=2.0, stores=1.0, branches=1.0)
    model = PipelineModel(spec.cpu)
    return model.block_ns(mix)


def serial_stencil(initial: np.ndarray, iterations: int) -> np.ndarray:
    """Reference solver with fixed (Dirichlet) boundary values."""
    u = initial.astype(float).copy()
    for _ in range(iterations):
        nxt = u.copy()
        nxt[1:-1] = 0.5 * (u[:-2] + u[2:])
        u = nxt
    return u


@dataclass
class StencilResult:
    """Outcome of one distributed run.

    Attributes:
        solution: the assembled rod after all iterations.
        elapsed_ns: simulated wall time (slowest rank).
        compute_ns: per-rank compute time (max over ranks).
        ranks: participating node count.
        iterations: Jacobi sweeps performed.
    """

    solution: np.ndarray
    elapsed_ns: float
    compute_ns: float
    ranks: int
    iterations: int

    @property
    def comm_fraction(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return max(0.0, 1.0 - self.compute_ns / self.elapsed_ns)


def run_stencil(total_cells: int, iterations: int, ranks: int = 8,
                machine: MachineSpec = POWERMANNA,
                initial: Optional[np.ndarray] = None,
                driver_config: Optional[DriverConfig] = None,
                topology=None,
                ) -> StencilResult:
    """Distributed Jacobi over ``ranks`` nodes of a fresh cluster.

    ``driver_config`` swaps the communication software stack — the
    latency-sensitivity ablation passes a heavier, DMA-NIC-like one.
    ``topology`` (a flit-fidelity :class:`TopologySpec`) runs the halo
    exchange over that fabric instead of the 8-node cluster.
    """
    if total_cells < 3 * ranks:
        raise ValueError(f"{total_cells} cells cannot split over {ranks} ranks")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if initial is None:
        rod = np.zeros(total_cells)
        rod[0] = 100.0
        rod[-1] = -40.0
    else:
        if len(initial) != total_cells:
            raise ValueError("initial condition length mismatch")
        rod = initial.astype(float)

    if topology is not None:
        from repro.msg.api import build_topology_world

        kwargs = ({} if driver_config is None
                  else {"driver_config": driver_config})
        _, world = build_topology_world(topology, **kwargs)
        if world.fidelity != "flit":
            raise ValueError("run_stencil needs a flit-fidelity world")
    elif driver_config is None:
        _, world = build_cluster_world()
    else:
        _, world = build_cluster_world(driver_config=driver_config)
    mpi = MiniMpi(world, ranks=list(range(ranks)))
    cell_ns = _cell_update_ns(machine)

    # Slab decomposition (remainder cells go to the front ranks).
    base = total_cells // ranks
    counts = [base + (1 if r < total_cells % ranks else 0)
              for r in range(ranks)]
    offsets = np.cumsum([0] + counts)
    slabs = [rod[offsets[r]:offsets[r + 1]].copy() for r in range(ranks)]
    compute_times = [0.0] * ranks

    def program(ctx: RankContext):
        rank, size = ctx.rank, ctx.size
        u = slabs[rank]
        left_rank = rank - 1 if rank > 0 else None
        right_rank = rank + 1 if rank < size - 1 else None
        left_halo = rod[0]          # global boundary values (Dirichlet)
        right_halo = rod[-1]

        for _ in range(iterations):
            # Halo exchange: boundary values travel as real numbers in the
            # message metadata (the simulator carries sizes on the wire,
            # values in the envelope registry).
            sends = []
            if left_rank is not None:
                sends.append(ctx.send(left_rank, ELEM_BYTES,
                                      tag=HALO_TAG + rank))
            if right_rank is not None:
                sends.append(ctx.send(right_rank, ELEM_BYTES,
                                      tag=HALO_TAG + rank))
            if left_rank is not None:
                yield ctx.recv(left_rank, tag=HALO_TAG + left_rank)
                left_halo = slabs[left_rank][-1]
            if right_rank is not None:
                yield ctx.recv(right_rank, tag=HALO_TAG + right_rank)
                right_halo = slabs[right_rank][0]
            for send in sends:
                yield send

            # Barrier keeps Jacobi sweeps aligned (values above were read
            # from the neighbours' previous-iteration slabs).
            yield from ctx.barrier(tag=-500)

            padded = np.concatenate(([left_halo], u, [right_halo]))
            updated = 0.5 * (padded[:-2] + padded[2:])
            if rank == 0:
                updated[0] = rod[0]
            if rank == size - 1:
                updated[-1] = rod[-1]
            u[:] = updated
            work = len(u) * cell_ns
            compute_times[rank] += work
            yield ctx.compute(work)

            yield from ctx.barrier(tag=-501)
        return None

    mpi.run(program)
    elapsed = world.sim.now
    solution = np.concatenate(slabs)
    return StencilResult(solution=solution, elapsed_ns=elapsed,
                         compute_ns=max(compute_times), ranks=ranks,
                         iterations=iterations)
