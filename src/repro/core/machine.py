"""The top-level PowerMANNA system façade.

A :class:`PowerMannaSystem` is what the examples and benchmarks hold in
their hands: N dual-MPC620 nodes (compute models) embedded in the
duplicated crossbar network (a discrete-event fabric with one CommWorld per
plane).  The two time scales of DESIGN.md section 5 meet here: node
benchmarks replay traces on the :class:`~repro.node.node.NodeModel`s,
communication benchmarks run on the event-driven fabric.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.specs import POWERMANNA, MachineSpec
from repro.msg.api import CommWorld
from repro.msg.logp import LogPParameters, measure_logp
from repro.network.crossbar import CrossbarConfig
from repro.network.link import LinkConfig
from repro.network.topology import (
    Fabric,
    build_cluster,
    build_power_manna_256,
)
from repro.ni.driver import DriverConfig
from repro.ni.interface import LinkInterfaceConfig
from repro.node.node import NodeModel
from repro.sim.engine import Simulator


class PowerMannaSystem:
    """N nodes + duplicated network + per-plane user-level comm worlds."""

    def __init__(self, n_nodes: int = 8,
                 machine: MachineSpec = POWERMANNA,
                 fifo_words: int = 32,
                 link_config: LinkConfig = LinkConfig(),
                 crossbar_config: CrossbarConfig = CrossbarConfig(),
                 driver_config: DriverConfig = DriverConfig(),
                 planes: int = 2,
                 node_scale: int = 1,
                 fabric_builder=None):
        self.machine = machine
        self.sim = Simulator()
        self.ni_config = LinkInterfaceConfig(fifo_words=fifo_words)
        builder = fabric_builder or (
            lambda sim: build_cluster(sim, n_nodes=n_nodes,
                                      link_config=link_config,
                                      crossbar_config=crossbar_config,
                                      planes=planes))
        fabric = builder(self.sim)
        if fabric.node_rx_fifo_bytes != self.ni_config.fifo_bytes:
            # Rebuild with matching receive FIFOs (the Figure-12 knob).
            self.sim = Simulator()
            fabric = builder(self.sim)
            raise ValueError(
                "fabric receive FIFOs do not match the link-interface "
                f"config ({fabric.node_rx_fifo_bytes} B vs "
                f"{self.ni_config.fifo_bytes} B); pass a fabric_builder "
                "that sets node_rx_fifo_bytes=fifo_words*8")
        self.fabric = fabric
        self.worlds: List[CommWorld] = [
            CommWorld(self.sim, fabric, plane=plane,
                      ni_config=self.ni_config, driver_config=driver_config)
            for plane in range(planes)
        ]
        self._node_models: Dict[int, NodeModel] = {}
        self.node_scale = node_scale

    # -- construction helpers --------------------------------------------------

    @classmethod
    def cluster(cls, fifo_words: int = 32,
                driver_config: DriverConfig = DriverConfig(),
                node_scale: int = 1) -> "PowerMannaSystem":
        """The Figure-5a eight-node desk-side system."""
        from repro.network.topology import cluster_spec

        return cls.from_spec(cluster_spec(), fifo_words=fifo_words,
                             driver_config=driver_config,
                             node_scale=node_scale)

    @classmethod
    def system_256(cls, driver_config: DriverConfig = DriverConfig(),
                   ) -> "PowerMannaSystem":
        """The Figure-5b 256-processor (128-node) configuration."""
        return cls(fabric_builder=lambda sim: build_power_manna_256(sim),
                   driver_config=driver_config)

    @classmethod
    def from_spec(cls, spec, fifo_words: int = 32,
                  driver_config: DriverConfig = DriverConfig(),
                  node_scale: int = 1) -> "PowerMannaSystem":
        """A system on any flit-fidelity :class:`TopologySpec`.

        The fabric's node receive FIFOs track ``fifo_words`` (the
        Figure-12 knob) and one CommWorld is stood up per network plane
        the blueprint wires.
        """
        from repro.network.topo import blueprint, build_fabric

        if spec.fidelity != "flit":
            raise ValueError(
                f"PowerMannaSystem needs flit fidelity (got "
                f"{spec.fidelity!r}); FlowWorld covers the flow tier")
        node_rx = fifo_words * 8
        planes = blueprint(spec, CrossbarConfig().ports).planes()

        def builder(sim: Simulator) -> Fabric:
            return build_fabric(sim, spec, node_rx_fifo_bytes=node_rx)

        return cls(fifo_words=fifo_words, driver_config=driver_config,
                   node_scale=node_scale, planes=planes,
                   fabric_builder=builder)

    # -- accessors --------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.fabric.node_ids())

    @property
    def num_processors(self) -> int:
        return self.num_nodes * self.machine.num_cpus

    def node(self, node_id: int) -> NodeModel:
        """The compute model of one node (built lazily, cached)."""
        if node_id not in self.fabric.node_ids():
            raise KeyError(f"no node {node_id} in this system")
        model = self._node_models.get(node_id)
        if model is None:
            model = self.machine.node(scale=self.node_scale,
                                      name=f"node{node_id}")
            self._node_models[node_id] = model
        return model

    def world(self, plane: int = 0) -> CommWorld:
        return self.worlds[plane]

    # -- headline measurements --------------------------------------------------

    def logp(self, a: int = 0, b: int = 1, nbytes: int = 8,
             plane: int = 0) -> LogPParameters:
        return measure_logp(self.world(plane), a, b, nbytes)

    def describe(self) -> str:
        return (f"PowerMANNA: {self.num_nodes} nodes "
                f"({self.num_processors} x {self.machine.cpu.name}), "
                f"{len(self.worlds)} network planes, "
                f"{self.ni_config.fifo_words}-word NI FIFOs")
