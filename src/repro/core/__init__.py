"""Public façade of the PowerMANNA reproduction.

Most users need only:

* :class:`~repro.core.machine.PowerMannaSystem` — build and measure a
  PowerMANNA configuration;
* :func:`~repro.core.specs.machine` and the Table-1 presets — the paper's
  three test systems as executable specifications.
"""

from repro.core.machine import PowerMannaSystem
from repro.core.specs import (
    PC_CLUSTER_180,
    PC_CLUSTER_266,
    POWERMANNA,
    SUN_ULTRA,
    MachineSpec,
    list_machines,
    machine,
    table1,
)

__all__ = [
    "MachineSpec",
    "PC_CLUSTER_180",
    "PC_CLUSTER_266",
    "POWERMANNA",
    "PowerMannaSystem",
    "SUN_ULTRA",
    "list_machines",
    "machine",
    "table1",
]
