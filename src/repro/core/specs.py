"""Machine specifications — Table 1 of the paper, as executable presets.

Each :class:`MachineSpec` binds a processor model, a memory-hierarchy
configuration and a node-fabric configuration into a named machine.  The
three presets are the paper's test systems; ``powermanna_node(num_cpus=4)``
builds the design-phase four-processor variant of ref [4].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cpu.model import CpuSpec
from repro.cpu.presets import (
    MPC620,
    PENTIUM_II_180,
    PENTIUM_II_266,
    ULTRASPARC_I,
)
from repro.memory.cache import CacheGeometry
from repro.memory.dram import DramConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.mp import FabricConfig, FabricKind
from repro.memory.snoop import SnoopConfig
from repro.node.node import NodeModel
from repro.sim.clock import Clock


@dataclass(frozen=True)
class MachineSpec:
    """One complete Table-1 machine."""

    key: str
    system_type: str
    cpu: CpuSpec
    num_cpus: int
    hierarchy: HierarchyConfig
    fabric: FabricConfig
    node_memory_mb: int
    operating_system: str

    def node(self, num_cpus: int | None = None, scale: int = 1,
             name: str | None = None) -> NodeModel:
        """Build a fresh node model.

        ``scale`` divides the cache capacities (keeping line sizes) so that
        trace-driven runs cross the same L1/L2/memory regimes at smaller
        working sets — see DESIGN.md section 5.
        """
        hierarchy = self.hierarchy if scale == 1 else self.hierarchy.scaled(scale)
        return NodeModel(self.cpu, hierarchy, self.fabric,
                         num_cpus=self.num_cpus if num_cpus is None else num_cpus,
                         name=name or self.key)

    def table1_row(self) -> Dict[str, str]:
        """This machine's column of Table 1."""
        h = self.hierarchy
        kb = 1024
        return {
            "System Type": self.system_type,
            "Processor Type": self.cpu.name,
            "Processor Clock": f"{self.cpu.clock.mhz:g} MHz",
            "Bus Clock": f"{h.bus_clock.mhz:g} MHz",
            "Processors": str(self.num_cpus),
            "Primary Cache": (f"{h.l1.size_bytes // kb}/"
                              f"{h.l1.size_bytes // kb} Kbyte"),
            "Secondary Cache": _l2_text(h.l2.size_bytes),
            "Cache line": f"{h.l1.line_bytes} byte",
            "Node Memory": f"{self.node_memory_mb} Mbyte",
            "Operating System": self.operating_system,
        }


def _l2_text(size_bytes: int) -> str:
    mb = 1024 * 1024
    if size_bytes % mb == 0:
        n = size_bytes // mb
        return f"{n}/{n} Mbyte"
    n = size_bytes // 1024
    return f"{n}/{n} Kbyte"


_BUS_60 = Clock(60.0)
_BUS_66 = Clock(66.0)
_BUS_84 = Clock(84.0)

POWERMANNA = MachineSpec(
    key="powermanna",
    system_type="PowerMANNA",
    cpu=MPC620,
    num_cpus=2,
    hierarchy=HierarchyConfig(
        cpu_clock=MPC620.clock,
        bus_clock=_BUS_60,
        l1=CacheGeometry(32 * 1024, 64, 8),       # 32K on-chip, 64-byte lines
        l2=CacheGeometry(2 * 1024 * 1024, 64, 4),  # 2 Mbyte at CPU clock
        dram=DramConfig(num_banks=8, interleave_bytes=64,
                        access_ns=60.0, bandwidth_mb_s=640.0),
        l1_hit_cycles=1.0,
        l2_hit_cycles=6.0,     # the 2-Mbyte L2 runs at the processor clock
        bus_overhead_bus_cycles=4.0),
    fabric=FabricConfig(
        kind=FabricKind.SWITCHED,
        snoop=SnoopConfig(bus_clock=_BUS_60, phase_cycles=2.0, queue_depth=4),
        data_bus_mb_s=640.0,       # unused on the switched fabric
        c2c_transfer_mb_s=480.0,
        c2c_latency_ns=50.0),
    node_memory_mb=512,
    operating_system="Linux",
)

SUN_ULTRA = MachineSpec(
    key="sun",
    system_type="SUN",
    cpu=ULTRASPARC_I,
    num_cpus=2,
    hierarchy=HierarchyConfig(
        cpu_clock=ULTRASPARC_I.clock,
        bus_clock=_BUS_84,
        l1=CacheGeometry(16 * 1024, 32, 1),        # direct-mapped on-chip
        l2=CacheGeometry(512 * 1024, 32, 1),
        dram=DramConfig(num_banks=4, interleave_bytes=64,
                        access_ns=95.0, bandwidth_mb_s=450.0),
        l1_hit_cycles=1.0,
        l2_hit_cycles=8.0,
        bus_overhead_bus_cycles=3.0),
    fabric=FabricConfig(
        kind=FabricKind.SPLIT_BUS,                 # UPA: packet-switched data
        snoop=SnoopConfig(bus_clock=_BUS_84, phase_cycles=3.0, queue_depth=2),
        data_bus_mb_s=1300.0,      # UPA: 16-byte data packets at 84 MHz
        c2c_transfer_mb_s=350.0,
        c2c_latency_ns=80.0),
    node_memory_mb=576,
    operating_system="Solaris 2.5",
)


def _pc_cluster(cpu: CpuSpec, bus: Clock) -> MachineSpec:
    return MachineSpec(
        key=f"pc{cpu.clock.mhz:g}",
        system_type="PC",
        cpu=cpu,
        num_cpus=2,
        hierarchy=HierarchyConfig(
            cpu_clock=cpu.clock,
            bus_clock=bus,
            l1=CacheGeometry(16 * 1024, 32, 4),
            l2=CacheGeometry(512 * 1024, 32, 4),
            dram=DramConfig(num_banks=2, interleave_bytes=64,
                            access_ns=110.0, bandwidth_mb_s=320.0),
            l1_hit_cycles=1.0,
            l2_hit_cycles=7.0,     # half-speed backside L2
            bus_overhead_bus_cycles=3.0),
        fabric=FabricConfig(
            kind=FabricKind.SHARED_BUS,            # one GTL+ bus, addr + data
            snoop=SnoopConfig(bus_clock=bus, phase_cycles=3.0, queue_depth=2),
            data_bus_mb_s=8 * bus.mhz,             # 64-bit bus at bus clock
            c2c_transfer_mb_s=8 * bus.mhz,
            c2c_latency_ns=90.0),
        node_memory_mb=128,
        operating_system="Linux",
    )


PC_CLUSTER_180 = _pc_cluster(PENTIUM_II_180, _BUS_60)
PC_CLUSTER_266 = _pc_cluster(PENTIUM_II_266, _BUS_66)

_MACHINES: Dict[str, MachineSpec] = {
    spec.key: spec
    for spec in (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180, PC_CLUSTER_266)
}


def machine(key: str) -> MachineSpec:
    """Look up a machine preset ('powermanna', 'sun', 'pc180', 'pc266')."""
    try:
        return _MACHINES[key.lower()]
    except KeyError:
        raise KeyError(
            f"unknown machine {key!r}; available: {sorted(_MACHINES)}"
        ) from None


def list_machines() -> List[str]:
    return sorted(_MACHINES)


def table1() -> List[Dict[str, str]]:
    """The three columns of the paper's Table 1 (PC at its two clocks is
    one column there; both variants are exposed here)."""
    return [spec.table1_row()
            for spec in (SUN_ULTRA, POWERMANNA, PC_CLUSTER_180)]
