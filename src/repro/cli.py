"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig9 --sizes 8 64 1024
    python -m repro logp
    python -m repro fig7 --scale 32 --sizes 8 24 64

Each command prints the same rows the benchmark harness produces; the
heavier figures accept ``--scale``/``--sizes`` to trade fidelity for
speed.

Observability::

    python -m repro trace fig9 --out trace.json     # Perfetto-loadable
    python -m repro metrics fig7 --out metrics.json
    python -m repro fig9 --trace t.json --metrics-out m.json
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Optional, Sequence

from repro.bench.hint import hint_on_machine
from repro.bench.matmult import matmult_sweep, smp_speedup
from repro.bench.microbench import comm_sweep, metric_value
from repro.bench.report import format_config_table, format_series, format_table
from repro.core.machine import PowerMannaSystem
from repro.core.specs import (
    PC_CLUSTER_180,
    PC_CLUSTER_266,
    POWERMANNA,
    SUN_ULTRA,
    table1,
)
from repro.obs import observe
from repro.obs.export import write_metrics_csv, write_metrics_json, write_trace
from repro.obs.metrics import format_series as format_metric_series

NODE_MACHINES = (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180, PC_CLUSTER_266)
DEFAULT_COMM_SIZES = (8, 64, 512, 4096, 16384)
DEFAULT_MATMULT_SIZES = (8, 24, 48, 96)


def _emit(text: str) -> None:
    print(text)
    print()


def cmd_list(_args) -> None:
    rows = [
        ["table1", "configuration of the test systems"],
        ["fig6", "HINT QUIPS curves (double + int)"],
        ["fig7", "MatMult MFLOPS by size (naive + transposed)"],
        ["fig8", "dual-processor MatMult speedup"],
        ["fig9", "one-way latency vs BIP/FM"],
        ["fig10", "send gap at saturation"],
        ["fig11", "unidirectional bandwidth"],
        ["fig12", "bidirectional bandwidth"],
        ["chaos", "fault-injection experiment from a plan file"],
        ["logp", "LogP parameters of the 8-node cluster"],
        ["trace", "run an experiment under span tracing (Perfetto JSON)"],
        ["metrics", "run an experiment under labeled metrics"],
        ["bench", "time the hot kernels; write BENCH_perf.json"],
    ]
    _emit(format_table(["command", "regenerates"], rows,
                       title="Available experiments"))


def cmd_table1(_args) -> None:
    _emit(format_config_table(table1()))


def cmd_fig6(args) -> None:
    for data_type in ("double", "int"):
        results = {spec.key: hint_on_machine(
            spec, data_type=data_type, scale=args.scale,
            max_subintervals=args.subintervals)
            for spec in NODE_MACHINES}
        marks = [p.subintervals for p in results["powermanna"].points]
        series = {key: [r.quips_at_subintervals(m) for m in marks]
                  for key, r in results.items()}
        _emit(format_series(series, marks, "subintervals",
                            title=f"Figure 6 ({data_type.upper()}): QUIPS"))


def cmd_fig7(args) -> None:
    sizes = args.sizes or list(DEFAULT_MATMULT_SIZES)
    for version in ("naive", "transposed"):
        series = {}
        for spec in (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180):
            results = matmult_sweep(spec, sizes, version, scale=args.scale)
            series[spec.key] = [r.mflops for r in results]
        _emit(format_series(series, sizes, "N",
                            title=f"Figure 7 ({version}): MFLOPS"))


def cmd_fig8(args) -> None:
    sizes = args.sizes or [40, 96]
    rows = []
    for spec in (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180):
        for version in ("naive", "transposed"):
            for n in sizes:
                rows.append([spec.key, version, n,
                             round(smp_speedup(spec, n, version,
                                               scale=args.scale), 3)])
    _emit(format_table(["machine", "version", "N", "speedup"], rows,
                       title="Figure 8: dual-processor speedup"))


def _fault_plan_from_args(args):
    """A FaultPlan from --fault-plan/--error-rate flags, or None."""
    plan_path = getattr(args, "fault_plan", None)
    error_rate = getattr(args, "error_rate", None)
    if plan_path is None and not error_rate:
        return None
    from repro.faults import FaultPlan, uniform_error_plan

    if plan_path is not None:
        plan = FaultPlan.load(plan_path)
        if error_rate:
            plan = FaultPlan(
                seed=plan.seed,
                faults=list(plan.faults)
                + list(uniform_error_plan(error_rate).faults))
    else:
        plan = uniform_error_plan(error_rate)
    seed = getattr(args, "fault_seed", None)
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan


def _comm_figure(metric: str, title: str, args) -> None:
    sizes = tuple(args.sizes) if args.sizes else DEFAULT_COMM_SIZES
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    plan = _fault_plan_from_args(args)
    if plan is None:
        fault_ctx = contextlib.nullcontext()
    else:
        from repro.faults import inject

        fault_ctx = inject(plan)
    if trace_path or metrics_path:
        with observe() as session, fault_ctx:
            sweep = comm_sweep(metric, sizes=sizes)
        if trace_path:
            write_trace(trace_path, session.tracer)
            print(f"wrote {trace_path}: "
                  f"{len(session.tracer.finished_spans())} spans, "
                  f"{len(session.tracer.message_ids())} messages")
        if metrics_path:
            write_metrics_json(metrics_path, session.metrics)
            print(f"wrote {metrics_path}: {len(session.metrics)} series")
    else:
        with fault_ctx:
            sweep = comm_sweep(metric, sizes=sizes)
    series = {system: [metric_value(p, metric) for p in points]
              for system, points in sweep.items()}
    _emit(format_series(series, list(sizes), "bytes", title=title))


def cmd_fig9(args) -> None:
    _comm_figure("latency", "Figure 9: one-way latency (us)", args)


def cmd_fig10(args) -> None:
    _comm_figure("gap", "Figure 10: send gap at saturation (us)", args)


def cmd_fig11(args) -> None:
    _comm_figure("unidir", "Figure 11: unidirectional bandwidth (MB/s)",
                 args)


def cmd_fig12(args) -> None:
    _comm_figure("bidir", "Figure 12: bidirectional bandwidth (MB/s)", args)


def cmd_chaos(args) -> None:
    from repro.faults import FaultPlan, uniform_error_plan
    from repro.faults.chaos import format_report, run_chaos

    if args.plan:
        plan = FaultPlan.load(args.plan)
    elif args.link_error_rate:
        plan = uniform_error_plan(args.link_error_rate)
    else:
        plan = FaultPlan()
    if args.seed is not None:
        plan = plan.with_seed(args.seed)

    def run():
        return run_chaos(plan,
                         topology=args.topology,
                         protocol=args.protocol,
                         flows=args.flows,
                         messages=args.messages,
                         nbytes=args.nbytes,
                         window=args.window,
                         error_rate=args.error_rate)

    if args.trace or args.metrics_out:
        with observe() as session:
            report = run()
        if args.trace:
            write_trace(args.trace, session.tracer)
            print(f"wrote {args.trace}: "
                  f"{len(session.tracer.finished_spans())} spans, "
                  f"{len(session.tracer.message_ids())} messages")
        if args.metrics_out:
            write_metrics_json(args.metrics_out, session.metrics)
            print(f"wrote {args.metrics_out}: {len(session.metrics)} series")
    else:
        report = run()
    _emit(format_report(report))
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"wrote {args.report_out}")


def cmd_bench(args) -> None:
    from repro.perf import format_bench_table, run_bench, write_bench_json

    repeats = 1 if args.quick else args.repeats
    results = run_bench(repeats=repeats, kernels=args.kernels or None)
    _emit(format_bench_table(results))
    write_bench_json(args.out, results, quick=args.quick)
    print(f"wrote {args.out}: {len(results)} kernels, "
          f"best of {repeats} repeat(s)")


def cmd_logp(args) -> None:
    system = PowerMannaSystem.cluster()
    params = system.logp(0, 1, args.nbytes)
    _emit(format_table(
        ["parameter", "value"],
        [["message size", f"{params.nbytes} B"],
         ["one-way latency", f"{params.latency_ns / 1e3:.2f} us"],
         ["send overhead o_s", f"{params.overhead_send_ns / 1e3:.2f} us"],
         ["gap g", f"{params.gap_ns / 1e3:.2f} us"],
         ["implied bandwidth", f"{params.bandwidth_mb_s:.1f} MB/s"]],
        title="LogP parameters, 8-node PowerMANNA"))


# Experiments that drive the discrete-event network (and so produce spans);
# the purely trace-driven node experiments only produce metrics.
TRACEABLE = ("fig9", "fig10", "fig11", "fig12", "logp")
OBSERVABLE = ("fig6", "fig7", "fig8") + TRACEABLE


def cmd_trace(args) -> None:
    with observe(span_limit=args.span_limit) as session:
        _COMMANDS[args.experiment](args)
    tracer = session.tracer
    write_trace(args.out, tracer)

    totals: dict = {}
    for mid in tracer.message_ids():
        for stage, dur in tracer.breakdown(mid):
            totals[stage] = totals.get(stage, 0.0) + dur
    grand = sum(totals.values()) or 1.0
    rows = [[stage, f"{ns / 1e3:.2f}", f"{100.0 * ns / grand:.1f}%"]
            for stage, ns in sorted(totals.items(), key=lambda kv: -kv[1])]
    _emit(format_table(
        ["stage", "total (us)", "share"], rows,
        title=f"Critical path across {len(tracer.message_ids())} messages"))
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"wrote {args.out}: {len(tracer.finished_spans())} spans over "
          f"{len(tracer.message_ids())} messages{dropped}")


def cmd_metrics(args) -> None:
    with observe() as session:
        _COMMANDS[args.experiment](args)
    registry = session.metrics

    rows = []
    for inst in sorted(registry.instruments(),
                       key=lambda i: (i.name, -i.value)):
        series = format_metric_series(inst.name, inst.labels)
        if inst.kind == "histogram":
            s = inst.summary()
            value = (f"n={s['count']} mean={s['mean']:.1f} "
                     f"p50={s['p50']:.1f} p99={s['p99']:.1f}")
        else:
            value = f"{inst.value:g}"
        rows.append([series, inst.kind, value])
    shown = rows if args.top <= 0 else rows[:args.top]
    _emit(format_table(["series", "kind", "value"], shown,
                       title=f"Metrics for {args.experiment} "
                             f"({len(rows)} series)"))
    if len(shown) < len(rows):
        print(f"... {len(rows) - len(shown)} more series "
              f"(raise --top or use --out)")
    if args.out:
        if args.csv:
            write_metrics_csv(args.out, registry)
        else:
            write_metrics_json(args.out, registry)
        print(f"wrote {args.out}: {len(registry)} series")


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    """The union of options the wrapped experiment commands read."""
    parser.add_argument("--scale", type=int, default=16)
    parser.add_argument("--sizes", type=int, nargs="*", default=None)
    parser.add_argument("--subintervals", type=int, default=4096)
    parser.add_argument("--nbytes", type=int, default=8)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate PowerMANNA (HPCA 2000) tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("table1", help="Table 1: system configurations")

    fig6 = sub.add_parser("fig6", help="HINT QUIPS curves")
    fig6.add_argument("--scale", type=int, default=16)
    fig6.add_argument("--subintervals", type=int, default=4096)

    for name, helptext in (("fig7", "MatMult MFLOPS"),
                           ("fig8", "SMP speedup")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--scale", type=int, default=16)
        p.add_argument("--sizes", type=int, nargs="*", default=None)

    for name, helptext in (("fig9", "one-way latency"),
                           ("fig10", "send gap"),
                           ("fig11", "unidirectional bandwidth"),
                           ("fig12", "bidirectional bandwidth")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--sizes", type=int, nargs="*", default=None)
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="record span tracing; write a Chrome trace-event "
                            "JSON (load in Perfetto / chrome://tracing)")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write labeled metrics of the run as JSON")
        p.add_argument("--error-rate", type=float, default=None,
                       help="inject uniform link corruption at this "
                            "probability while measuring")
        p.add_argument("--fault-plan", metavar="FILE", default=None,
                       help="run the measurement under this fault plan "
                            "(JSON; see the chaos subcommand)")
        p.add_argument("--fault-seed", type=int, default=None,
                       help="override the fault plan's seed")

    chaos = sub.add_parser(
        "chaos", help="run a fault-injection experiment from a plan file")
    chaos.add_argument("--plan", metavar="FILE", default=None,
                       help="fault plan JSON (seed + fault specs)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="override the plan's seed")
    chaos.add_argument("--topology", choices=("cluster", "manna", "grid"),
                       default="cluster")
    chaos.add_argument("--protocol", choices=("sliding", "stopwait"),
                       default="sliding")
    chaos.add_argument("--flows", type=int, default=4)
    chaos.add_argument("--messages", type=int, default=8,
                       help="messages per flow")
    chaos.add_argument("--nbytes", type=int, default=1024)
    chaos.add_argument("--window", type=int, default=8,
                       help="sliding-window size")
    chaos.add_argument("--error-rate", type=float, default=0.0,
                       help="protocol-level corruption probability")
    chaos.add_argument("--link-error-rate", type=float, default=0.0,
                       help="shorthand: uniform link_corrupt plan at this "
                            "probability (ignored when --plan is given)")
    chaos.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Perfetto trace of the chaos run")
    chaos.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write labeled metrics of the run as JSON")
    chaos.add_argument("--report-out", metavar="FILE", default=None,
                       help="write the chaos report as JSON")

    logp = sub.add_parser("logp", help="LogP parameters")
    logp.add_argument("--nbytes", type=int, default=8)

    bench = sub.add_parser(
        "bench", help="time the hot kernels and write BENCH_perf.json")
    bench.add_argument("--quick", action="store_true",
                       help="single repeat per kernel (CI smoke mode; "
                            "kernel sizes are unchanged)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats per kernel (best is reported)")
    bench.add_argument("--kernels", nargs="*", default=None,
                       help="subset of kernels to run (default: all)")
    bench.add_argument("--out", default="BENCH_perf.json",
                       help="where to write the benchmark document")

    trace = sub.add_parser(
        "trace", help="run an experiment with span tracing enabled")
    trace.add_argument("experiment", choices=TRACEABLE)
    trace.add_argument("--out", default="trace.json",
                       help="trace-event JSON output path")
    trace.add_argument("--span-limit", type=int, default=1_000_000)
    _add_experiment_options(trace)

    metrics = sub.add_parser(
        "metrics", help="run an experiment with labeled metrics enabled")
    metrics.add_argument("experiment", choices=OBSERVABLE)
    metrics.add_argument("--out", default=None,
                         help="write the full metrics dump here")
    metrics.add_argument("--csv", action="store_true",
                         help="write --out as CSV instead of JSON")
    metrics.add_argument("--top", type=int, default=40,
                         help="series rows to print (<= 0 for all)")
    _add_experiment_options(metrics)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "table1": cmd_table1,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "chaos": cmd_chaos,
    "logp": cmd_logp,
    "bench": cmd_bench,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
