"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig9 --sizes 8 64 1024
    python -m repro logp
    python -m repro fig7 --scale 32 --sizes 8 24 64

Each command prints the same rows the benchmark harness produces; the
heavier figures accept ``--scale``/``--sizes`` to trade fidelity for
speed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.hint import hint_on_machine
from repro.bench.matmult import matmult_sweep, smp_speedup
from repro.bench.microbench import comm_sweep, metric_value
from repro.bench.report import format_config_table, format_series, format_table
from repro.core.machine import PowerMannaSystem
from repro.core.specs import (
    PC_CLUSTER_180,
    PC_CLUSTER_266,
    POWERMANNA,
    SUN_ULTRA,
    table1,
)

NODE_MACHINES = (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180, PC_CLUSTER_266)
DEFAULT_COMM_SIZES = (8, 64, 512, 4096, 16384)
DEFAULT_MATMULT_SIZES = (8, 24, 48, 96)


def _emit(text: str) -> None:
    print(text)
    print()


def cmd_list(_args) -> None:
    rows = [
        ["table1", "configuration of the test systems"],
        ["fig6", "HINT QUIPS curves (double + int)"],
        ["fig7", "MatMult MFLOPS by size (naive + transposed)"],
        ["fig8", "dual-processor MatMult speedup"],
        ["fig9", "one-way latency vs BIP/FM"],
        ["fig10", "send gap at saturation"],
        ["fig11", "unidirectional bandwidth"],
        ["fig12", "bidirectional bandwidth"],
        ["logp", "LogP parameters of the 8-node cluster"],
    ]
    _emit(format_table(["command", "regenerates"], rows,
                       title="Available experiments"))


def cmd_table1(_args) -> None:
    _emit(format_config_table(table1()))


def cmd_fig6(args) -> None:
    for data_type in ("double", "int"):
        results = {spec.key: hint_on_machine(
            spec, data_type=data_type, scale=args.scale,
            max_subintervals=args.subintervals)
            for spec in NODE_MACHINES}
        marks = [p.subintervals for p in results["powermanna"].points]
        series = {key: [r.quips_at_subintervals(m) for m in marks]
                  for key, r in results.items()}
        _emit(format_series(series, marks, "subintervals",
                            title=f"Figure 6 ({data_type.upper()}): QUIPS"))


def cmd_fig7(args) -> None:
    sizes = args.sizes or list(DEFAULT_MATMULT_SIZES)
    for version in ("naive", "transposed"):
        series = {}
        for spec in (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180):
            results = matmult_sweep(spec, sizes, version, scale=args.scale)
            series[spec.key] = [r.mflops for r in results]
        _emit(format_series(series, sizes, "N",
                            title=f"Figure 7 ({version}): MFLOPS"))


def cmd_fig8(args) -> None:
    sizes = args.sizes or [40, 96]
    rows = []
    for spec in (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180):
        for version in ("naive", "transposed"):
            for n in sizes:
                rows.append([spec.key, version, n,
                             round(smp_speedup(spec, n, version,
                                               scale=args.scale), 3)])
    _emit(format_table(["machine", "version", "N", "speedup"], rows,
                       title="Figure 8: dual-processor speedup"))


def _comm_figure(metric: str, title: str, args) -> None:
    sizes = tuple(args.sizes) if args.sizes else DEFAULT_COMM_SIZES
    sweep = comm_sweep(metric, sizes=sizes)
    series = {system: [metric_value(p, metric) for p in points]
              for system, points in sweep.items()}
    _emit(format_series(series, list(sizes), "bytes", title=title))


def cmd_fig9(args) -> None:
    _comm_figure("latency", "Figure 9: one-way latency (us)", args)


def cmd_fig10(args) -> None:
    _comm_figure("gap", "Figure 10: send gap at saturation (us)", args)


def cmd_fig11(args) -> None:
    _comm_figure("unidir", "Figure 11: unidirectional bandwidth (MB/s)",
                 args)


def cmd_fig12(args) -> None:
    _comm_figure("bidir", "Figure 12: bidirectional bandwidth (MB/s)", args)


def cmd_logp(args) -> None:
    system = PowerMannaSystem.cluster()
    params = system.logp(0, 1, args.nbytes)
    _emit(format_table(
        ["parameter", "value"],
        [["message size", f"{params.nbytes} B"],
         ["one-way latency", f"{params.latency_ns / 1e3:.2f} us"],
         ["send overhead o_s", f"{params.overhead_send_ns / 1e3:.2f} us"],
         ["gap g", f"{params.gap_ns / 1e3:.2f} us"],
         ["implied bandwidth", f"{params.bandwidth_mb_s:.1f} MB/s"]],
        title="LogP parameters, 8-node PowerMANNA"))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate PowerMANNA (HPCA 2000) tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("table1", help="Table 1: system configurations")

    fig6 = sub.add_parser("fig6", help="HINT QUIPS curves")
    fig6.add_argument("--scale", type=int, default=16)
    fig6.add_argument("--subintervals", type=int, default=4096)

    for name, helptext in (("fig7", "MatMult MFLOPS"),
                           ("fig8", "SMP speedup")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--scale", type=int, default=16)
        p.add_argument("--sizes", type=int, nargs="*", default=None)

    for name, helptext in (("fig9", "one-way latency"),
                           ("fig10", "send gap"),
                           ("fig11", "unidirectional bandwidth"),
                           ("fig12", "bidirectional bandwidth")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--sizes", type=int, nargs="*", default=None)

    logp = sub.add_parser("logp", help="LogP parameters")
    logp.add_argument("--nbytes", type=int, default=8)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "table1": cmd_table1,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "logp": cmd_logp,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
