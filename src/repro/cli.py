"""Command-line interface: regenerate any table or figure.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig9 --sizes 8 64 1024
    python -m repro logp
    python -m repro fig7 --scale 32 --sizes 8 24 64

Each command prints the same rows the benchmark harness produces; the
heavier figures accept ``--scale``/``--sizes`` to trade fidelity for
speed.

Observability::

    python -m repro trace fig9 --out trace.json     # Perfetto-loadable
    python -m repro metrics fig7 --out metrics.json
    python -m repro fig9 --trace t.json --metrics-out m.json

Parallelism and caching::

    python -m repro fig7 --jobs 4                   # fan points out
    python -m repro chaos --seeds 16 --jobs 4       # multi-seed campaign
    python -m repro fig9 --no-cache                 # force recomputation

Every sweep-style command farms its independent points over ``--jobs``
worker processes and consults a content-addressed result cache
(``~/.cache/repro`` or ``--cache-dir``); output is byte-identical at any
``--jobs`` level, and re-running an unchanged figure is a cache hit.

Resilient execution::

    python -m repro fig9 --jobs 4 --point-timeout 60   # hang detection
    python -m repro chaos --seeds 16 --journal camp.jsonl
    python -m repro chaos --seeds 16 --resume camp.jsonl

Every sweep run is journaled (``--journal FILE`` to pick the path,
``--no-journal`` to disable); crashed or hung workers are retried up to
``--retries`` times, repeatedly-failing points are quarantined and
reported at the end (exit 3), and Ctrl-C stops cleanly at a point
boundary (exit 130) with a ``--resume`` hint.  A resumed run skips the
journaled points and produces byte-identical artifacts to an
uninterrupted one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.bench.hint import NODE_SWEEP_MODULES, hint_point_task
from repro.bench.matmult import matmult_point_task, smp_point_task
from repro.bench.microbench import comm_sweep, metric_value
from repro.bench.report import format_config_table, format_series, format_table
from repro.core.machine import PowerMannaSystem
from repro.core.specs import (
    PC_CLUSTER_180,
    PC_CLUSTER_266,
    POWERMANNA,
    SUN_ULTRA,
    table1,
)
from repro.obs import DEFAULT_SAMPLE_INTERVAL_NS, observe
from repro.obs.export import (
    write_metrics_csv,
    write_metrics_json,
    write_timeline_json,
    write_trace,
)
from repro.obs.metrics import format_series as format_metric_series
from repro.parallel import (
    PoisonedSweepError,
    ResultCache,
    SuperviseConfig,
    SweepInterrupted,
    run_sweep,
)

NODE_MACHINES = (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180, PC_CLUSTER_266)
DEFAULT_COMM_SIZES = (8, 64, 512, 4096, 16384)
DEFAULT_MATMULT_SIZES = (8, 24, 48, 96)


def _emit(text: str) -> None:
    print(text)
    print()


def _supervise_config(args) -> Optional[SuperviseConfig]:
    """The shared --retries/--point-timeout/--journal/--resume surface;
    ``None`` for commands without the supervised flags."""
    if not hasattr(args, "retries"):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    return SuperviseConfig(
        retries=args.retries,
        point_timeout_s=args.point_timeout,
        enable_journal=not args.no_journal,
        journal_path=args.journal,
        journal_dir=(os.path.join(cache_dir, "journals")
                     if cache_dir else None),
        resume_from=args.resume)


def _sweep_options(args) -> dict:
    """The shared --jobs/--no-cache/--cache-dir surface as run_sweep
    keywords; commands without the flags fall back to serial, uncached."""
    cache = None
    if hasattr(args, "no_cache") and not args.no_cache:
        cache = ResultCache(getattr(args, "cache_dir", None))
    options = {"jobs": getattr(args, "jobs", 1) or 1, "cache": cache}
    supervise = _supervise_config(args)
    if supervise is not None:
        options["supervise"] = supervise
    return options


def _report_cache(cache: Optional[ResultCache]) -> None:
    """Cache accounting goes to stderr so stdout stays byte-comparable
    between cold and warm runs."""
    if cache is not None and (cache.hits or cache.misses):
        print(cache.stats_line(), file=sys.stderr)


def _report_supervision(supervise: Optional[SuperviseConfig]) -> None:
    """Supervision accounting also goes to stderr, and only when the
    supervisor actually had to do something — a clean run's streams are
    byte-identical with or without supervision."""
    if supervise is None or supervise.stats is None:
        return
    if supervise.stats.any_events():
        print(supervise.stats.summary_line(), file=sys.stderr)


def _write_session_artifacts(session, trace_path: Optional[str],
                             metrics_path: Optional[str],
                             timeline_path: Optional[str] = None,
                             partial: bool = False) -> None:
    """The one write-and-print block every traced/metered command shares.

    ``partial`` marks artifacts flushed after an interrupt (the metrics
    JSON array schema cannot carry a marker, but it is still flushed
    atomically)."""
    suffix = " (partial)" if partial else ""
    if trace_path:
        write_trace(trace_path, session.tracer, partial=partial)
        print(f"wrote {trace_path}: "
              f"{len(session.tracer.finished_spans())} spans, "
              f"{len(session.tracer.message_ids())} messages{suffix}")
    if metrics_path:
        write_metrics_json(metrics_path, session.metrics)
        print(f"wrote {metrics_path}: {len(session.metrics)} series"
              f"{suffix}")
    if timeline_path:
        write_timeline_json(timeline_path, session.timeline,
                            partial=partial)
        print(f"wrote {timeline_path}: {len(session.timeline)} series"
              f"{suffix}")


def _sampling_interval(args) -> Optional[float]:
    """The --sample-interval value; timeline/health flags imply sampling
    at the default interval when no explicit interval was given."""
    interval = getattr(args, "sample_interval", None)
    if interval is not None:
        return float(interval)
    if getattr(args, "timeline_out", None) or getattr(args, "health", None):
        return DEFAULT_SAMPLE_INTERVAL_NS
    return None


def _check_health(args, session) -> int:
    """Evaluate --health gates against the session; 1 on violation."""
    health_path = getattr(args, "health", None)
    if not health_path:
        return 0
    from repro.obs.health import HealthSpec, format_health

    report = HealthSpec.load(health_path).evaluate(
        timeline=session.timeline, metrics=session.metrics)
    _emit(format_health(report))
    return 0 if report.ok else 1


def cmd_list(_args) -> None:
    rows = [
        ["table1", "configuration of the test systems"],
        ["fig6", "HINT QUIPS curves (double + int)"],
        ["fig7", "MatMult MFLOPS by size (naive + transposed)"],
        ["fig8", "dual-processor MatMult speedup"],
        ["fig9", "one-way latency vs BIP/FM"],
        ["fig10", "send gap at saturation"],
        ["fig11", "unidirectional bandwidth"],
        ["fig12", "bidirectional bandwidth"],
        ["chaos", "fault-injection experiment from a plan file"],
        ["traffic", "offered-load patterns on any topology"],
        ["logp", "LogP parameters of the 8-node cluster"],
        ["trace", "run an experiment under span tracing (Perfetto JSON)"],
        ["metrics", "run an experiment under labeled metrics"],
        ["report", "run fully observed; render an HTML dashboard"],
        ["bench", "time the hot kernels; write BENCH_perf.json"],
    ]
    _emit(format_table(["command", "regenerates"], rows,
                       title="Available experiments"))


def cmd_table1(_args) -> None:
    _emit(format_config_table(table1()))


def _node_figure(args, body) -> Optional[int]:
    """Run a trace-driven node figure, optionally under a sampling session.

    The node kernels never build a Simulator, so their timelines stay
    empty — the flags exist so every figure shares one observability
    surface (and so a HealthSpec with metric rules still gates them).
    """
    interval = _sampling_interval(args)
    if not interval:
        body()
        return 0
    with observe(sample_interval_ns=interval) as session:
        body()
    _write_session_artifacts(session, None, None,
                             getattr(args, "timeline_out", None))
    return _check_health(args, session)


def cmd_fig6(args) -> Optional[int]:
    def body() -> None:
        sweep = _sweep_options(args)
        points = [((data_type, spec.key),
                   {"spec": spec, "data_type": data_type,
                    "scale": args.scale,
                    "max_subintervals": args.subintervals})
                  for data_type in ("double", "int")
                  for spec in NODE_MACHINES]
        outcomes = run_sweep("fig6", points, hint_point_task,
                             modules=NODE_SWEEP_MODULES, **sweep)
        results = {outcome.key: outcome.value for outcome in outcomes}
        for data_type in ("double", "int"):
            marks = [p.subintervals
                     for p in results[(data_type, "powermanna")].points]
            series = {spec.key: [results[(data_type, spec.key)]
                                 .quips_at_subintervals(m) for m in marks]
                      for spec in NODE_MACHINES}
            _emit(format_series(
                series, marks, "subintervals",
                title=f"Figure 6 ({data_type.upper()}): QUIPS"))
        _report_cache(sweep["cache"])
        _report_supervision(sweep.get("supervise"))

    return _node_figure(args, body)


def cmd_fig7(args) -> Optional[int]:
    def body() -> None:
        sizes = args.sizes or list(DEFAULT_MATMULT_SIZES)
        sweep = _sweep_options(args)
        machines = (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180)
        points = [((version, spec.key, n),
                   {"spec": spec, "n": n, "version": version,
                    "scale": args.scale})
                  for version in ("naive", "transposed")
                  for spec in machines
                  for n in sizes]
        outcomes = run_sweep("fig7", points, matmult_point_task,
                             modules=NODE_SWEEP_MODULES, **sweep)
        results = {outcome.key: outcome.value for outcome in outcomes}
        for version in ("naive", "transposed"):
            series = {spec.key: [results[(version, spec.key, n)].mflops
                                 for n in sizes]
                      for spec in machines}
            _emit(format_series(series, sizes, "N",
                                title=f"Figure 7 ({version}): MFLOPS"))
        _report_cache(sweep["cache"])
        _report_supervision(sweep.get("supervise"))

    return _node_figure(args, body)


def cmd_fig8(args) -> Optional[int]:
    def body() -> None:
        sizes = args.sizes or [40, 96]
        sweep = _sweep_options(args)
        machines = (POWERMANNA, SUN_ULTRA, PC_CLUSTER_180)
        points = [((spec.key, version, n),
                   {"spec": spec, "n": n, "version": version,
                    "scale": args.scale})
                  for spec in machines
                  for version in ("naive", "transposed")
                  for n in sizes]
        outcomes = run_sweep("fig8", points, smp_point_task,
                             modules=NODE_SWEEP_MODULES, **sweep)
        rows = [[key[0], key[1], key[2], round(outcome.value, 3)]
                for key, outcome in ((o.key, o) for o in outcomes)]
        _emit(format_table(["machine", "version", "N", "speedup"], rows,
                           title="Figure 8: dual-processor speedup"))
        _report_cache(sweep["cache"])
        _report_supervision(sweep.get("supervise"))

    return _node_figure(args, body)


def _fault_plan_from_args(args):
    """A FaultPlan from --fault-plan/--error-rate flags, or None."""
    plan_path = getattr(args, "fault_plan", None)
    error_rate = getattr(args, "error_rate", None)
    if plan_path is None and not error_rate:
        return None
    from repro.faults import FaultPlan, uniform_error_plan

    if plan_path is not None:
        plan = FaultPlan.load(plan_path)
        if error_rate:
            plan = FaultPlan(
                seed=plan.seed,
                faults=list(plan.faults)
                + list(uniform_error_plan(error_rate).faults))
    else:
        plan = uniform_error_plan(error_rate)
    seed = getattr(args, "fault_seed", None)
    if seed is not None:
        plan = plan.with_seed(seed)
    return plan


def _topology_spec(args):
    """The --topology argument as a TopologySpec, or None (the default
    8-node cluster, whose sweep fingerprints must stay exactly as they
    were before topologies existed)."""
    text = getattr(args, "topology", None)
    if not text:
        return None
    from repro.network.topo import parse_topology

    return parse_topology(text)


def _comm_figure(metric: str, title: str, args) -> Optional[int]:
    sizes = tuple(args.sizes) if args.sizes else DEFAULT_COMM_SIZES
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    timeline_path = getattr(args, "timeline_out", None)
    interval = _sampling_interval(args)
    plan = _fault_plan_from_args(args)
    topology = _topology_spec(args)
    options = _sweep_options(args)
    # The title deliberately stays topology-free: `fig9` and
    # `fig9 --topology cluster` must be byte-identical (the CI smoke
    # check pins the spec path to the legacy path this way).
    rc = 0
    if trace_path or metrics_path or interval:
        with observe(sample_interval_ns=interval) as session:
            sweep = comm_sweep(metric, sizes=sizes, fault_plan=plan,
                               topology=topology, **options)
        series = {system: [metric_value(p, metric) for p in points]
                  for system, points in sweep.items()}
        _emit(format_series(series, list(sizes), "bytes", title=title))
        _write_session_artifacts(session, trace_path, metrics_path,
                                 timeline_path)
        rc = _check_health(args, session)
    else:
        sweep = comm_sweep(metric, sizes=sizes, fault_plan=plan,
                           topology=topology, **options)
        series = {system: [metric_value(p, metric) for p in points]
                  for system, points in sweep.items()}
        _emit(format_series(series, list(sizes), "bytes", title=title))
    _report_cache(options["cache"])
    _report_supervision(options.get("supervise"))
    return rc


def cmd_fig9(args) -> Optional[int]:
    return _comm_figure("latency", "Figure 9: one-way latency (us)", args)


def cmd_fig10(args) -> Optional[int]:
    return _comm_figure("gap", "Figure 10: send gap at saturation (us)",
                        args)


def cmd_fig11(args) -> Optional[int]:
    return _comm_figure("unidir",
                        "Figure 11: unidirectional bandwidth (MB/s)", args)


def cmd_fig12(args) -> Optional[int]:
    return _comm_figure("bidir",
                        "Figure 12: bidirectional bandwidth (MB/s)", args)


def cmd_chaos(args) -> Optional[int]:
    from repro.faults import FaultPlan, uniform_error_plan
    from repro.faults.chaos import format_report, run_chaos

    if args.plan:
        plan = FaultPlan.load(args.plan)
    elif args.link_error_rate:
        plan = uniform_error_plan(args.link_error_rate)
    else:
        plan = FaultPlan()
    if args.seed is not None:
        plan = plan.with_seed(args.seed)

    if args.seeds:
        return _chaos_campaign(plan, args)

    def run():
        return run_chaos(plan,
                         topology=args.topology,
                         protocol=args.protocol,
                         flows=args.flows,
                         messages=args.messages,
                         nbytes=args.nbytes,
                         window=args.window,
                         error_rate=args.error_rate,
                         ack_error_rate=getattr(args, "ack_error_rate",
                                                None))

    interval = _sampling_interval(args)
    rc = 0
    if args.trace or args.metrics_out or interval:
        session = None
        try:
            with observe(sample_interval_ns=interval) as session:
                report = run()
        except KeyboardInterrupt:
            # Flush whatever the session observed before the interrupt,
            # marked partial, instead of dying with a bare traceback.
            print("interrupted: flushing partial artifacts",
                  file=sys.stderr)
            if session is not None:
                _write_session_artifacts(
                    session, args.trace, args.metrics_out,
                    getattr(args, "timeline_out", None), partial=True)
            return 130
        _emit(format_report(report))
        _write_session_artifacts(session, args.trace, args.metrics_out,
                                 getattr(args, "timeline_out", None))
        rc = _check_health(args, session)
    else:
        report = run()
        _emit(format_report(report))
    if args.report_out:
        from repro.atomicio import atomic_write_text

        atomic_write_text(args.report_out, report.to_json() + "\n")
        print(f"wrote {args.report_out}")
    return rc


def _chaos_campaign(plan, args) -> Optional[int]:
    """``chaos --seeds N``: a multi-seed campaign over the sweep scheduler."""
    from repro.parallel.campaign import format_campaign, run_campaign

    options = _sweep_options(args)

    def run():
        return run_campaign(plan, args.seeds,
                            topology=args.topology,
                            protocol=args.protocol,
                            flows=args.flows,
                            messages=args.messages,
                            nbytes=args.nbytes,
                            window=args.window,
                            error_rate=args.error_rate,
                            ack_error_rate=getattr(args, "ack_error_rate",
                                                   None),
                            **options)

    interval = _sampling_interval(args)
    rc = 0
    if args.trace or args.metrics_out or interval:
        with observe(sample_interval_ns=interval) as session:
            report = run()
        _emit(format_campaign(report))
        _write_session_artifacts(session, args.trace, args.metrics_out,
                                 getattr(args, "timeline_out", None))
        rc = _check_health(args, session)
    else:
        report = run()
        _emit(format_campaign(report))
    if args.report_out:
        from repro.atomicio import atomic_write_text

        atomic_write_text(args.report_out, report.to_json() + "\n")
        print(f"wrote {args.report_out}")
    _report_cache(options["cache"])
    _report_supervision(options.get("supervise"))
    return rc


def _default_bench_out(quick: bool) -> str:
    return "BENCH_perf.quick.json" if quick else "BENCH_perf.json"


def cmd_bench(args) -> Optional[int]:
    from repro.perf import (
        compare_payloads,
        format_bench_table,
        format_compare_table,
        load_payload,
        run_bench,
        write_bench_json,
    )

    if args.list:
        from repro.perf.harness import KERNELS

        for name in KERNELS:
            print(name)
        return 0

    if args.kernels:
        from repro.perf.harness import KERNELS

        unknown = [n for n in args.kernels if n not in KERNELS]
        if unknown:
            print(f"unknown kernel(s) {', '.join(unknown)}; "
                  f"known: {', '.join(KERNELS)} (see bench --list)",
                  file=sys.stderr)
            return 2

    if args.compare:
        old_path, new_path = args.compare
        deltas, regressions = compare_payloads(
            load_payload(old_path), load_payload(new_path),
            threshold=args.threshold)
        _emit(format_compare_table(deltas, args.threshold))
        if regressions:
            names = ", ".join(d.name for d in regressions)
            print(f"FAIL: {len(regressions)} kernel(s) regressed beyond "
                  f"{args.threshold * 100.0:.0f}%: {names}")
            return 1
        print(f"OK: no kernel regressed beyond "
              f"{args.threshold * 100.0:.0f}%")
        return 0

    out = args.out if args.out is not None else _default_bench_out(args.quick)
    if args.quick and args.out is None:
        # A quick run must never silently clobber a recorded full run:
        # the default quick path refuses if it holds a non-quick payload.
        import json as _json
        import os as _os

        if _os.path.exists(out):
            try:
                existing_quick = _json.load(open(out)).get("quick", True)
            except (OSError, ValueError):
                existing_quick = True
            if existing_quick is False:
                print(f"refusing to overwrite {out}: it holds a full "
                      f"(non-quick) benchmark run; pass --out explicitly "
                      f"to replace it", file=sys.stderr)
                return 2

    repeats = 1 if args.quick else args.repeats
    supervise = _supervise_config(args)
    if (supervise is not None and not supervise.enable_journal
            and not supervise.resume_from
            and (getattr(args, "jobs", 1) or 1) <= 1):
        # --no-journal at jobs=1: the legacy measured loop, whose
        # Ctrl-C path flushes a partial payload below.
        supervise = None
    from repro.perf.harness import BenchInterrupted

    try:
        results = run_bench(repeats=repeats, kernels=args.kernels or None,
                            jobs=getattr(args, "jobs", 1) or 1,
                            supervise=supervise)
    except BenchInterrupted as exc:
        if exc.results:
            write_bench_json(out, exc.results, quick=args.quick,
                             partial=True)
            print(f"interrupted: wrote partial {out} "
                  f"({len(exc.results)} kernel(s) finished)",
                  file=sys.stderr)
        else:
            print("interrupted before any kernel finished",
                  file=sys.stderr)
        return 130
    _emit(format_bench_table(results))
    write_bench_json(out, results, quick=args.quick)
    print(f"wrote {out}: {len(results)} kernels, "
          f"best of {repeats} repeat(s)")
    _report_supervision(supervise)
    return 0


def _traffic_qos(args):
    """QosConfig from --arbiter/--classes, or None — the legacy path.

    None keeps the crossbars on the original ``Resource`` arbiters, so
    the default invocation stays byte-identical to the pre-QoS CLI.
    """
    from repro.bench.traffic import parse_classes
    from repro.network.qos import QosConfig

    classes_text = getattr(args, "classes", None)
    arbiter = getattr(args, "arbiter", None) or "fifo"
    if not classes_text and arbiter == "fifo":
        return None
    if classes_text:
        return QosConfig(arbiter=arbiter, classes=parse_classes(classes_text))
    return QosConfig(arbiter=arbiter)


def _traffic_load(args, spec) -> Optional[int]:
    """The offered-load surface: --load sweeps under run_sweep."""
    from repro.bench.traffic import load_sweep, parse_loads, parse_mix
    from repro.network.qos import AdaptiveConfig

    qos = _traffic_qos(args)
    mix = parse_mix(args.pattern_mix) if args.pattern_mix else None
    loads = parse_loads(args.load)
    adaptive = (AdaptiveConfig(depth_threshold=args.adaptive_depth)
                if args.adaptive else None)
    plan = _fault_plan_from_args(args)
    options = _sweep_options(args)
    results = load_sweep(
        spec, loads, qos=qos, mix=mix, messages=args.messages,
        message_bytes=args.nbytes, seed=args.seed,
        closed_loop=args.closed_loop, window=args.window,
        adaptive=adaptive, fault_plan=plan,
        jobs=options["jobs"], cache=options["cache"],
        supervise=options.get("supervise"))
    rows = []
    for result in results:
        for cls in result["classes"]:
            rows.append([f"{result['load']:.2f}", cls["name"],
                         f"{cls['offered_mb_s']:.1f}",
                         f"{cls['goodput_mb_s']:.1f}",
                         f"{cls['latency_p50_ns'] / 1e3:.1f}",
                         f"{cls['latency_p99_ns'] / 1e3:.1f}",
                         result["collisions"], result["reroutes"]])
    arbiter = results[0]["arbiter"] if results else "fifo"
    _emit(format_table(
        ["load", "class", "offered MB/s", "goodput MB/s", "p50 (us)",
         "p99 (us)", "collisions", "reroutes"], rows,
        title=f"Offered load vs goodput/latency on {spec.label()} "
              f"({arbiter} arbiter)"))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    _report_cache(options["cache"])
    _report_supervision(options.get("supervise"))
    return 0


def cmd_traffic(args) -> Optional[int]:
    """Offered-load patterns (permutation/random/hotspot) on any spec."""
    from repro.bench.traffic import run_pattern
    from repro.msg.api import build_topology_world
    from repro.network.crossbar import CrossbarConfig
    from repro.network.topo import parse_topology

    spec = parse_topology(args.topology)
    if spec.fidelity != "flit":
        print("traffic needs flit fidelity: offered-load contention is "
              "exactly what the flow tier abstracts away", file=sys.stderr)
        return 2
    if args.load:
        return _traffic_load(args, spec)
    qos = _traffic_qos(args)
    crossbar_config = (CrossbarConfig(qos=qos) if qos is not None
                       else CrossbarConfig())
    patterns = args.patterns or ["permutation", "random", "hotspot"]
    rows = []
    for pattern in patterns:
        # A fresh world per pattern: no warm FIFOs or collision counters
        # leak between patterns.
        _, world = build_topology_world(spec,
                                        crossbar_config=crossbar_config)
        result = run_pattern(world, pattern, message_bytes=args.nbytes,
                             rounds=args.rounds, seed=args.seed)
        rows.append([pattern, result.nodes, result.messages,
                     f"{result.elapsed_ns / 1e3:.1f}",
                     f"{result.aggregate_mb_s:.1f}",
                     f"{result.per_node_mb_s:.2f}",
                     result.collisions])
    _emit(format_table(
        ["pattern", "nodes", "messages", "elapsed (us)", "aggregate MB/s",
         "per-node MB/s", "collisions"], rows,
        title=f"Traffic patterns on {spec.label()}"))
    return 0


def cmd_logp(args) -> None:
    system = PowerMannaSystem.cluster()
    params = system.logp(0, 1, args.nbytes)
    _emit(format_table(
        ["parameter", "value"],
        [["message size", f"{params.nbytes} B"],
         ["one-way latency", f"{params.latency_ns / 1e3:.2f} us"],
         ["send overhead o_s", f"{params.overhead_send_ns / 1e3:.2f} us"],
         ["gap g", f"{params.gap_ns / 1e3:.2f} us"],
         ["implied bandwidth", f"{params.bandwidth_mb_s:.1f} MB/s"]],
        title="LogP parameters, 8-node PowerMANNA"))


# Experiments that drive the discrete-event network (and so produce spans);
# the purely trace-driven node experiments only produce metrics.
TRACEABLE = ("fig9", "fig10", "fig11", "fig12", "logp")
OBSERVABLE = ("fig6", "fig7", "fig8") + TRACEABLE


def cmd_trace(args) -> None:
    with observe(span_limit=args.span_limit) as session:
        _COMMANDS[args.experiment](args)
    tracer = session.tracer
    write_trace(args.out, tracer)

    totals: dict = {}
    for mid in tracer.message_ids():
        for stage, dur in tracer.breakdown(mid):
            totals[stage] = totals.get(stage, 0.0) + dur
    grand = sum(totals.values()) or 1.0
    rows = [[stage, f"{ns / 1e3:.2f}", f"{100.0 * ns / grand:.1f}%"]
            for stage, ns in sorted(totals.items(), key=lambda kv: -kv[1])]
    _emit(format_table(
        ["stage", "total (us)", "share"], rows,
        title=f"Critical path across {len(tracer.message_ids())} messages"))
    # Drop accounting is always on the summary line — a truncated trace
    # that looks complete is the worst failure mode of a span budget.
    print(f"wrote {args.out}: {len(tracer.finished_spans())} spans over "
          f"{len(tracer.message_ids())} messages, "
          f"{tracer.dropped} dropped (span limit {tracer.limit})")
    if tracer.dropped:
        print(f"warning: {tracer.dropped} spans were dropped; raise "
              f"--span-limit to capture the full run", file=sys.stderr)


def cmd_metrics(args) -> None:
    with observe() as session:
        _COMMANDS[args.experiment](args)
    registry = session.metrics

    rows = []
    for inst in sorted(registry.instruments(),
                       key=lambda i: (i.name, -i.value)):
        series = format_metric_series(inst.name, inst.labels)
        if inst.kind == "histogram":
            s = inst.summary()
            value = (f"n={s['count']} mean={s['mean']:.1f} "
                     f"p50={s['p50']:.1f} p99={s['p99']:.1f} "
                     f"p999={s['p999']:.1f}")
        else:
            value = f"{inst.value:g}"
        rows.append([series, inst.kind, value])
    shown = rows if args.top <= 0 else rows[:args.top]
    _emit(format_table(["series", "kind", "value"], shown,
                       title=f"Metrics for {args.experiment} "
                             f"({len(rows)} series)"))
    if len(shown) < len(rows):
        print(f"... {len(rows) - len(shown)} more series "
              f"(raise --top or use --out)")
    if args.out:
        if args.csv:
            write_metrics_csv(args.out, registry)
        else:
            write_metrics_json(args.out, registry)
        print(f"wrote {args.out}: {len(registry)} series")


def cmd_report(args) -> Optional[int]:
    """Run an experiment under full observation; render the dashboard."""
    from repro.obs.health import HealthSpec, format_health
    from repro.obs.report import report_data, write_report

    interval = (float(args.sample_interval) if args.sample_interval
                else DEFAULT_SAMPLE_INTERVAL_NS)
    health_path = args.health
    timeline_path = args.timeline_out
    trace_path = args.trace
    metrics_path = args.metrics_out
    # The wrapped command must not open its own nested session (that
    # would swap the backends this session is collecting into), so its
    # copies of the observation flags are cleared before dispatch; any
    # requested artifacts are written from this session instead.
    args.sample_interval = None
    args.timeline_out = None
    args.health = None
    args.trace = None
    args.metrics_out = None
    if args.nbytes is None:
        args.nbytes = 1024 if args.experiment == "chaos" else 8
    if args.experiment == "chaos" and args.error_rate is None:
        args.error_rate = 0.0
    with observe(sample_interval_ns=interval,
                 span_limit=args.span_limit) as session:
        _COMMANDS[args.experiment](args)

    health = None
    rc = 0
    if health_path:
        health = HealthSpec.load(health_path).evaluate(
            timeline=session.timeline, metrics=session.metrics)
        _emit(format_health(health))
        rc = 0 if health.ok else 1
    data = report_data(f"repro {args.experiment}",
                       timeline=session.timeline,
                       metrics=session.metrics,
                       tracer=session.tracer,
                       health=health)
    write_report(args.out, data)
    print(f"wrote {args.out}: {len(data['series'])} sampled series, "
          f"{len(data.get('critical_path', []))} critical-path stages")
    _write_session_artifacts(session, trace_path, metrics_path,
                             timeline_path)
    return rc


def _add_sampling_options(parser: argparse.ArgumentParser) -> None:
    """The shared timeline-sampling/health-gate surface."""
    parser.add_argument("--sample-interval", type=float, default=None,
                        metavar="NS",
                        help="sample component gauges every NS simulated "
                             "nanoseconds into time-series timelines")
    parser.add_argument("--timeline-out", metavar="FILE", default=None,
                        help="write the sampled timelines as JSON "
                             "(implies --sample-interval "
                             f"{DEFAULT_SAMPLE_INTERVAL_NS:g})")
    parser.add_argument("--health", metavar="FILE", default=None,
                        help="evaluate a HealthSpec JSON against the run; "
                             "exit 1 on any violated gate (implies "
                             "sampling)")


def _add_supervise_options(parser: argparse.ArgumentParser) -> None:
    """The shared supervision/journaling surface of every sweep run."""
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retry a crashed/hung/failed point up to N "
                             "times with exponential backoff before "
                             "quarantining it (default 2)")
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="S",
                        help="presume a point hung after S wall seconds; "
                             "its worker is restarted and the point "
                             "retried")
    parser.add_argument("--journal", metavar="FILE", default=None,
                        help="write the run journal here (default: an "
                             "auto-pruned file under the cache dir's "
                             "journals/, or $REPRO_JOURNAL_DIR)")
    parser.add_argument("--no-journal", action="store_true",
                        help="disable run journaling")
    parser.add_argument("--resume", metavar="JOURNAL", default=None,
                        help="resume from a run journal: completed points "
                             "replay their stored results; final "
                             "artifacts are byte-identical to an "
                             "uninterrupted run")


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """The shared --jobs/--no-cache/--cache-dir surface of every sweep."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the point sweep; output "
                             "is byte-identical at any jobs level")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed result cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    _add_supervise_options(parser)


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    """The union of options the wrapped experiment commands read."""
    parser.add_argument("--scale", type=int, default=16)
    parser.add_argument("--sizes", type=int, nargs="*", default=None)
    parser.add_argument("--subintervals", type=int, default=4096)
    parser.add_argument("--nbytes", type=int, default=8)
    _add_sweep_options(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate PowerMANNA (HPCA 2000) tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("table1", help="Table 1: system configurations")

    fig6 = sub.add_parser("fig6", help="HINT QUIPS curves")
    fig6.add_argument("--scale", type=int, default=16)
    fig6.add_argument("--subintervals", type=int, default=4096)
    _add_sampling_options(fig6)
    _add_sweep_options(fig6)

    for name, helptext in (("fig7", "MatMult MFLOPS"),
                           ("fig8", "SMP speedup")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--scale", type=int, default=16)
        p.add_argument("--sizes", type=int, nargs="*", default=None)
        _add_sampling_options(p)
        _add_sweep_options(p)

    for name, helptext in (("fig9", "one-way latency"),
                           ("fig10", "send gap"),
                           ("fig11", "unidirectional bandwidth"),
                           ("fig12", "bidirectional bandwidth")):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--sizes", type=int, nargs="*", default=None)
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="record span tracing; write a Chrome trace-event "
                            "JSON (load in Perfetto / chrome://tracing)")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write labeled metrics of the run as JSON")
        p.add_argument("--error-rate", type=float, default=None,
                       help="inject uniform link corruption at this "
                            "probability while measuring")
        p.add_argument("--fault-plan", metavar="FILE", default=None,
                       help="run the measurement under this fault plan "
                            "(JSON; see the chaos subcommand)")
        p.add_argument("--fault-seed", type=int, default=None,
                       help="override the fault plan's seed")
        p.add_argument("--topology", metavar="NAME_OR_JSON", default=None,
                       help="measure on this topology instead of the "
                            "8-node cluster: a generator expression "
                            "(hypercube:dimensions=8,fidelity=flow), "
                            "inline spec JSON, or a spec file; the "
                            "measured pair is the topology's far pair")
        _add_sampling_options(p)
        _add_sweep_options(p)

    traffic = sub.add_parser(
        "traffic", help="offered-load patterns on any topology")
    traffic.add_argument("--topology", metavar="NAME_OR_JSON",
                         default="cluster",
                         help="topology spec to drive (flit fidelity; "
                              "default: the 8-node cluster)")
    traffic.add_argument("--patterns", nargs="*", default=None,
                         choices=("permutation", "random", "hotspot"),
                         help="patterns to run (default: all three)")
    traffic.add_argument("--nbytes", type=int, default=1024)
    traffic.add_argument("--rounds", type=int, default=4,
                         help="messages each node sends per pattern")
    traffic.add_argument("--seed", type=int, default=7,
                         help="seed for the random pattern's destinations")
    traffic.add_argument("--arbiter", default="fifo",
                         choices=("fifo", "priority", "wdrr"),
                         help="output-port arbitration policy (fifo with "
                              "no --classes keeps the legacy arbiters and "
                              "byte-identical output)")
    traffic.add_argument("--classes", metavar="SPEC", default=None,
                         help="service classes, e.g. 'urgent:prio=0:"
                              "weight=4,bulk:prio=1:rate=30:burst=4096'")
    traffic.add_argument("--pattern-mix", metavar="SPEC", default=None,
                         help="per-class load shape, e.g. 'urgent=incast:"
                              "0.2:odd,bulk=hotspot:0.8:even' "
                              "(pattern[:fraction[:senders[:burst_len]]])")
    traffic.add_argument("--load", metavar="SWEEP", default=None,
                         help="offered-load sweep as a fraction of line "
                              "rate: '0.2,0.5,0.8' or start:stop:step; "
                              "switches from fixed patterns to the "
                              "load/goodput/latency surface")
    traffic.add_argument("--messages", type=int, default=32,
                         help="messages per sender per load point")
    traffic.add_argument("--closed-loop", action="store_true",
                         help="self-clocked senders (at most --window "
                              "undelivered messages each) instead of "
                              "open-loop planned injection times")
    traffic.add_argument("--window", type=int, default=4,
                         help="closed-loop in-flight window per sender")
    traffic.add_argument("--adaptive", action="store_true",
                         help="congestion-aware adaptive routing: detour "
                              "around output ports whose arbiter queue "
                              "reaches --adaptive-depth")
    traffic.add_argument("--adaptive-depth", type=int, default=4,
                         help="queue depth at which an output port "
                              "counts as congested")
    traffic.add_argument("--fault-plan", metavar="FILE", default=None,
                         help="run the load sweep under this fault plan "
                              "(JSON; see the chaos subcommand)")
    traffic.add_argument("--fault-seed", type=int, default=None,
                         help="override the fault plan's seed")
    traffic.add_argument("--json-out", metavar="FILE", default=None,
                         help="write the load-sweep results as JSON")
    _add_sweep_options(traffic)

    chaos = sub.add_parser(
        "chaos", help="run a fault-injection experiment from a plan file")
    chaos.add_argument("--plan", metavar="FILE", default=None,
                       help="fault plan JSON (seed + fault specs)")
    chaos.add_argument("--seed", type=int, default=None,
                       help="override the plan's seed")
    chaos.add_argument("--topology", metavar="NAME_OR_JSON",
                       default="cluster",
                       help="cluster, manna, grid (legacy scaled-down "
                            "systems) or any topology spec expression/"
                            "JSON/file at flit fidelity")
    chaos.add_argument("--protocol", choices=("sliding", "stopwait"),
                       default="sliding")
    chaos.add_argument("--flows", type=int, default=4)
    chaos.add_argument("--messages", type=int, default=8,
                       help="messages per flow")
    chaos.add_argument("--nbytes", type=int, default=1024)
    chaos.add_argument("--window", type=int, default=8,
                       help="sliding-window size")
    chaos.add_argument("--error-rate", type=float, default=0.0,
                       help="protocol-level corruption probability")
    chaos.add_argument("--ack-error-rate", type=float, default=None,
                       help="decouple the reverse path: probability an "
                            "acknowledgement is corrupted (default: "
                            "mirrors --error-rate)")
    chaos.add_argument("--link-error-rate", type=float, default=0.0,
                       help="shorthand: uniform link_corrupt plan at this "
                            "probability (ignored when --plan is given)")
    chaos.add_argument("--trace", metavar="FILE", default=None,
                       help="write a Perfetto trace of the chaos run")
    chaos.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write labeled metrics of the run as JSON")
    chaos.add_argument("--report-out", metavar="FILE", default=None,
                       help="write the chaos report (or campaign report "
                            "with --seeds) as JSON")
    chaos.add_argument("--seeds", type=int, default=0, metavar="N",
                       help="campaign mode: run the experiment under N "
                            "derived seeds and aggregate goodput/reroute "
                            "statistics (mean/p50/p99)")
    _add_sampling_options(chaos)
    _add_sweep_options(chaos)

    logp = sub.add_parser("logp", help="LogP parameters")
    logp.add_argument("--nbytes", type=int, default=8)

    bench = sub.add_parser(
        "bench", help="time the hot kernels and write BENCH_perf.json")
    bench.add_argument("--quick", action="store_true",
                       help="single repeat per kernel (CI smoke mode; "
                            "kernel sizes are unchanged)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repeats per kernel (best is reported)")
    bench.add_argument("--kernels", nargs="*", default=None,
                       help="subset of kernels to run (default: all)")
    bench.add_argument("--list", action="store_true",
                       help="print the known kernel names and exit")
    bench.add_argument("--out", default=None,
                       help="where to write the benchmark document "
                            "(default: BENCH_perf.json, or "
                            "BENCH_perf.quick.json with --quick)")
    bench.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the (kernel, repeat) "
                            "units; keep 1 when walls are the deliverable")
    _add_supervise_options(bench)
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                       default=None,
                       help="compare two BENCH_perf.json documents instead "
                            "of running; exit non-zero on regression")
    bench.add_argument("--threshold", type=float, default=0.10,
                       help="--compare: relative wall regression that "
                            "fails the gate (default 0.10 = 10%%)")

    trace = sub.add_parser(
        "trace", help="run an experiment with span tracing enabled")
    trace.add_argument("experiment", choices=TRACEABLE)
    trace.add_argument("--out", default="trace.json",
                       help="trace-event JSON output path")
    trace.add_argument("--span-limit", type=int, default=1_000_000)
    _add_experiment_options(trace)

    metrics = sub.add_parser(
        "metrics", help="run an experiment with labeled metrics enabled")
    metrics.add_argument("experiment", choices=OBSERVABLE)
    metrics.add_argument("--out", default=None,
                         help="write the full metrics dump here")
    metrics.add_argument("--csv", action="store_true",
                         help="write --out as CSV instead of JSON")
    metrics.add_argument("--top", type=int, default=40,
                         help="series rows to print (<= 0 for all)")
    _add_experiment_options(metrics)

    report = sub.add_parser(
        "report", help="run an experiment fully observed and render a "
                       "self-contained HTML dashboard")
    report.add_argument("experiment", choices=OBSERVABLE + ("chaos",))
    report.add_argument("--out", default="report.html",
                        help="dashboard output path (one file, no "
                             "external dependencies)")
    report.add_argument("--span-limit", type=int, default=1_000_000)
    _add_sampling_options(report)
    # The union of options the wrapped experiments read.  --nbytes stays
    # None here and is resolved per experiment (8 for the figures/logp,
    # 1024 for chaos).
    report.add_argument("--scale", type=int, default=16)
    report.add_argument("--sizes", type=int, nargs="*", default=None)
    report.add_argument("--subintervals", type=int, default=4096)
    report.add_argument("--nbytes", type=int, default=None)
    _add_sweep_options(report)
    # The chaos surface (read directly by cmd_chaos).
    report.add_argument("--plan", metavar="FILE", default=None)
    report.add_argument("--seed", type=int, default=None)
    report.add_argument("--seeds", type=int, default=0, metavar="N")
    report.add_argument("--topology", metavar="NAME_OR_JSON",
                        default="cluster")
    report.add_argument("--protocol", choices=("sliding", "stopwait"),
                        default="sliding")
    report.add_argument("--flows", type=int, default=4)
    report.add_argument("--messages", type=int, default=8)
    report.add_argument("--window", type=int, default=8)
    report.add_argument("--error-rate", type=float, default=None)
    report.add_argument("--ack-error-rate", type=float, default=None)
    report.add_argument("--link-error-rate", type=float, default=0.0)
    report.add_argument("--trace", metavar="FILE", default=None)
    report.add_argument("--metrics-out", metavar="FILE", default=None)
    report.add_argument("--report-out", metavar="FILE", default=None)
    report.add_argument("--fault-plan", metavar="FILE", default=None)
    report.add_argument("--fault-seed", type=int, default=None)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "table1": cmd_table1,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "chaos": cmd_chaos,
    "traffic": cmd_traffic,
    "logp": cmd_logp,
    "bench": cmd_bench,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "report": cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        rc = _COMMANDS[args.command](args)
    except PoisonedSweepError as exc:
        print(f"ERROR: {exc}", file=sys.stderr)
        if exc.journal_path:
            print(f"journal: {exc.journal_path} (fix the cause, then "
                  f"--resume to retry only the quarantined points)",
                  file=sys.stderr)
        return 3
    except SweepInterrupted as exc:
        print("interrupted: journal flushed, workers shut down",
              file=sys.stderr)
        if exc.journal_path:
            print(f"resume with: --resume {exc.journal_path}",
                  file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    return rc or 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
