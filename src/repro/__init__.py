"""repro — a full reproduction of the PowerMANNA parallel architecture.

PowerMANNA (Behr, Pletner, Sodan; HPCA 2000) is a distributed-memory
parallel computer built from dual-PowerPC-MPC620 SMP nodes and a
hierarchical crossbar interconnect with a CPU-driven network interface.
The hardware is long gone; this library rebuilds the whole system as a
set of composable simulators — node memory hierarchy, coherence, bus
fabrics, crossbar network, link protocol, PIO driver, messaging software —
and regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import PowerMannaSystem

    system = PowerMannaSystem.cluster()
    logp = system.logp(a=0, b=1, nbytes=8)
    print(f"8-byte one-way latency: {logp.latency_ns / 1e3:.2f} us")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    PC_CLUSTER_180,
    PC_CLUSTER_266,
    POWERMANNA,
    SUN_ULTRA,
    MachineSpec,
    PowerMannaSystem,
    list_machines,
    machine,
    table1,
)

__version__ = "1.0.0"

__all__ = [
    "MachineSpec",
    "PC_CLUSTER_180",
    "PC_CLUSTER_266",
    "POWERMANNA",
    "PowerMannaSystem",
    "SUN_ULTRA",
    "__version__",
    "list_machines",
    "machine",
    "table1",
]
