"""Processor parameter sets for the three Table-1 machines.

Values are taken from the paper where it states them (clocks, issue width,
FP/load pipelining, FMA) and from the processors' public documentation for
the rest.  These are *timing-model* parameters: they are chosen to place
each machine's compute envelope where the paper's measurements put it, and
every one of them is an explicit, documented knob rather than silicon truth.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cpu.model import CpuSpec
from repro.sim.clock import Clock

MPC620 = CpuSpec(
    name="PowerPC MPC620",
    clock=Clock(180.0),
    issue_width=4,           # "capable of issuing four instructions simultaneously"
    fp_pipelined=True,       # "specially designed to support FP pipelining"
    has_fma=True,            # PowerPC fmadd
    fp_throughput=1.0,
    fp_latency=3.0,
    int_units=2,
    int_mul_cycles=3.0,
    int_div_cycles=20.0,
    load_store_units=1,
    load_pipelining=False,   # "it does not support load pipelining"
    overlap_efficiency=0.0,
    branch_mispredict_rate=0.05,
    branch_penalty_cycles=4.0,
)

ULTRASPARC_I = CpuSpec(
    name="UltraSPARC-I",
    clock=Clock(168.0),
    issue_width=4,
    fp_pipelined=True,
    has_fma=False,
    fp_throughput=2.0,       # independent add and multiply pipes
    fp_latency=3.0,
    int_units=2,
    int_mul_cycles=12.0,     # SPARC V9 mulx is microcoded-slow on US-I
    int_div_cycles=36.0,
    load_store_units=1,
    load_pipelining=True,    # non-blocking loads with a load buffer
    overlap_efficiency=0.7,  # in-order issue limits run-ahead
    miss_stall_fraction=0.8,  # shallow MLP: one extra outstanding miss
    branch_mispredict_rate=0.05,
    branch_penalty_cycles=4.0,
)


def _pentium_ii(mhz: float) -> CpuSpec:
    return CpuSpec(
        name=f"Pentium II {mhz:g} MHz",
        clock=Clock(mhz),
        issue_width=3,
        fp_pipelined=True,
        has_fma=False,
        fp_throughput=0.5,   # x87 multiply issues every other cycle
        fp_latency=3.0,
        int_units=2,
        int_mul_cycles=4.0,
        int_div_cycles=25.0,
        load_store_units=1,
        load_pipelining=True,     # out-of-order core, fill buffers
        overlap_efficiency=1.0,
        miss_stall_fraction=0.55,  # ~2 misses overlapped via fill buffers
        branch_mispredict_rate=0.05,
        branch_penalty_cycles=10.0,  # deeper pipe than the RISC parts
    )


PENTIUM_II_180 = _pentium_ii(180.0)
PENTIUM_II_266 = _pentium_ii(266.0)

_PRESETS: Dict[str, CpuSpec] = {
    "mpc620": MPC620,
    "ultrasparc-i": ULTRASPARC_I,
    "pentium-ii-180": PENTIUM_II_180,
    "pentium-ii-266": PENTIUM_II_266,
}


def cpu_preset(name: str) -> CpuSpec:
    """Look up a processor preset by key (see :func:`list_presets`)."""
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown CPU preset {name!r}; available: {sorted(_PRESETS)}"
        ) from None


def list_presets() -> List[str]:
    return sorted(_PRESETS)
