"""Abstract instruction mixes.

The timing models do not execute machine code; benchmark kernels are
described as *instruction mixes* — counts of abstract operation classes per
kernel unit (e.g. per inner-product step of MatMult).  This is the level at
which the paper's node benchmarks differentiate the machines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class InstructionMix:
    """Operation counts for one unit of kernel work.

    Attributes:
        fp_ops: floating-point results produced (an FMA counts as 2).
        fp_instructions: FP instructions issued (an FMA counts as 1).
        int_ops: simple integer ALU operations (address arithmetic, compares).
        int_muls: integer multiplies (slow on the UltraSPARC-I).
        int_divs: integer divides.
        loads: memory loads.
        stores: memory stores.
        branches: conditional branches.
    """

    fp_ops: float = 0.0
    fp_instructions: float = 0.0
    int_ops: float = 0.0
    int_muls: float = 0.0
    int_divs: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    branches: float = 0.0

    def __post_init__(self):
        for name in ("fp_ops", "fp_instructions", "int_ops", "int_muls",
                     "int_divs", "loads", "stores", "branches"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be nonnegative")
        if self.fp_instructions > self.fp_ops:
            raise ValueError("fp_instructions cannot exceed fp_ops "
                             "(an instruction yields >= 1 op)")

    @property
    def memory_ops(self) -> float:
        return self.loads + self.stores

    @property
    def total_instructions(self) -> float:
        return (self.fp_instructions + self.int_ops + self.int_muls
                + self.int_divs + self.loads + self.stores + self.branches)

    def scaled(self, factor: float) -> "InstructionMix":
        """The mix repeated ``factor`` times (factor may be fractional)."""
        if factor < 0:
            raise ValueError(f"scale factor must be nonnegative, got {factor}")
        return InstructionMix(
            fp_ops=self.fp_ops * factor,
            fp_instructions=self.fp_instructions * factor,
            int_ops=self.int_ops * factor,
            int_muls=self.int_muls * factor,
            int_divs=self.int_divs * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
            branches=self.branches * factor)

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            fp_ops=self.fp_ops + other.fp_ops,
            fp_instructions=self.fp_instructions + other.fp_instructions,
            int_ops=self.int_ops + other.int_ops,
            int_muls=self.int_muls + other.int_muls,
            int_divs=self.int_divs + other.int_divs,
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            branches=self.branches + other.branches)

    def without_memory(self) -> "InstructionMix":
        """The mix with loads/stores removed (their time is modelled by the
        memory hierarchy; the slot they occupy stays via total counts)."""
        return replace(self, loads=0.0, stores=0.0)


def fma_mix(uses_fma: bool, mults: float, adds: float) -> InstructionMix:
    """FP mix for ``mults`` multiplies feeding ``adds`` adds.

    On FMA machines (the MPC620's PowerPC ``fmadd``) each mul+add pair fuses
    into one instruction producing two ops.
    """
    ops = mults + adds
    if uses_fma:
        fused = min(mults, adds)
        instructions = ops - fused
    else:
        instructions = ops
    return InstructionMix(fp_ops=ops, fp_instructions=instructions)
