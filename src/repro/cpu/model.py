"""CPU microarchitecture parameter sets.

:class:`CpuSpec` is the single place where the machines of Table 1 differ
as *processors* (cache geometry lives in the memory configs).  The fields
the paper's analysis leans on:

* ``load_pipelining`` — False on the MPC620 ("it does not support load
  pipelining ... thus the available memory bandwidth of PowerMANNA cannot
  be fully exploited"); True on the Pentium II and UltraSPARC-I.
* ``fp_pipelined`` / ``has_fma`` — the MPC620 is "specially designed to
  support floating-point pipelining" and has PowerPC fused multiply-add.
* ``issue_width`` and per-class units — the superscalar envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import Clock


@dataclass(frozen=True)
class CpuSpec:
    """Timing-relevant microarchitecture of one processor.

    Throughputs are results per cycle; latencies are cycles.
    """

    name: str
    clock: Clock
    issue_width: int = 4
    # Floating point.
    fp_pipelined: bool = True
    has_fma: bool = False
    fp_throughput: float = 1.0      # FP instructions retired per cycle
    fp_latency: float = 3.0         # dependent-chain latency
    # Integer.
    int_units: int = 2
    int_mul_cycles: float = 4.0
    int_div_cycles: float = 20.0
    # Memory ports and behaviour.
    load_store_units: int = 1
    load_pipelining: bool = True    # can misses overlap with further work?
    overlap_efficiency: float = 1.0  # fraction of compute that hides misses
    miss_stall_fraction: float = 1.0  # share of miss latency that stalls the
    # core; < 1 models memory-level parallelism (overlapping outstanding
    # misses, e.g. the Pentium II's fill buffers).  Meaningless without
    # load pipelining — the MPC620 blocks on every miss.
    # Branches.
    branch_mispredict_rate: float = 0.05
    branch_penalty_cycles: float = 4.0

    def __post_init__(self):
        if self.issue_width < 1:
            raise ValueError("issue width must be >= 1")
        if self.fp_throughput <= 0:
            raise ValueError("fp throughput must be positive")
        if self.int_units < 1 or self.load_store_units < 1:
            raise ValueError("unit counts must be >= 1")
        if not 0.0 <= self.overlap_efficiency <= 1.0:
            raise ValueError("overlap_efficiency must be in [0, 1]")
        if not 0.0 < self.miss_stall_fraction <= 1.0:
            raise ValueError("miss_stall_fraction must be in (0, 1]")
        if not 0.0 <= self.branch_mispredict_rate <= 1.0:
            raise ValueError("branch_mispredict_rate must be in [0, 1]")

    @property
    def effective_fp_throughput(self) -> float:
        """FP instructions per cycle given pipelining."""
        if self.fp_pipelined:
            return self.fp_throughput
        return self.fp_throughput / self.fp_latency

    @property
    def peak_mflops(self) -> float:
        """Peak FP results per second in MFLOPS (FMA counts double)."""
        per_instr = 2.0 if self.has_fma else 1.0
        return self.effective_fp_throughput * per_instr * self.clock.mhz

    def describe(self) -> str:
        return (f"{self.name}: {self.clock}, {self.issue_width}-issue, "
                f"FP {'pipelined' if self.fp_pipelined else 'unpipelined'}"
                f"{' +FMA' if self.has_fma else ''}, "
                f"load pipelining {'yes' if self.load_pipelining else 'NO'}")
