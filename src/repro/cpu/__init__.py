"""CPU timing models.

A :class:`~repro.cpu.model.CpuSpec` captures the microarchitectural
parameters the paper's evaluation turns on — issue width, floating-point
pipelining, the MPC620's *missing load pipelining*, and per-operation
latencies.  :mod:`repro.cpu.pipeline` converts instruction mixes to compute
cycles and memory latencies to pipeline stalls; :mod:`repro.cpu.presets`
holds the MPC620, UltraSPARC-I and Pentium II parameter sets with their
Table-1 configurations.
"""

from repro.cpu.isa import InstructionMix
from repro.cpu.model import CpuSpec
from repro.cpu.pipeline import PipelineModel, make_stall_model
from repro.cpu.presets import (
    MPC620,
    PENTIUM_II_180,
    PENTIUM_II_266,
    ULTRASPARC_I,
    cpu_preset,
    list_presets,
)

__all__ = [
    "CpuSpec",
    "InstructionMix",
    "MPC620",
    "PENTIUM_II_180",
    "PENTIUM_II_266",
    "PipelineModel",
    "ULTRASPARC_I",
    "cpu_preset",
    "list_presets",
    "make_stall_model",
]
