"""Instruction-mix descriptions of the paper's benchmark kernels.

Each function returns the :class:`~repro.cpu.isa.InstructionMix` for one
unit of kernel work plus how many memory references that unit makes, so
benchmark drivers can charge compute time per trace reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.isa import InstructionMix, fma_mix
from repro.cpu.model import CpuSpec


@dataclass(frozen=True)
class KernelUnit:
    """One repeating unit of a kernel.

    Attributes:
        mix: instruction mix of the unit.
        memory_refs: trace references the unit emits.
        dependent_fp_chain: serially dependent FP instructions per unit.
        flops: floating-point results credited to the unit (for MFLOPS).
    """

    mix: InstructionMix
    memory_refs: int
    dependent_fp_chain: float = 0.0
    flops: float = 0.0


def matmult_inner_step(spec: CpuSpec) -> KernelUnit:
    """One k-iteration of the MatMult inner product: c += a[k] * b[k].

    Two loads, one multiply feeding one add (fused on FMA machines), index
    increment and loop branch.  The running sum is a dependent FP chain —
    one chain link per iteration unless the compiler's unrolling splits it;
    we charge half a link to model 2-way unrolled accumulators.
    """
    fp = fma_mix(spec.has_fma, mults=1.0, adds=1.0)
    mix = fp + InstructionMix(int_ops=1.0, loads=2.0, branches=1.0)
    chain = 0.5 if spec.has_fma else 0.5
    return KernelUnit(mix=mix, memory_refs=2, dependent_fp_chain=chain,
                      flops=2.0)


def matmult_store_step() -> KernelUnit:
    """The per-(i, j) epilogue: store C[i][j], bump j, branch."""
    mix = InstructionMix(int_ops=2.0, stores=1.0, branches=1.0)
    return KernelUnit(mix=mix, memory_refs=1)


def transpose_step() -> KernelUnit:
    """One element move of the transposition pass: load + store + index."""
    mix = InstructionMix(int_ops=2.0, loads=1.0, stores=1.0, branches=0.5)
    return KernelUnit(mix=mix, memory_refs=2)


def hint_scan_step(data_type: str) -> KernelUnit:
    """One record visit of HINT's error scan.

    The scan compares each interval's removable error against the current
    maximum: one load of the error field, a compare, loop overhead.  The
    DOUBLE variant compares FP values; INT compares integers.
    """
    if data_type == "double":
        mix = InstructionMix(fp_ops=1.0, fp_instructions=1.0, int_ops=1.0,
                             loads=1.0, branches=1.0)
    elif data_type == "int":
        mix = InstructionMix(int_ops=2.0, loads=1.0, branches=1.0)
    else:
        raise ValueError(f"HINT data type must be 'double' or 'int', got {data_type!r}")
    return KernelUnit(mix=mix, memory_refs=1, flops=1.0 if data_type == "double" else 0.0)


def hint_split_step(data_type: str) -> KernelUnit:
    """Splitting the chosen interval: recompute bounds for two halves.

    Per the HINT paper this is a handful of arithmetic operations — the
    function evaluation (1-x)/(1+x) at the midpoint, upper/lower rectangle
    counts, log updates.  The division dominates; INT mode uses integer
    divide/multiply, DOUBLE uses FP.
    """
    if data_type == "double":
        mix = InstructionMix(fp_ops=8.0, fp_instructions=8.0, int_ops=4.0,
                             loads=4.0, stores=4.0, branches=2.0)
        flops = 8.0
    elif data_type == "int":
        mix = InstructionMix(int_ops=8.0, int_muls=2.0, int_divs=1.0,
                             loads=4.0, stores=4.0, branches=2.0)
        flops = 0.0
    else:
        raise ValueError(f"HINT data type must be 'double' or 'int', got {data_type!r}")
    return KernelUnit(mix=mix, memory_refs=8, flops=flops)


def copy_step(word_bytes: int = 8) -> KernelUnit:
    """One word of a memory copy loop (used by the PIO message driver)."""
    mix = InstructionMix(int_ops=1.0, loads=1.0, stores=1.0, branches=0.25)
    return KernelUnit(mix=mix, memory_refs=2)
