"""Superscalar issue and memory-stall models.

Two questions are answered here:

1. *How long does a block of non-memory work take?* — the bottleneck
   analysis of :class:`PipelineModel`: a block's cycle count is the worst
   of the issue-width bound, the FP-throughput bound, the integer bound,
   the load/store-port bound and the dependent-FP-chain bound.
2. *How much of a memory access's latency stalls the pipeline?* —
   :func:`make_stall_model`.  With load pipelining, independent work
   between accesses hides latency; without it (the MPC620), every miss is
   fully exposed.
"""

from __future__ import annotations

from typing import Callable

from repro.cpu.isa import InstructionMix
from repro.cpu.model import CpuSpec


class PipelineModel:
    """Analytic cycle model of one superscalar core."""

    def __init__(self, spec: CpuSpec):
        self.spec = spec

    def block_cycles(self, mix: InstructionMix,
                     dependent_fp_chain: float = 0.0) -> float:
        """Cycles to execute ``mix``, excluding memory wait time.

        ``dependent_fp_chain`` is the number of *serially dependent* FP
        instructions in the block (e.g. a running-sum accumulation); each
        link costs the FP latency unless the hardware fuses it away.
        """
        spec = self.spec
        issue_bound = mix.total_instructions / spec.issue_width
        fp_bound = mix.fp_instructions / spec.effective_fp_throughput
        int_instr = mix.int_ops + mix.int_muls + mix.int_divs
        int_bound = (int_instr / spec.int_units
                     + mix.int_muls * (spec.int_mul_cycles - 1)
                     + mix.int_divs * (spec.int_div_cycles - 1))
        mem_bound = mix.memory_ops / spec.load_store_units
        branch_cost = (mix.branches * spec.branch_mispredict_rate
                       * spec.branch_penalty_cycles)
        chain_bound = dependent_fp_chain * spec.fp_latency
        return max(issue_bound, fp_bound, int_bound, mem_bound,
                   chain_bound) + branch_cost

    def block_ns(self, mix: InstructionMix,
                 dependent_fp_chain: float = 0.0) -> float:
        return self.spec.clock.cycles_to_ns(
            self.block_cycles(mix, dependent_fp_chain))

    def per_access_compute_ns(self, mix: InstructionMix, accesses: float,
                              dependent_fp_chain: float = 0.0) -> float:
        """Average compute time charged before each of ``accesses`` refs."""
        if accesses <= 0:
            raise ValueError(f"accesses must be positive, got {accesses}")
        return self.block_ns(mix, dependent_fp_chain) / accesses


StallModel = Callable[[float, float], float]


def make_stall_model(spec: CpuSpec, l1_hit_ns: float) -> StallModel:
    """Build ``stall(latency_ns, compute_ns) -> ns`` for one CPU.

    The pipeline hides L1-hit latency entirely.  Beyond that:

    * **No load pipelining** (MPC620): the core blocks until the data
      returns — the exposed latency is the full miss latency.
    * **Load pipelining**: only ``miss_stall_fraction`` of the exposed
      latency stalls the core (outstanding misses overlap — memory-level
      parallelism), and the independent compute preceding the *next*
      access hides some of the rest (``compute_ns`` times the spec's
      overlap efficiency).

    The returned stall is the *memory* portion of the CPU's clock advance —
    the caller has already charged ``compute_ns`` of execution time.
    """

    if spec.load_pipelining:
        efficiency = spec.overlap_efficiency
        fraction = spec.miss_stall_fraction

        def stall(latency_ns: float, compute_ns: float) -> float:
            exposed = max(0.0, latency_ns - l1_hit_ns) * fraction
            hidden = compute_ns * efficiency
            return max(0.0, exposed - hidden)
    else:

        def stall(latency_ns: float, compute_ns: float) -> float:
            return max(0.0, latency_ns - l1_hit_ns)

    return stall
