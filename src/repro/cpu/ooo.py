"""A detailed MPC620-style out-of-order engine.

Section 2 of the paper describes the microarchitecture this models: "The
superscalar processor is capable of issuing four instructions
simultaneously.  Its six execution units can operate in parallel, and as
many as six instructions can complete execution in parallel.  The
MPC620's rename buffers, reservation stations, dynamic branch prediction
and completion unit increase instruction throughput, guarantee in-order
completion and ensure a precise exception model."

The engine is a scoreboard-style timing simulator over abstract
instructions: register renaming removes WAW/WAR hazards (only true RAW
dependences delay issue), reservation stations and the completion
(reorder) buffer are finite, execution units have per-class counts,
latencies and initiation intervals, completion is strictly in order, and
exceptions are precise (everything older completes, everything younger is
squashed).  Loads can take their latency from a callable, which is how the
detailed model plugs into the memory-hierarchy simulator.

It complements the analytic :class:`repro.cpu.pipeline.PipelineModel`:
the analytic model prices millions of kernel iterations cheaply; this one
executes short streams faithfully and is used to validate the analytic
bounds (see ``benchmarks/test_pipeline_validation.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cpu.model import CpuSpec


class UnitClass(enum.Enum):
    INT = "int"
    FP = "fp"
    LOAD_STORE = "load_store"
    BRANCH = "branch"


@dataclass(frozen=True)
class Instruction:
    """One abstract instruction.

    Attributes:
        unit: execution-unit class.
        dest: architectural destination register name (None for stores
            and branches).
        sources: architectural source register names.
        latency: execution latency in cycles; None uses the unit default.
        mispredicted: for branches — a mispredicted branch squashes the
            younger instructions and refetch costs the penalty.
        raises: the instruction raises a (precise) exception at completion.
        label: for traces and error messages.
    """

    unit: UnitClass
    dest: Optional[str] = None
    sources: Tuple[str, ...] = ()
    latency: Optional[float] = None
    mispredicted: bool = False
    raises: bool = False
    label: str = ""


@dataclass(frozen=True)
class OooConfig:
    """Engine geometry, defaulting to the paper's MPC620 description."""

    issue_width: int = 4            # four instructions dispatched per cycle
    retire_width: int = 6           # six complete in parallel
    rob_entries: int = 16           # completion buffer
    rename_registers: int = 8       # rename buffers per class (pooled here)
    reservation_stations: int = 2   # per execution unit
    unit_counts: Dict[UnitClass, int] = field(default_factory=lambda: {
        UnitClass.INT: 3,           # 6 units total: 3 int,
        UnitClass.FP: 1,            # 1 fp,
        UnitClass.LOAD_STORE: 1,    # 1 load/store,
        UnitClass.BRANCH: 1,        # 1 branch
    })
    unit_latency: Dict[UnitClass, float] = field(default_factory=lambda: {
        UnitClass.INT: 1.0,
        UnitClass.FP: 3.0,
        UnitClass.LOAD_STORE: 1.0,  # L1-hit latency; misses via load_latency
        UnitClass.BRANCH: 1.0,
    })
    unit_pipelined: Dict[UnitClass, bool] = field(default_factory=lambda: {
        UnitClass.INT: True,
        UnitClass.FP: True,         # "FP pipelining"
        UnitClass.LOAD_STORE: False,  # NO load pipelining on the MPC620
        UnitClass.BRANCH: True,
    })
    mispredict_penalty: float = 4.0

    def __post_init__(self):
        if self.issue_width < 1 or self.retire_width < 1:
            raise ValueError("widths must be >= 1")
        if self.rob_entries < 1:
            raise ValueError("completion buffer needs >= 1 entry")
        for klass in UnitClass:
            if self.unit_counts.get(klass, 0) < 1:
                raise ValueError(f"need at least one {klass.value} unit")


def config_from_spec(spec: CpuSpec) -> OooConfig:
    """Derive an engine config from a coarse :class:`CpuSpec`."""
    return OooConfig(
        issue_width=spec.issue_width,
        unit_counts={
            UnitClass.INT: spec.int_units,
            UnitClass.FP: max(1, round(spec.fp_throughput)),
            UnitClass.LOAD_STORE: spec.load_store_units,
            UnitClass.BRANCH: 1,
        },
        unit_latency={
            UnitClass.INT: 1.0,
            UnitClass.FP: spec.fp_latency,
            UnitClass.LOAD_STORE: 1.0,
            UnitClass.BRANCH: 1.0,
        },
        unit_pipelined={
            UnitClass.INT: True,
            UnitClass.FP: spec.fp_pipelined,
            UnitClass.LOAD_STORE: spec.load_pipelining,
            UnitClass.BRANCH: True,
        },
        mispredict_penalty=spec.branch_penalty_cycles,
    )


class PreciseException(Exception):
    """Raised by :meth:`OooEngine.run` when an instruction faults.

    Attributes:
        completed: instructions that completed before the faulting one —
            exactly its program-order index, proving precision.
        at_cycle: completion time of the faulting instruction.
    """

    def __init__(self, completed: int, at_cycle: float, label: str):
        super().__init__(
            f"precise exception at {label!r}: {completed} older "
            f"instructions completed, state at cycle {at_cycle:g}")
        self.completed = completed
        self.at_cycle = at_cycle
        self.label = label


@dataclass
class RunResult:
    """Timing of one instruction stream.

    Attributes:
        cycles: total cycles until the last instruction completed.
        instructions: instructions completed.
        completions: per-instruction completion cycles (program order).
        squashed: instructions discarded by branch misprediction.
    """

    cycles: float
    instructions: int
    completions: List[float]
    squashed: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0


LoadLatency = Callable[[int], float]
"""Maps the load's index in the stream to its latency in cycles."""


class OooEngine:
    """Scoreboard-style OoO timing over one instruction stream."""

    def __init__(self, config: OooConfig = OooConfig()):
        self.config = config

    def run(self, stream: Iterable[Instruction],
            load_latency: Optional[LoadLatency] = None) -> RunResult:
        """Execute ``stream``; returns timing or raises PreciseException."""
        config = self.config
        instructions = list(stream)

        # Renaming: architectural register -> cycle its newest value is
        # ready.  Renaming means writes never wait for older readers.
        reg_ready: Dict[str, float] = {}
        # Unit initiation bookkeeping: per class, next-free cycles of each
        # physical unit (length = unit count).
        unit_free: Dict[UnitClass, List[float]] = {
            klass: [0.0] * config.unit_counts[klass] for klass in UnitClass}
        # Reservation stations: per class, completion cycles of in-flight
        # occupants (entry frees when execution *starts*; we approximate
        # with start times, the classic Tomasulo behaviour).
        rs_capacity = {klass: config.reservation_stations
                       * config.unit_counts[klass] for klass in UnitClass}
        rs_busy: Dict[UnitClass, List[float]] = {k: [] for k in UnitClass}

        completions: List[float] = []
        rob: List[float] = []          # completion cycles of in-flight ROB
        dispatched_in_cycle: Dict[int, int] = {}
        dispatch_cursor = 0.0          # earliest dispatch for next instr
        refetch_at = 0.0               # set by mispredicted branches
        load_index = 0
        squashed = 0
        last_complete = 0.0

        for index, instr in enumerate(instructions):
            # ---- dispatch ---------------------------------------------------
            dispatch = max(dispatch_cursor, refetch_at)
            # Issue-width: at most issue_width dispatches share a cycle.
            while dispatched_in_cycle.get(int(dispatch), 0) >= config.issue_width:
                dispatch = float(int(dispatch) + 1)
            # ROB space: the oldest in-flight entry must have completed.
            while len(rob) >= config.rob_entries:
                dispatch = max(dispatch, rob.pop(0))
            # Reservation-station space for this class.
            station = rs_busy[instr.unit]
            station.sort()
            while len(station) >= rs_capacity[instr.unit]:
                dispatch = max(dispatch, station.pop(0))

            dispatched_in_cycle[int(dispatch)] = \
                dispatched_in_cycle.get(int(dispatch), 0) + 1
            dispatch_cursor = dispatch

            # ---- issue/execute ------------------------------------------------
            operands_ready = max(
                (reg_ready.get(reg, 0.0) for reg in instr.sources),
                default=0.0)
            units = unit_free[instr.unit]
            unit_slot = min(range(len(units)), key=units.__getitem__)
            start = max(dispatch + 1.0, operands_ready, units[unit_slot])

            latency = instr.latency
            if latency is None:
                latency = self.config.unit_latency[instr.unit]
            if instr.unit == UnitClass.LOAD_STORE and load_latency is not None:
                latency = max(latency, load_latency(load_index))
                load_index += 1
            finish = start + latency

            if config.unit_pipelined[instr.unit]:
                units[unit_slot] = start + 1.0
            else:
                units[unit_slot] = finish
            station.append(start)      # RS frees at issue

            # ---- in-order completion -----------------------------------------
            complete = max(finish, last_complete)
            # Retire-width: at most retire_width completions per cycle.
            same_cycle = sum(1 for c in completions
                             if int(c) == int(complete))
            if same_cycle >= config.retire_width:
                complete = float(int(complete) + 1)
            last_complete = complete
            completions.append(complete)
            rob.append(complete)

            if instr.dest is not None:
                reg_ready[instr.dest] = finish

            if instr.raises:
                raise PreciseException(completed=index, at_cycle=complete,
                                       label=instr.label or f"instr{index}")

            if instr.unit == UnitClass.BRANCH and instr.mispredicted:
                # Squash younger work; refetch after resolution + penalty.
                refetch_at = finish + config.mispredict_penalty
                squashed += self._count_squashed(instructions, index)

        cycles = completions[-1] if completions else 0.0
        return RunResult(cycles=cycles, instructions=len(completions),
                         completions=completions, squashed=squashed)

    @staticmethod
    def _count_squashed(instructions: Sequence[Instruction],
                        branch_index: int) -> int:
        """Younger instructions already fetched when the branch resolves.

        The model charges the refetch delay via ``refetch_at``; the count
        here only feeds statistics (how much work a flush discards).
        """
        lookahead = 0
        for instr in instructions[branch_index + 1:branch_index + 5]:
            lookahead += 1
        return lookahead


# ---------------------------------------------------------------------------
# Stream builders
# ---------------------------------------------------------------------------


def independent_stream(unit: UnitClass, count: int) -> List[Instruction]:
    """``count`` independent instructions of one class."""
    return [Instruction(unit=unit, dest=f"r{i}", label=f"{unit.value}{i}")
            for i in range(count)]


def dependent_chain(unit: UnitClass, count: int) -> List[Instruction]:
    """A pure RAW chain: each instruction consumes its predecessor."""
    stream = [Instruction(unit=unit, dest="r0", label=f"{unit.value}0")]
    for i in range(1, count):
        stream.append(Instruction(unit=unit, dest=f"r{i}",
                                  sources=(f"r{i-1}",),
                                  label=f"{unit.value}{i}"))
    return stream


def matmult_stream(n: int, has_fma: bool,
                   accumulators: int = 2) -> List[Instruction]:
    """One MatMult inner product of length ``n`` as instructions.

    ``accumulators`` models compiler unrolling: the running sum rotates
    over that many registers, shortening the dependent FP chain exactly as
    the analytic model's ``dependent_fp_chain`` assumes (its default of
    half a link per iteration corresponds to two accumulators).
    """
    if accumulators < 1:
        raise ValueError("need at least one accumulator")
    stream: List[Instruction] = []
    seen_acc = [False] * accumulators
    for k in range(n):
        acc = f"acc{k % accumulators}"
        stream.append(Instruction(UnitClass.LOAD_STORE, dest=f"a{k}",
                                  label=f"lda{k}"))
        stream.append(Instruction(UnitClass.LOAD_STORE, dest=f"b{k}",
                                  label=f"ldb{k}"))
        acc_src = (acc,) if seen_acc[k % accumulators] else ()
        seen_acc[k % accumulators] = True
        if has_fma:
            stream.append(Instruction(
                UnitClass.FP, dest=acc,
                sources=(f"a{k}", f"b{k}") + acc_src, label=f"fmadd{k}"))
        else:
            stream.append(Instruction(UnitClass.FP, dest=f"p{k}",
                                      sources=(f"a{k}", f"b{k}"),
                                      label=f"mul{k}"))
            stream.append(Instruction(UnitClass.FP, dest=acc,
                                      sources=(f"p{k}",) + acc_src,
                                      label=f"add{k}"))
        stream.append(Instruction(UnitClass.INT, dest="idx",
                                  sources=("idx",), label=f"bump{k}"))
        stream.append(Instruction(UnitClass.BRANCH, sources=("idx",),
                                  label=f"loop{k}"))
    final_sources = tuple(f"acc{i}" for i in range(accumulators))
    stream.append(Instruction(UnitClass.LOAD_STORE, sources=final_sources,
                              label="store"))
    return stream
