"""The PowerMANNA network interface.

Deliberately *not* a NIC: a small ASIC with one 32-word (256-byte) FIFO per
direction, memory-mapped control registers, and CRC generation/checking.
All protocol work is done by the node CPUs through programmed I/O —
:mod:`repro.ni.driver` models that software, including the 4-cache-line
send/receive alternation whose cost shows up in Figure 12.

:mod:`repro.ni.dma` models the opposite design point (a Myrinet-style
DMA NIC behind an I/O bus) for the comparator systems.
"""

from repro.ni.crc import crc32, crc32_incremental
from repro.ni.interface import LinkInterface, LinkInterfaceConfig
from repro.ni.driver import DriverConfig, PioDriver

__all__ = [
    "DriverConfig",
    "LinkInterface",
    "LinkInterfaceConfig",
    "PioDriver",
    "crc32",
    "crc32_incremental",
]
