"""The link-interface ASIC.

Per link direction there is a FIFO of 32 64-bit words (256 bytes) decoupling
the node bus from the link, plus memory-mapped status registers the CPUs
poll.  Sending and receiving are fully independent (the link is full
duplex).  The chip also stamps/validates a CRC per message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.faults import FAULTS
from repro.network.link import ByteFifo, Link
from repro.network.message import Flit, FlitKind, Message, build_wire_format
from repro.ni.crc import message_checksum
from repro.obs import OBS
from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.resources import Signal
from repro.sim.stats import Counter


@dataclass(frozen=True)
class LinkInterfaceConfig:
    """Link-interface geometry.

    Attributes:
        fifo_words: depth of each direction's FIFO in 64-bit words — 32 in
            the real chip; Figure 12's ablation varies this.
        word_bytes: FIFO word width.
        register_access_ns: one memory-mapped status-register read
            (uncached load across the node bus).
    """

    fifo_words: int = 32
    word_bytes: int = 8
    register_access_ns: float = 100.0

    def __post_init__(self):
        if self.fifo_words < 4:
            raise ValueError("the link interface needs at least 4 FIFO words")
        if self.word_bytes not in (4, 8):
            raise ValueError(f"word width must be 4 or 8 bytes, got {self.word_bytes}")
        if self.register_access_ns < 0:
            raise ValueError("register access time must be nonnegative")

    @property
    def fifo_bytes(self) -> int:
        return self.fifo_words * self.word_bytes


class CrcError(RuntimeError):
    """End-to-end CRC mismatch detected by the receiving link chip."""


class LinkInterface:
    """One of a node's two link interfaces.

    ``tx_link`` is the fabric attachment's node-to-crossbar link;
    ``rx_fifo`` is the FIFO the crossbar's down-link delivers into (it *is*
    the receive FIFO of this chip, so its capacity is set from the config).
    """

    def __init__(self, sim: Simulator, config: LinkInterfaceConfig,
                 tx_link: Link, rx_fifo: ByteFifo, name: str = "ni"):
        if rx_fifo.capacity_bytes != config.fifo_bytes:
            raise SimulationError(
                f"{name}: receive FIFO is {rx_fifo.capacity_bytes} B but the "
                f"config says {config.fifo_bytes} B — build the fabric with "
                "node_rx_fifo_bytes matching the link-interface config")
        self.sim = sim
        self.config = config
        self.name = name
        self.tx_link = tx_link
        self.rx_fifo = rx_fifo
        self.send_fifo = ByteFifo(sim, config.fifo_bytes, name=f"{name}.sendfifo")
        self.stats = Counter(name)
        self.message_sent = Signal(sim, name=f"{name}.sent")
        self._crc_by_message: Dict[int, int] = {}
        sim.process(self._drain_send_fifo())
        if OBS.enabled and OBS.timeline.enabled:
            probe = OBS.timeline.probe
            probe(sim, "ni.send_fifo_bytes",
                  lambda: float(self.send_fifo.level_bytes), ni=name)
            probe(sim, "ni.rx_fifo_bytes",
                  lambda: float(self.rx_fifo.level_bytes), ni=name)

    # -- send side ----------------------------------------------------------

    def stage_flit(self, flit: Flit) -> Event:
        """CPU stores one flit into the send FIFO (blocks while full)."""
        return self.send_fifo.put(flit)

    def send_space_bytes(self) -> int:
        """Status-register view of free send-FIFO space."""
        return self.send_fifo.free_bytes

    def register_crc(self, message: Message) -> None:
        """The chip computes the CRC as the message streams out."""
        self._crc_by_message[message.message_id] = message_checksum(
            message.message_id, message.payload_bytes, message.source,
            message.dest)

    def _drain_send_fifo(self):
        sim = self.sim
        fifo_get = self.send_fifo.get_pooled
        link_send = self.tx_link.tx.put_pooled
        stats_incr = self.stats.incr
        data_kind = FlitKind.DATA
        close_kind = FlitKind.CLOSE
        inject_span = 0
        while True:
            flit = yield fifo_get()
            if OBS.enabled and not inject_span:
                inject_span = OBS.tracer.begin(
                    "ni.inject", self.name, sim.now, category="ni",
                    message=flit.message_id)
            if (FAULTS.enabled and flit.kind == data_kind
                    and FAULTS.engine.fires("ni_drop", self.name,
                                            sim.now)):
                # Send-FIFO overflow: a word is lost before it reaches the
                # wire.  The receiver sees a short payload and fails CRC.
                stats_incr("dropped_flits")
                if OBS.enabled:
                    OBS.metrics.incr("faults.ni_dropped_flits", ni=self.name)
                continue
            yield link_send(flit)
            stats_incr("tx_bytes", flit.nbytes)
            if flit.kind == close_kind:
                stats_incr("tx_messages")
                if OBS.enabled:
                    OBS.tracer.end(inject_span, sim.now)
                    OBS.metrics.incr("ni.tx_messages", ni=self.name)
                inject_span = 0

    # -- receive side -----------------------------------------------------------

    def recv_available_bytes(self) -> int:
        """Status-register view of the receive FIFO fill level."""
        return self.rx_fifo.level_bytes

    def read_flit(self) -> Event:
        """CPU loads one flit from the receive FIFO."""
        return self.rx_fifo.get()

    def check_crc(self, message: Message) -> bool:
        """Validate the received message's CRC.

        Injected in-flight corruption (the fault engine marked the
        message) is reported by returning ``False`` — the hardware flags
        the error in a status register and software decides what to do.
        A stamped-CRC mismatch (tests forging ``message.tag['crc']``)
        still raises :class:`CrcError`, as a protocol violation would.
        """
        if FAULTS.enabled and FAULTS.engine.consume_corrupt(
                message.message_id):
            self.stats.incr("crc_errors")
            if OBS.enabled:
                OBS.metrics.incr("ni.crc_errors", ni=self.name)
            return False
        expected = message_checksum(message.message_id, message.payload_bytes,
                                    message.source, message.dest)
        stamped = self._lookup_remote_crc(message)
        if stamped is not None and stamped != expected:
            self.stats.incr("crc_errors")
            if OBS.enabled:
                OBS.metrics.incr("ni.crc_errors", ni=self.name)
            raise CrcError(
                f"{self.name}: CRC mismatch on message {message.message_id}: "
                f"stamped {stamped:#010x}, computed {expected:#010x}")
        self.stats.incr("crc_checked")
        return True

    def _lookup_remote_crc(self, message: Message) -> Optional[int]:
        # In hardware the CRC travels with the message; the simulator keeps
        # it in the message registry (see repro.msg.api).  When the message
        # carries an injected-fault CRC (tests), it appears in message.tag.
        if isinstance(message.tag, dict) and "crc" in message.tag:
            return message.tag["crc"]
        return message_checksum(message.message_id, message.payload_bytes,
                                message.source, message.dest)


def wire_flits(message: Message) -> list[Flit]:
    """The exact flit sequence the CPU stages for ``message``."""
    return build_wire_format(message)
