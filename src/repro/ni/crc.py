"""CRC-32 (IEEE 802.3 polynomial), as generated/checked by the link chip.

"In addition to the protocol conversion, the link-interface chip performs
generation and checking of a CRC check sum, ensuring that communication is
not only efficient but also reliable."

The implementation is the standard reflected table-driven CRC-32
(polynomial 0x04C11DB7, reflected 0xEDB88320) so results match zlib.crc32,
plus an incremental interface mirroring how the hardware folds the checksum
in as words stream through the FIFO.
"""

from __future__ import annotations

from typing import Iterable

_POLY_REFLECTED = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY_REFLECTED
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, initial: int = 0) -> int:
    """CRC-32 of ``data``; compatible with :func:`zlib.crc32`."""
    crc = initial ^ 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def crc32_incremental(chunks: Iterable[bytes]) -> int:
    """CRC-32 folded over a stream of chunks, as the hardware does per word."""
    crc = 0
    for chunk in chunks:
        crc = crc32(chunk, initial=crc)
    return crc


def message_checksum(message_id: int, payload_bytes: int, source: int,
                     dest: int) -> int:
    """Deterministic checksum standing in for payload CRC.

    The simulator moves sizes, not data; this derives a stable 32-bit
    check value from the message identity so end-to-end integrity checking
    has something real to verify.
    """
    blob = (f"{message_id}:{source}->{dest}:{payload_bytes}").encode("ascii")
    return crc32(blob)
