"""DMA-based NIC model — the design point PowerMANNA argues against.

A Myrinet-style interface: a network processor + DMA engine on an I/O bus
(PCI).  Sending crosses host memory -> PCI -> NI SRAM -> link; the NI
processor must be programmed per message, and address translation/pinning
adds per-message software cost.  The model is analytic (closed-form
latency/gap), which mirrors the paper's own method of quoting published
BIP/FM measurements rather than running them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DmaNicModel:
    """Closed-form performance model of a DMA NIC + user-level library.

    Attributes:
        name: library/system label (e.g. "BIP/Myrinet").
        host_overhead_send_ns: CPU cost per send (descriptor build, doorbell).
        host_overhead_recv_ns: CPU cost per receive (poll/upcall, match).
        dma_setup_ns: NI-processor + DMA-engine start cost per transfer.
        pci_mb_s: host I/O bus bandwidth (the 132 MB/s PCI ceiling).
        link_mb_s: network link bandwidth.
        wire_ns: switch + cable flight time.
        pipelined: True when the NI cuts through (send DMA, link and
            receive DMA overlap for large messages), as BIP/FM do.
        per_byte_software_ns: extra per-byte host cost (FM's flow-control
            copies; 0 for BIP's zero-copy path).
    """

    name: str
    host_overhead_send_ns: float
    host_overhead_recv_ns: float
    dma_setup_ns: float
    pci_mb_s: float
    link_mb_s: float
    wire_ns: float = 500.0
    pipelined: bool = True
    per_byte_software_ns: float = 0.0

    def __post_init__(self):
        if self.pci_mb_s <= 0 or self.link_mb_s <= 0:
            raise ValueError("bus/link bandwidths must be positive")
        if min(self.host_overhead_send_ns, self.host_overhead_recv_ns,
               self.dma_setup_ns, self.wire_ns,
               self.per_byte_software_ns) < 0:
            raise ValueError("overheads must be nonnegative")

    @property
    def bottleneck_mb_s(self) -> float:
        """End-to-end streaming ceiling (PCI vs link)."""
        return min(self.pci_mb_s, self.link_mb_s)

    def _transfer_ns(self, nbytes: int) -> float:
        software = nbytes * self.per_byte_software_ns
        if self.pipelined:
            # Stages overlap: the slowest stage sets the data time.
            return nbytes * 1e3 / self.bottleneck_mb_s + software
        # Store-and-forward through NI SRAM on both sides.
        return (nbytes * 1e3 / self.pci_mb_s * 2
                + nbytes * 1e3 / self.link_mb_s + software)

    def one_way_latency_ns(self, nbytes: int) -> float:
        """Half ping-pong time for an ``nbytes`` message."""
        return (self.host_overhead_send_ns + self.dma_setup_ns * 2
                + self.wire_ns + self._transfer_ns(nbytes)
                + self.host_overhead_recv_ns)

    def gap_ns(self, nbytes: int) -> float:
        """Inter-message time at saturation (LogP gap).

        The host is busy for its overhead plus software per-byte work; the
        wire/DMA pipeline is busy for the data time — whichever is longer
        paces back-to-back messages.
        """
        host = (self.host_overhead_send_ns
                + nbytes * self.per_byte_software_ns)
        pipe = self.dma_setup_ns + nbytes * 1e3 / self.bottleneck_mb_s
        return max(host, pipe)

    def unidirectional_mb_s(self, nbytes: int) -> float:
        return nbytes * 1e3 / self.gap_ns(nbytes)

    def bidirectional_mb_s(self, nbytes: int,
                           duplex_efficiency: float = 0.9) -> float:
        """Aggregate send+receive bandwidth.

        DMA NICs handle both directions in hardware, so they approach
        2x unidirectional, derated for PCI sharing by the two DMA engines.
        """
        one_way = self.unidirectional_mb_s(nbytes)
        aggregate = 2 * one_way * duplex_efficiency
        return min(aggregate, self.pci_mb_s * duplex_efficiency * 2)
