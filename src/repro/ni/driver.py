"""The PIO communication driver — the node CPU acting as the NIC.

PowerMANNA has no network controller: a node CPU copies messages between
user memory and the link interface's small FIFOs with programmed I/O.
This module models that software, with the constants that set Figures 9-12:

* per-message *send setup* (build the route header, check status),
* PIO copy bandwidths (uncached stores into the send FIFO are faster than
  uncached loads from the receive FIFO),
* the *batch* of at most 4 cache lines (= the 256-byte FIFO) the driver
  moves before it must re-test the other direction, and
* the direction-*switch* overhead of the bidirectional loop, which —
  together with the small FIFOs — produces the Figure-12 bandwidth dip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.faults import FAULTS
from repro.network.message import Flit, FlitKind, Message, build_wire_format
from repro.ni.interface import LinkInterface
from repro.obs import OBS
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import Counter, Histogram


@dataclass(frozen=True)
class DriverConfig:
    """Software timing of the PIO driver.

    Attributes:
        send_setup_ns: per-message cost before the first byte moves
            (header construction, status-register check; user level — no
            system call).
        recv_dispatch_ns: per-message cost after the last byte (match,
            CRC status check, hand-off to the user buffer owner).
        copy_out_mb_s: PIO bandwidth memory -> send FIFO (write-combined
            uncached stores).
        copy_in_mb_s: PIO bandwidth receive FIFO -> memory (uncached
            loads; slower than stores).
        batch_bytes: bytes moved per direction before the driver re-tests
            the other direction; None derives it from the FIFO size (the
            paper's "at most 4 cache lines").
        switch_ns: cost of one direction switch in the bidirectional loop
            (status reads + branch logic).
        poll_ns: one idle poll of the receive status register.
    """

    send_setup_ns: float = 1150.0
    recv_dispatch_ns: float = 1100.0
    copy_out_mb_s: float = 120.0
    copy_in_mb_s: float = 90.0
    batch_bytes: Optional[int] = None
    switch_ns: float = 1000.0
    poll_ns: float = 100.0

    def __post_init__(self):
        if min(self.send_setup_ns, self.recv_dispatch_ns, self.switch_ns,
               self.poll_ns) < 0:
            raise ValueError("driver overheads must be nonnegative")
        if self.copy_out_mb_s <= 0 or self.copy_in_mb_s <= 0:
            raise ValueError("copy bandwidths must be positive")
        if self.batch_bytes is not None and self.batch_bytes < 8:
            raise ValueError("batch must cover at least one word")

    def copy_out_ns(self, nbytes: int) -> float:
        return nbytes * 1e3 / self.copy_out_mb_s

    def copy_in_ns(self, nbytes: int) -> float:
        return nbytes * 1e3 / self.copy_in_mb_s


class PioDriver:
    """Per-link-interface driver instance (one per NI, run by a node CPU)."""

    def __init__(self, sim: Simulator, ni: LinkInterface, config: DriverConfig,
                 registry: Dict[int, Message], name: str = "driver"):
        self.sim = sim
        self.ni = ni
        self.config = config
        self.registry = registry
        self.name = name
        self.stats = Counter(name)
        self.send_times = Histogram(f"{name}.send_ns")
        self._batch = config.batch_bytes or ni.config.fifo_bytes
        # One CPU runs the driver: concurrent send (or receive) requests
        # serialise, and a message's flits never interleave on the wire.
        self._send_lock = Resource(sim, capacity=1, name=f"{name}.sendlock")
        self._recv_lock = Resource(sim, capacity=1, name=f"{name}.recvlock")
        if OBS.enabled and OBS.timeline.enabled:
            OBS.timeline.probe(
                sim, "driver.send_backlog",
                lambda: float(self._send_lock.queue_length), driver=name)

    # -- unidirectional send -------------------------------------------------

    def send_message(self, message: Message):
        """Process: transmit one message (returns when fully staged).

        The driver is done when the last flit has entered the send FIFO;
        wire delivery continues asynchronously.  ``message.sent_at`` is
        stamped at the start of the send call, as a ping-pong benchmark
        would measure it.
        """
        yield self._send_lock.acquire()
        send_span = 0
        try:
            start = self.sim.now
            message.sent_at = start
            if OBS.enabled:
                # Root of the message's causal tree; the receiving driver
                # closes it at delivery (see _receive_locked).
                OBS.tracer.begin(
                    "message", self.name, start, category="message",
                    message=message.message_id, root=True,
                    src=message.source, dst=message.dest,
                    nbytes=message.payload_bytes)
                send_span = OBS.tracer.begin(
                    "driver.send", self.name, start, category="driver",
                    message=message.message_id)
            self.registry[message.message_id] = message
            self.ni.register_crc(message)
            if FAULTS.enabled:
                yield from self._maybe_hang()
            pooled_timeout = self.sim.pooled_timeout
            copy_out_ns = self.config.copy_out_ns
            stage_flit = self.ni.send_fifo.put_pooled
            batch = self._batch
            yield pooled_timeout(self.config.send_setup_ns)

            flits = build_wire_format(message)
            pending = 0
            for flit in flits:
                pending += flit.nbytes
                if pending >= batch:
                    yield pooled_timeout(copy_out_ns(pending))
                    pending = 0
                yield stage_flit(flit)
            if pending:
                yield pooled_timeout(copy_out_ns(pending))
            self.stats.incr("sent")
            self.stats.incr("sent_bytes", message.payload_bytes)
            self.send_times.add(self.sim.now - start)
            if OBS.enabled:
                OBS.tracer.end(send_span, self.sim.now)
                OBS.metrics.incr("driver.sent", driver=self.name)
                OBS.metrics.incr("driver.sent_bytes",
                                 message.payload_bytes, driver=self.name)
            return message
        finally:
            self._send_lock.release()

    def _maybe_hang(self):
        """Fault hook: the CPU running the driver stalls mid-operation."""
        stall = FAULTS.engine.stall_ns("node_hang", self.name, self.sim.now)
        if stall > 0:
            self.stats.incr("hangs")
            if OBS.enabled:
                OBS.metrics.incr("faults.driver_hangs", driver=self.name)
            yield self.sim.pooled_timeout(stall)

    # -- unidirectional receive ------------------------------------------------

    def receive_message(self):
        """Process: block until one full message has been received.

        The PIO copy is pipelined with flit arrival: the driver's copy
        clock advances per flit and the message is delivered when both the
        last flit has arrived and its copy has finished.
        """
        yield self._recv_lock.acquire()
        try:
            yield from self._receive_locked()
        finally:
            self._recv_lock.release()
        return self._last_received

    def _receive_locked(self):
        sim = self.sim
        read_flit = self.ni.rx_fifo.get_pooled
        copy_in_ns = self.config.copy_in_ns
        data_kind = FlitKind.DATA
        close_kind = FlitKind.CLOSE
        copy_done = 0.0
        payload = 0
        first: Optional[Flit] = None
        drain_span = 0
        while True:
            flit = yield read_flit()
            if first is None:
                first = flit
                if OBS.enabled:
                    drain_span = OBS.tracer.begin(
                        "driver.drain", self.name, sim.now,
                        category="driver", message=flit.message_id)
            now = sim._now
            copy_done = (copy_done if copy_done > now else now) + \
                copy_in_ns(flit.nbytes)
            if flit.kind == data_kind:
                payload += flit.nbytes
            elif flit.kind == close_kind:
                break
        tail_copy = max(0.0, copy_done - self.sim.now)
        if tail_copy:
            yield self.sim.pooled_timeout(tail_copy)
        if FAULTS.enabled:
            yield from self._maybe_hang()
        yield self.sim.pooled_timeout(self.config.recv_dispatch_ns)

        message = self.registry.get(flit.message_id)
        if message is None:
            raise KeyError(
                f"{self.name}: received unknown message id {flit.message_id}")
        message.crc_ok = True
        if payload != message.payload_bytes:
            if FAULTS.enabled:
                # A flit was dropped in flight: the payload is short, so
                # the CRC over the full message cannot match.  Deliver as
                # corrupt and let the reliable protocol retransmit.
                self.stats.incr("short_messages")
                self.ni.stats.incr("crc_errors")
                if OBS.enabled:
                    OBS.metrics.incr("ni.crc_errors", ni=self.ni.name)
                message.crc_ok = False
            else:
                raise AssertionError(
                    f"{self.name}: message {message.message_id} carried "
                    f"{payload} payload bytes, expected {message.payload_bytes}")
        elif not self.ni.check_crc(message):
            message.crc_ok = False
        message.delivered_at = self.sim.now
        self.stats.incr("received")
        self.stats.incr("received_bytes", payload)
        if OBS.enabled:
            OBS.tracer.end(drain_span, self.sim.now)
            OBS.tracer.end_message(message.message_id, self.sim.now)
            OBS.metrics.incr("driver.received", driver=self.name)
            OBS.metrics.incr("driver.received_bytes", payload,
                             driver=self.name)
        self._last_received = message
        return message

    # -- the bidirectional loop (Figure 12) ---------------------------------------

    def bidirectional_exchange(self, outgoing: Message):
        """Process: send ``outgoing`` while receiving one inbound message.

        One CPU thread serves both directions: it fills the send FIFO with
        at most one batch, then must test and drain the receive FIFO, then
        switch back — paying ``switch_ns`` per turn.  Returns the received
        message.
        """
        yield self._send_lock.acquire()
        yield self._recv_lock.acquire()
        try:
            inbound = yield from self._exchange_locked(outgoing)
            return inbound
        finally:
            self._recv_lock.release()
            self._send_lock.release()

    def _exchange_locked(self, outgoing: Message):
        cfg = self.config
        outgoing.sent_at = self.sim.now
        exchange_span = 0
        if OBS.enabled:
            OBS.tracer.begin(
                "message", self.name, self.sim.now, category="message",
                message=outgoing.message_id, root=True, src=outgoing.source,
                dst=outgoing.dest, nbytes=outgoing.payload_bytes,
                exchange=True)
            exchange_span = OBS.tracer.begin(
                "driver.exchange", self.name, self.sim.now,
                category="driver", message=outgoing.message_id)
        self.registry[outgoing.message_id] = outgoing
        self.ni.register_crc(outgoing)
        yield self.sim.pooled_timeout(cfg.send_setup_ns)

        out_flits = build_wire_format(outgoing)
        out_index = 0
        inbound: Optional[Message] = None
        in_done = False
        in_payload = 0

        while out_index < len(out_flits) or not in_done:
            switched = False
            # Send phase: stage up to one batch without blocking on a full
            # FIFO (a full FIFO is exactly the signal to go service receive).
            if out_index < len(out_flits):
                staged = 0
                while out_index < len(out_flits) and staged < self._batch:
                    flit = out_flits[out_index]
                    if self.ni.send_fifo.free_bytes < flit.nbytes:
                        break
                    self.ni.send_fifo.try_put(flit)
                    staged += flit.nbytes
                    out_index += 1
                if staged:
                    yield self.sim.pooled_timeout(cfg.copy_out_ns(staged))
                    switched = True

            # Receive phase: drain up to one batch of whatever has arrived.
            drained = 0
            while drained < self._batch:
                ok, flit = self.ni.rx_fifo.try_get()
                if not ok:
                    break
                drained += flit.nbytes
                if flit.kind == FlitKind.DATA:
                    in_payload += flit.nbytes
                elif flit.kind == FlitKind.CLOSE:
                    inbound = self.registry.get(flit.message_id)
                    in_done = True
                    break
            if drained:
                yield self.sim.pooled_timeout(cfg.copy_in_ns(drained))
                switched = True

            # Direction-switch / poll cost.
            yield self.sim.pooled_timeout(cfg.switch_ns if switched else cfg.poll_ns)

        if inbound is None:
            raise AssertionError(f"{self.name}: exchange ended with no inbound message")
        if in_payload != inbound.payload_bytes:
            raise AssertionError(
                f"{self.name}: inbound {inbound.message_id} carried "
                f"{in_payload} B, expected {inbound.payload_bytes}")
        yield self.sim.pooled_timeout(cfg.recv_dispatch_ns)
        inbound.crc_ok = self.ni.check_crc(inbound)
        inbound.delivered_at = self.sim.now
        self.stats.incr("exchanges")
        if OBS.enabled:
            OBS.tracer.end(exchange_span, self.sim.now)
            OBS.tracer.end_message(inbound.message_id, self.sim.now)
            OBS.metrics.incr("driver.exchanges", driver=self.name)
        return inbound
