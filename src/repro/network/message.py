"""Messages and their wire format.

A message travelling the PowerMANNA network is, on the wire:

``[route byte] * crossbars_on_path  +  payload bytes  +  [close byte]``

Each crossbar consumes the leading route byte (it addresses that crossbar's
output channel) and forwards the rest.  The simulator moves data as
*flits*: route and close commands are one-byte flits, payload is carried in
word flits of up to 8 bytes (the granularity of the link interface's 64-bit
FIFOs).
"""

from __future__ import annotations

import enum
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

_message_ids = itertools.count(1)


@contextmanager
def message_id_namespace(start: int = 1):
    """Run a block with its own message-id counter, restoring the old one.

    Message ids are normally process-global, which makes them depend on
    everything that ran earlier in the process.  The parallel sweep
    scheduler runs every sweep point inside its own namespace so a point
    produces the same ids whether it executes first, last, in-process or
    in a worker — the property that makes ``--jobs N`` traces byte-compare
    equal to ``--jobs 1``.
    """
    global _message_ids
    saved = _message_ids
    _message_ids = itertools.count(start)
    try:
        yield
    finally:
        _message_ids = saved

PAYLOAD_FLIT_BYTES = 8  # one 64-bit word, the NI FIFO granularity


class FlitKind(enum.Enum):
    ROUTE = "route"
    DATA = "data"
    CLOSE = "close"


@dataclass(frozen=True)
class Flit:
    """The unit moved by links and crossbars.

    Attributes:
        kind: route command, payload word, or close command.
        nbytes: bytes this flit occupies on the wire.
        message_id: id of the owning message.
        route_port: for ROUTE flits, the output channel it addresses.
        seq: payload word index (DATA flits) for ordering checks.
        sclass: service-class index of the owning message; the crossbar's
            classed output arbiters read it off the ROUTE flit.
    """

    kind: FlitKind
    nbytes: int
    message_id: int
    route_port: Optional[int] = None
    seq: int = 0
    sclass: int = 0

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError(f"flit size must be positive, got {self.nbytes}")
        if self.kind == FlitKind.ROUTE and self.route_port is None:
            raise ValueError("ROUTE flits need a route_port")
        if self.kind != FlitKind.ROUTE and self.route_port is not None:
            raise ValueError(f"{self.kind} flits must not carry a route_port")


@dataclass
class Message:
    """A logical message from one node's link interface to another's.

    Attributes:
        source: sending node id.
        dest: receiving node id.
        payload_bytes: user payload length.
        route: output-channel bytes, one per crossbar on the path.
        message_id: unique id (auto-assigned).
        sent_at / delivered_at: filled by the NI / driver models.
        crc_ok: set False by the receiving link interface when the CRC
            check failed (injected in-flight corruption); the reliable
            protocols discard such deliveries and retransmit.
        sclass: service-class index (0 = best effort); carried by every
            flit so classed arbiters can tell wormholes apart.
    """

    source: int
    dest: int
    payload_bytes: int
    route: Sequence[int] = field(default_factory=tuple)
    message_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: Optional[float] = None
    delivered_at: Optional[float] = None
    tag: Optional[object] = None
    crc_ok: bool = True
    sclass: int = 0

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError(f"payload must be nonnegative, got {self.payload_bytes}")

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the first link: route header + payload + close."""
        return len(self.route) + self.payload_bytes + 1

    def latency(self) -> float:
        if self.sent_at is None or self.delivered_at is None:
            raise ValueError(f"message {self.message_id} not fully timed")
        return self.delivered_at - self.sent_at


def build_wire_format(message: Message) -> List[Flit]:
    """Expand a message into its flit sequence (header, payload, close)."""
    sclass = message.sclass
    flits: List[Flit] = [
        Flit(FlitKind.ROUTE, 1, message.message_id, route_port=port,
             sclass=sclass)
        for port in message.route
    ]
    remaining = message.payload_bytes
    seq = 0
    while remaining > 0:
        chunk = min(PAYLOAD_FLIT_BYTES, remaining)
        flits.append(Flit(FlitKind.DATA, chunk, message.message_id, seq=seq,
                          sclass=sclass))
        remaining -= chunk
        seq += 1
    flits.append(Flit(FlitKind.CLOSE, 1, message.message_id, sclass=sclass))
    return flits


def payload_flit_count(payload_bytes: int) -> int:
    """How many DATA flits a payload occupies."""
    return (payload_bytes + PAYLOAD_FLIT_BYTES - 1) // PAYLOAD_FLIT_BYTES
