"""Per-class quality of service on the crossbar fabric.

The paper's crossbar arbitrates each output channel strictly first-come
first-served; every open-loop traffic study of switched fabrics (QCDSP,
RTNN, the T9000 hypercube) shows that under contention the interesting
questions are *per class*: does urgent traffic keep its latency tail when
bulk traffic saturates an output?  This module adds:

* :class:`TrafficClass` / :class:`QosConfig` — the declarative service
  classes a fabric is built with (priority, weight, optional token-bucket
  rate limit per class);
* :class:`ClassedArbiter` — the pluggable replacement for the bare
  :class:`~repro.sim.resources.Resource` at a crossbar output port, with
  three policies: ``fifo`` (arrival order, the hardware's behaviour),
  ``priority`` (strict priority, lower number wins), ``wdrr``
  (weighted-deficit-round-robin over the classes, byte-charged);
* :class:`AdaptiveConfig` / :class:`AdaptiveRouter` — congestion-aware
  source routing layered on the :class:`~repro.network.routing.RouteTable`
  failure API: when an output's queue depth or wait-time slope crosses a
  threshold the edge is marked *congested* (a soft failure) and new
  messages route around it; if avoidance would disconnect a pair the
  router falls back to the congested shortest path.

A fabric built without a :class:`QosConfig` keeps the legacy ``Resource``
arbiters and is byte-identical to the pre-QoS simulator — the default
``fifo`` CLI policy rides that path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Hashable, List, Optional, Set, Tuple

from collections import deque

from repro.obs import OBS
from repro.sim.engine import Event, SimulationError, Simulator

ARBITER_POLICIES = ("fifo", "priority", "wdrr")


@dataclass(frozen=True)
class TrafficClass:
    """One service class of the fabric.

    Attributes:
        name: label used in tags, tables and metrics.
        priority: strict-priority rank (lower wins; only the ``priority``
            policy reads it).
        weight: WDRR share (only the ``wdrr`` policy reads it).
        rate_mb_s: optional token-bucket rate limit for the class at every
            output port (None = unlimited).
        burst_bytes: token-bucket depth when rate-limited.
    """

    name: str
    priority: int = 0
    weight: int = 1
    rate_mb_s: Optional[float] = None
    burst_bytes: int = 4096

    def __post_init__(self):
        if self.weight < 1:
            raise ValueError(f"class {self.name!r}: weight must be >= 1")
        if self.rate_mb_s is not None and self.rate_mb_s <= 0:
            raise ValueError(f"class {self.name!r}: rate must be positive")
        if self.burst_bytes < 1:
            raise ValueError(f"class {self.name!r}: burst must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "priority": self.priority,
                "weight": self.weight, "rate_mb_s": self.rate_mb_s,
                "burst_bytes": self.burst_bytes}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrafficClass":
        return cls(**data)


@dataclass(frozen=True)
class QosConfig:
    """Arbitration policy + the ordered tuple of service classes.

    Class index *is* the wire tag (``Flit.sclass``); ordering therefore
    matters and is part of the identity.
    """

    arbiter: str = "fifo"
    classes: Tuple[TrafficClass, ...] = (TrafficClass("best-effort"),)
    quantum_bytes: int = 1024

    def __post_init__(self):
        if self.arbiter not in ARBITER_POLICIES:
            raise ValueError(f"unknown arbiter policy {self.arbiter!r}; "
                             f"choose from {ARBITER_POLICIES}")
        if not self.classes:
            raise ValueError("QosConfig needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        if self.quantum_bytes < 1:
            raise ValueError("quantum must be positive")

    def class_index(self, name: str) -> int:
        for index, tc in enumerate(self.classes):
            if tc.name == name:
                return index
        raise KeyError(f"no traffic class {name!r} "
                       f"(classes: {[c.name for c in self.classes]})")

    def to_dict(self) -> Dict[str, Any]:
        return {"arbiter": self.arbiter,
                "classes": [c.to_dict() for c in self.classes],
                "quantum_bytes": self.quantum_bytes}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QosConfig":
        return cls(arbiter=data.get("arbiter", "fifo"),
                   classes=tuple(TrafficClass.from_dict(c)
                                 for c in data.get("classes", [])),
                   quantum_bytes=data.get("quantum_bytes", 1024))


class _TokenBucket:
    """Post-charged token bucket: a grant is admissible while the bucket
    is non-negative; the wormhole's actual bytes are debited at close, so
    the bucket may go negative and the class then waits out the debt."""

    def __init__(self, rate_mb_s: float, burst_bytes: int):
        # MB/s == bytes/us == 1e-3 bytes/ns.
        self.rate_bytes_ns = rate_mb_s * 1e-3
        self.burst = float(burst_bytes)
        self.tokens = float(burst_bytes)
        self._last = 0.0

    def refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst,
                              self.tokens + (now - self._last)
                              * self.rate_bytes_ns)
            self._last = now

    def eligible(self, now: float) -> bool:
        self.refill(now)
        return self.tokens > 0.0

    def charge(self, nbytes: int, now: float) -> None:
        self.refill(now)
        self.tokens -= nbytes

    def eligible_at(self, now: float) -> float:
        """Earliest time the bucket returns to positive."""
        self.refill(now)
        if self.tokens > 0.0:
            return now
        return now + (-self.tokens) / self.rate_bytes_ns + 1e-9


class ClassedArbiter:
    """A capacity-1 output arbiter with per-class queueing.

    Drop-in for the statistics surface of
    :class:`~repro.sim.resources.Resource` (``queue_length``,
    ``total_acquisitions``, ``total_wait_time``, ``utilization``), plus
    per-class accounting.  ``acquire(sclass)`` returns an event whose
    value is the time spent queued; ``release(sclass, nbytes)`` closes the
    wormhole and charges ``nbytes`` to the class's token bucket and WDRR
    deficit.
    """

    def __init__(self, sim: Simulator, qos: QosConfig,
                 name: str = "arbiter"):
        self.sim = sim
        self.qos = qos
        self.name = name
        self._acquire_name = name + ".acquire"
        self.in_use = 0
        #: Per-class queues of ``(arrival_seq, event, requested_at)``;
        #: the sequence number gives the fifo policy its global order.
        self._waiters: List[Deque[Tuple[int, Event, float]]] = [
            deque() for _ in qos.classes]
        self._arrivals = 0
        self._buckets: List[Optional[_TokenBucket]] = [
            _TokenBucket(tc.rate_mb_s, tc.burst_bytes)
            if tc.rate_mb_s is not None else None
            for tc in qos.classes]
        self._deficit = [0.0] * len(qos.classes)
        self._rr = 0
        self._wake_pending = False
        # Resource-compatible statistics.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self.busy_time = 0.0
        self._last_change = 0.0
        # Per-class statistics: grants, waited ns, rate-limit stalls.
        self.class_grants = [0] * len(qos.classes)
        self.class_wait_ns = [0.0] * len(qos.classes)
        self.class_rate_stalls = [0] * len(qos.classes)

    # -- the Resource-compatible surface ------------------------------------

    @property
    def queue_length(self) -> int:
        return sum(len(q) for q in self._waiters)

    def class_queue_length(self, sclass: int) -> int:
        return len(self._waiters[sclass])

    def utilization(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        if now <= 0:
            return 0.0
        busy = self.busy_time + self.in_use * (now - self._last_change)
        return busy / now

    def sync(self, now: Optional[float] = None) -> None:
        """Fold occupancy forward so ``busy_time`` is current."""
        self._account(now)

    def wait_pressure(self, now: Optional[float] = None) -> float:
        """Granted wait time plus the wait accrued by still-queued
        requests — the live congestion signal the adaptive router reads."""
        now = self.sim.now if now is None else now
        queued = sum(now - requested_at
                     for q in self._waiters
                     for _, _, requested_at in q)
        return self.total_wait_time + queued

    # -- acquisition ---------------------------------------------------------

    def acquire(self, sclass: int = 0) -> Event:
        if not 0 <= sclass < len(self.qos.classes):
            raise SimulationError(
                f"{self.name}: no service class {sclass} "
                f"(have {len(self.qos.classes)})")
        event = Event(self.sim, self._acquire_name)
        self._arrivals += 1
        self._waiters[sclass].append((self._arrivals, event, self.sim.now))
        self._kick()
        return event

    def release(self, sclass: int = 0, nbytes: int = 0) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle arbiter {self.name!r}")
        now = self.sim.now
        self._account(now)
        self.in_use = 0
        bucket = self._buckets[sclass]
        if bucket is not None and nbytes:
            bucket.charge(nbytes, now)
        if self.qos.arbiter == "wdrr" and nbytes:
            self._deficit[sclass] -= nbytes
        self._kick()

    # -- grant engine --------------------------------------------------------

    def _eligible(self, now: float) -> List[int]:
        out = []
        for index, q in enumerate(self._waiters):
            if not q:
                # An empty class banks no deficit (standard DRR).
                self._deficit[index] = 0.0
                continue
            bucket = self._buckets[index]
            if bucket is not None and not bucket.eligible(now):
                continue
            out.append(index)
        return out

    def _kick(self) -> None:
        if self.in_use:
            return
        now = self.sim.now
        eligible = self._eligible(now)
        if not eligible:
            self._arm_rate_timer(now)
            return
        policy = self.qos.arbiter
        if policy == "fifo":
            chosen = min(eligible,
                         key=lambda c: self._waiters[c][0][0])
        elif policy == "priority":
            chosen = min(eligible,
                         key=lambda c: (self.qos.classes[c].priority, c))
        else:
            chosen = self._pick_wdrr(eligible)
        _, event, requested_at = self._waiters[chosen].popleft()
        self._account(now)
        self.in_use = 1
        waited = now - requested_at
        self.total_acquisitions += 1
        self.total_wait_time += waited
        self.class_grants[chosen] += 1
        self.class_wait_ns[chosen] += waited
        event.trigger(waited)

    def _pick_wdrr(self, eligible: List[int]) -> int:
        n = len(self.qos.classes)
        quantum = self.qos.quantum_bytes
        for _ in range(2):
            for step in range(n):
                index = (self._rr + step) % n
                if index in eligible and self._deficit[index] > 0.0:
                    self._rr = index
                    return index
            # Nobody holds a positive deficit: one quantum round.
            for index in eligible:
                self._deficit[index] += \
                    self.qos.classes[index].weight * quantum
        return eligible[0]  # unreachable: the top-up made one positive

    def _arm_rate_timer(self, now: float) -> None:
        """All waiting classes are rate-blocked: wake at the earliest
        bucket refill and re-run the grant decision."""
        wake_at = None
        for index, q in enumerate(self._waiters):
            if not q:
                continue
            bucket = self._buckets[index]
            if bucket is None:
                continue
            self.class_rate_stalls[index] += 1
            at = bucket.eligible_at(now)
            if wake_at is None or at < wake_at:
                wake_at = at
        if wake_at is None or self._wake_pending:
            return
        self._wake_pending = True
        delay = max(0.0, wake_at - now)

        def waker():
            yield self.sim.timeout(delay)
            self._wake_pending = False
            self._kick()

        self.sim.process(waker())

    def _account(self, now: Optional[float] = None) -> None:
        now = self.sim.now if now is None else now
        self.busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    # -- reporting -----------------------------------------------------------

    def class_stats(self) -> Dict[str, Dict[str, float]]:
        return {tc.name: {"grants": self.class_grants[index],
                          "wait_ns": self.class_wait_ns[index],
                          "rate_stalls": self.class_rate_stalls[index]}
                for index, tc in enumerate(self.qos.classes)}


@dataclass(frozen=True)
class AdaptiveConfig:
    """When and how the router detours around congested output ports.

    Attributes:
        depth_threshold: an output whose arbiter queue holds at least this
            many waiting wormholes is congested.
        wait_slope: optional second signal — the output's wait-time growth
            rate (ns of queueing accrued per ns of simulated time) above
            which it is congested, measured between scans.
        check_interval_ns: minimum time between congestion scans; route
            requests between scans reuse the last verdict, which also
            bounds how often the route memo is invalidated.
    """

    depth_threshold: int = 4
    wait_slope: Optional[float] = None
    check_interval_ns: float = 2000.0

    def __post_init__(self):
        if self.depth_threshold < 1:
            raise ValueError("depth threshold must be >= 1")
        if self.wait_slope is not None and self.wait_slope <= 0:
            raise ValueError("wait slope must be positive")
        if self.check_interval_ns < 0:
            raise ValueError("check interval must be nonnegative")

    def to_dict(self) -> Dict[str, Any]:
        return {"depth_threshold": self.depth_threshold,
                "wait_slope": self.wait_slope,
                "check_interval_ns": self.check_interval_ns}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AdaptiveConfig":
        return cls(**data)


class AdaptiveRouter:
    """Congestion-aware source routing over a fabric's RouteTable.

    Exposes the same ``route_bytes(src, dst)`` surface as
    :class:`~repro.network.routing.RouteTable`, so a
    :class:`~repro.msg.api.CommWorld` can swap it in transparently.  On
    every route request (rate-limited by ``check_interval_ns``) it scans
    the crossbars' output arbiters, marks edges over threshold as
    *congested* through :meth:`RouteTable.set_congested_edges` — which
    invalidates the path memo exactly when the congested set changes —
    and lets the table's shortest-path search avoid them.  When avoidance
    disconnects a pair, the congestion marks are dropped and the message
    takes the congested shortest path instead of stalling.
    """

    def __init__(self, routes, fabric, config: AdaptiveConfig):
        self.routes = routes
        self.fabric = fabric
        self.config = config
        self.reroutes = 0    # congestion-set changes to a non-empty set
        self.fallbacks = 0   # pairs forced back onto a congested path
        self.scans = 0
        self._last_scan = -float("inf")
        self._last_wait: Dict[Tuple[str, int], Tuple[float, float]] = {}
        # (xbar name, out port) -> the directed wiring edge it drives.
        self._port_edges: Dict[Tuple[str, int],
                               Tuple[Hashable, Hashable]] = {}
        from repro.network.topology import xbar_key

        for name in fabric.crossbars:
            key = xbar_key(name)
            for _, there, attrs in fabric.graph.out_edges(key, data=True):
                port = attrs.get("out_port")
                if port is not None:
                    self._port_edges[(name, port)] = (key, there)

    def route_bytes(self, src: Hashable, dst: Hashable) -> List[int]:
        from repro.network.routing import NoRouteError

        now = self.fabric.sim.now
        if now - self._last_scan >= self.config.check_interval_ns:
            self._apply_scan(now)
        try:
            return self.routes.route_bytes(src, dst)
        except NoRouteError:
            if not self.routes.congested_edges:
                raise
            # Avoidance left this pair unreachable: better a congested
            # path than no path.
            self.fallbacks += 1
            if OBS.enabled:
                OBS.metrics.incr("qos.route_fallbacks")
            self.routes.set_congested_edges(set())
            return self.routes.route_bytes(src, dst)

    def _apply_scan(self, now: float) -> None:
        congested = self._scan(now)
        self._last_scan = now
        changed = self.routes.set_congested_edges(congested)
        if changed and congested:
            self.reroutes += 1
            if OBS.enabled:
                OBS.metrics.incr("qos.reroutes")

    def _scan(self, now: float) -> Set[Tuple[Hashable, Hashable]]:
        self.scans += 1
        congested: Set[Tuple[Hashable, Hashable]] = set()
        depth_threshold = self.config.depth_threshold
        slope_threshold = self.config.wait_slope
        for (name, port), edge in self._port_edges.items():
            arbiter = self.fabric.crossbars[name]._output_arbiters[port]
            hot = arbiter.queue_length >= depth_threshold
            if not hot and slope_threshold is not None:
                wait = (arbiter.wait_pressure(now)
                        if hasattr(arbiter, "wait_pressure")
                        else arbiter.total_wait_time)
                prev = self._last_wait.get((name, port))
                self._last_wait[(name, port)] = (wait, now)
                if prev is not None and now > prev[1]:
                    slope = (wait - prev[0]) / (now - prev[1])
                    hot = slope >= slope_threshold
            if hot:
                congested.add(edge)
        return congested
