"""PowerMANNA communication system.

The interconnect is a hierarchy of 16x16 crossbars joined by clock-
synchronous, byte-parallel links (60 Mbyte/s per direction) with a *stop*
signal for soft flow control.  Messages open a wormhole connection with one
``route`` byte per crossbar on the path and close it with a single
``close`` command.

* :mod:`repro.network.message` — flits, messages, route headers.
* :mod:`repro.network.link` — byte-accounted FIFOs and link pipes.
* :mod:`repro.network.crossbar` — the 16x16 crossbar ASIC model.
* :mod:`repro.network.transceiver` — asynchronous inter-cabinet links.
* :mod:`repro.network.routing` — route computation over a fabric graph.
* :mod:`repro.network.topology` — Figure-5 topology builders.
"""

from repro.network.crossbar import Crossbar, CrossbarConfig
from repro.network.link import ByteFifo, Link, LinkConfig
from repro.network.message import Flit, FlitKind, Message, build_wire_format
from repro.network.routing import NoRouteError, RouteTable
from repro.network.topology import Fabric, build_cluster, build_power_manna_256

__all__ = [
    "ByteFifo",
    "Crossbar",
    "CrossbarConfig",
    "Fabric",
    "Flit",
    "FlitKind",
    "Link",
    "LinkConfig",
    "Message",
    "NoRouteError",
    "RouteTable",
    "build_cluster",
    "build_power_manna_256",
    "build_wire_format",
]
