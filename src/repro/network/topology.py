"""Fabric assembly and the Figure-5 topologies.

A :class:`Fabric` owns crossbars, the links between them, and node
attachment points, and maintains the wiring graph used for source-route
computation.  Builders:

* :func:`build_cluster` — Figure 5a: eight nodes, two crossbars (one per
  network plane), eight free asynchronous dual-links per plane.
* :func:`build_power_manna_256` — Figure 5b: sixteen 8-node clusters
  (256 processors) joined by two permutation networks.  Each plane's
  permutation network is a spine of 16x16 crossbars with one link from
  every cluster to every spine crossbar, which yields the paper's property
  that "a logical connection between any two nodes involves at most only
  three crossbars".
* :func:`build_grid_system` — the row/column reading of Figure 5b, kept as
  an exploration topology (its worst-case path is longer; the network
  properties bench contrasts the two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.network.crossbar import Crossbar, CrossbarConfig
from repro.network.link import ByteFifo, Link, LinkConfig
from repro.network.transceiver import TransceiverConfig, make_async_link
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Tracer

NodeKey = Tuple[str, int, int]   # ("node", node_id, iface)
XbarKey = Tuple[str, str]        # ("xbar", name)


def node_key(node_id: int, iface: int) -> NodeKey:
    return ("node", node_id, iface)


def xbar_key(name: str) -> XbarKey:
    return ("xbar", name)


@dataclass
class NodeAttachment:
    """A node's connection to one network plane.

    Attributes:
        node_id / iface: which node link interface this is.
        tx_link: the node-to-crossbar link (the NI sends flits here).
        rx_fifo: the FIFO the crossbar's output link delivers into — the
            receive side of the node's link interface.
    """

    node_id: int
    iface: int
    tx_link: Link
    rx_fifo: ByteFifo


class Fabric:
    """Crossbars + links + node attachment points + wiring graph."""

    def __init__(self, sim: Simulator,
                 link_config: LinkConfig = LinkConfig(),
                 crossbar_config: CrossbarConfig = CrossbarConfig(),
                 node_rx_fifo_bytes: int = 256,
                 tracer: Tracer = NULL_TRACER):
        self.sim = sim
        self.link_config = link_config
        self.crossbar_config = crossbar_config
        self.node_rx_fifo_bytes = node_rx_fifo_bytes
        self.tracer = tracer
        self.crossbars: Dict[str, Crossbar] = {}
        self.attachments: Dict[Tuple[int, int], NodeAttachment] = {}
        self.graph = nx.DiGraph()
        self._port_claims: Dict[str, Dict[int, str]] = {}

    # -- construction -------------------------------------------------------

    def add_crossbar(self, name: str) -> Crossbar:
        if name in self.crossbars:
            raise ValueError(f"crossbar {name!r} already exists")
        xbar = Crossbar(self.sim, self.crossbar_config, name=name,
                        tracer=self.tracer)
        self.crossbars[name] = xbar
        self._port_claims[name] = {}
        self.graph.add_node(xbar_key(name))
        return xbar

    def _claims(self, xbar_name: str) -> Dict[int, str]:
        try:
            return self._port_claims[xbar_name]
        except KeyError:
            known = ", ".join(sorted(self.crossbars)) or "none"
            raise KeyError(
                f"no crossbar {xbar_name!r} in this fabric "
                f"(crossbars: {known})") from None

    def _claim_port(self, xbar_name: str, port: int,
                    purpose: str = "wired") -> None:
        claims = self._claims(xbar_name)
        holder = claims.get(port)
        if holder is not None:
            raise ValueError(
                f"crossbar {xbar_name!r} port {port} already wired "
                f"({holder}); free ports: {self.free_ports(xbar_name)}")
        self.crossbars[xbar_name]._check_port(port)
        claims[port] = purpose

    def free_ports(self, xbar_name: str) -> List[int]:
        used = self._claims(xbar_name)
        return [p for p in range(self.crossbar_config.ports) if p not in used]

    def port_claims(self, xbar_name: str) -> Dict[int, str]:
        """What occupies each wired port of one crossbar (port -> label)."""
        return dict(self._claims(xbar_name))

    def attach_node(self, node_id: int, iface: int, xbar_name: str,
                    port: int) -> NodeAttachment:
        """Wire one node link interface to a crossbar port (both ways)."""
        if (node_id, iface) in self.attachments:
            raise ValueError(f"node {node_id} iface {iface} already attached")
        self._claim_port(xbar_name, port, f"node {node_id} iface {iface}")
        xbar = self.crossbars[xbar_name]

        tx_link = Link(self.sim, self.link_config, xbar.input_fifo(port),
                       name=f"n{node_id}.{iface}->{xbar_name}.{port}")
        rx_fifo = ByteFifo(self.sim, self.node_rx_fifo_bytes,
                           name=f"{xbar_name}.{port}->n{node_id}.{iface}")
        down_link = Link(self.sim, self.link_config, rx_fifo,
                         name=f"{xbar_name}.{port}->n{node_id}.{iface}.link")
        xbar.attach_output(port, down_link)

        nkey, xkey = node_key(node_id, iface), xbar_key(xbar_name)
        self.graph.add_edge(nkey, xkey, in_port=port)
        self.graph.add_edge(xkey, nkey, out_port=port)
        attachment = NodeAttachment(node_id, iface, tx_link, rx_fifo)
        self.attachments[(node_id, iface)] = attachment
        return attachment

    def connect_crossbars(self, name_a: str, port_a: int, name_b: str,
                          port_b: int,
                          asynchronous: bool = False,
                          xcvr: Optional[TransceiverConfig] = None) -> None:
        """A bidirectional (dual) link between two crossbars.

        ``asynchronous=True`` inserts the inter-cabinet transceiver stage
        with its 2-KB FIFOs on both directions.
        """
        self._claim_port(name_a, port_a,
                         f"dual link to {name_b} port {port_b}")
        self._claim_port(name_b, port_b,
                         f"dual link to {name_a} port {port_a}")
        a, b = self.crossbars[name_a], self.crossbars[name_b]

        def make(src_name: str, src_port: int, dst: Crossbar,
                 dst_port: int) -> Link:
            label = f"{src_name}.{src_port}->{dst.name}.{dst_port}"
            if asynchronous:
                cfg = xcvr or TransceiverConfig()
                return make_async_link(self.sim, self.link_config, cfg,
                                       dst.input_fifo(dst_port), name=label)
            return Link(self.sim, self.link_config, dst.input_fifo(dst_port),
                        name=label)

        a.attach_output(port_a, make(name_a, port_a, b, port_b))
        b.attach_output(port_b, make(name_b, port_b, a, port_a))
        ka, kb = xbar_key(name_a), xbar_key(name_b)
        self.graph.add_edge(ka, kb, out_port=port_a)
        self.graph.add_edge(kb, ka, out_port=port_b)

    # -- queries -----------------------------------------------------------

    def node_ids(self) -> List[int]:
        return sorted({nid for nid, _ in self.attachments})

    def attachment(self, node_id: int, iface: int = 0) -> NodeAttachment:
        try:
            return self.attachments[(node_id, iface)]
        except KeyError:
            raise KeyError(
                f"node {node_id} iface {iface} is not attached") from None


# ---------------------------------------------------------------------------
# Topology builders — thin wrappers that express the Figure-5 machines as
# TopologySpecs and realise them through repro.network.topo.build_fabric.
# The specs replay the exact historical construction order, so every
# existing figure and chaos run is bit-identical to the bespoke builders.
# ---------------------------------------------------------------------------


def cluster_spec(n_nodes: int = 8, planes: int = 2):
    from repro.network.topo import TopologySpec

    return TopologySpec("cluster", {"n_nodes": n_nodes, "planes": planes})


def manna_spec(clusters: int = 16, nodes_per_cluster: int = 8):
    from repro.network.topo import TopologySpec

    return TopologySpec("manna", {"clusters": clusters,
                                  "nodes_per_cluster": nodes_per_cluster})


def grid_spec(rows: int = 4, cols: int = 4, nodes_per_cluster: int = 8):
    from repro.network.topo import TopologySpec

    return TopologySpec("grid", {"rows": rows, "cols": cols,
                                 "nodes_per_cluster": nodes_per_cluster})


def build_cluster(sim: Simulator, n_nodes: int = 8,
                  link_config: LinkConfig = LinkConfig(),
                  crossbar_config: CrossbarConfig = CrossbarConfig(),
                  planes: int = 2,
                  tracer: Tracer = NULL_TRACER) -> Fabric:
    """Figure 5a: ``n_nodes`` nodes on ``planes`` duplicated crossbars.

    Node *i*'s interface *p* attaches to port *i* of plane-*p*'s crossbar,
    leaving ``ports - n_nodes`` free ports per plane for inter-cluster
    (asynchronous) dual links.
    """
    from repro.network.topo import build_fabric

    return build_fabric(sim, cluster_spec(n_nodes, planes),
                        link_config=link_config,
                        crossbar_config=crossbar_config, tracer=tracer)


def build_power_manna_256(sim: Simulator,
                          clusters: int = 16,
                          nodes_per_cluster: int = 8,
                          link_config: LinkConfig = LinkConfig(),
                          crossbar_config: CrossbarConfig = CrossbarConfig(),
                          tracer: Tracer = NULL_TRACER) -> Fabric:
    """Figure 5b: a 256-processor (128 dual-CPU node) PowerMANNA.

    Per network plane, every cluster crossbar spends its free ports on
    asynchronous links into a spine of 16x16 crossbars; each spine crossbar
    has exactly one link to every cluster.  Any-to-any traffic therefore
    crosses at most three crossbars: source cluster, one spine, destination
    cluster.
    """
    from repro.network.topo import build_fabric

    return build_fabric(sim, manna_spec(clusters, nodes_per_cluster),
                        link_config=link_config,
                        crossbar_config=crossbar_config, tracer=tracer)


def build_grid_system(sim: Simulator,
                      rows: int = 4, cols: int = 4,
                      nodes_per_cluster: int = 8,
                      link_config: LinkConfig = LinkConfig(),
                      crossbar_config: CrossbarConfig = CrossbarConfig(),
                      tracer: Tracer = NULL_TRACER) -> Fabric:
    """The row/column reading of Figure 5b, for comparison.

    Plane 0 connects the clusters of each row through row crossbars; plane
    1 connects the clusters of each column.  Nodes sharing a row or column
    reach each other in three crossbars; others must relay (the bench
    quantifies this against :func:`build_power_manna_256`).
    """
    from repro.network.topo import build_fabric

    return build_fabric(sim, grid_spec(rows, cols, nodes_per_cluster),
                        link_config=link_config,
                        crossbar_config=crossbar_config, tracer=tracer)
