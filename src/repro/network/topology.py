"""Fabric assembly and the Figure-5 topologies.

A :class:`Fabric` owns crossbars, the links between them, and node
attachment points, and maintains the wiring graph used for source-route
computation.  Builders:

* :func:`build_cluster` — Figure 5a: eight nodes, two crossbars (one per
  network plane), eight free asynchronous dual-links per plane.
* :func:`build_power_manna_256` — Figure 5b: sixteen 8-node clusters
  (256 processors) joined by two permutation networks.  Each plane's
  permutation network is a spine of 16x16 crossbars with one link from
  every cluster to every spine crossbar, which yields the paper's property
  that "a logical connection between any two nodes involves at most only
  three crossbars".
* :func:`build_grid_system` — the row/column reading of Figure 5b, kept as
  an exploration topology (its worst-case path is longer; the network
  properties bench contrasts the two).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.network.crossbar import Crossbar, CrossbarConfig
from repro.network.link import ByteFifo, Link, LinkConfig
from repro.network.transceiver import TransceiverConfig, make_async_link
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Tracer

NodeKey = Tuple[str, int, int]   # ("node", node_id, iface)
XbarKey = Tuple[str, str]        # ("xbar", name)


def node_key(node_id: int, iface: int) -> NodeKey:
    return ("node", node_id, iface)


def xbar_key(name: str) -> XbarKey:
    return ("xbar", name)


@dataclass
class NodeAttachment:
    """A node's connection to one network plane.

    Attributes:
        node_id / iface: which node link interface this is.
        tx_link: the node-to-crossbar link (the NI sends flits here).
        rx_fifo: the FIFO the crossbar's output link delivers into — the
            receive side of the node's link interface.
    """

    node_id: int
    iface: int
    tx_link: Link
    rx_fifo: ByteFifo


class Fabric:
    """Crossbars + links + node attachment points + wiring graph."""

    def __init__(self, sim: Simulator,
                 link_config: LinkConfig = LinkConfig(),
                 crossbar_config: CrossbarConfig = CrossbarConfig(),
                 node_rx_fifo_bytes: int = 256,
                 tracer: Tracer = NULL_TRACER):
        self.sim = sim
        self.link_config = link_config
        self.crossbar_config = crossbar_config
        self.node_rx_fifo_bytes = node_rx_fifo_bytes
        self.tracer = tracer
        self.crossbars: Dict[str, Crossbar] = {}
        self.attachments: Dict[Tuple[int, int], NodeAttachment] = {}
        self.graph = nx.DiGraph()
        self._used_ports: Dict[str, set] = {}

    # -- construction -------------------------------------------------------

    def add_crossbar(self, name: str) -> Crossbar:
        if name in self.crossbars:
            raise ValueError(f"crossbar {name!r} already exists")
        xbar = Crossbar(self.sim, self.crossbar_config, name=name,
                        tracer=self.tracer)
        self.crossbars[name] = xbar
        self._used_ports[name] = set()
        self.graph.add_node(xbar_key(name))
        return xbar

    def _claim_port(self, xbar_name: str, port: int) -> None:
        used = self._used_ports[xbar_name]
        if port in used:
            raise ValueError(f"{xbar_name} port {port} already wired")
        self.crossbars[xbar_name]._check_port(port)
        used.add(port)

    def free_ports(self, xbar_name: str) -> List[int]:
        used = self._used_ports[xbar_name]
        return [p for p in range(self.crossbar_config.ports) if p not in used]

    def attach_node(self, node_id: int, iface: int, xbar_name: str,
                    port: int) -> NodeAttachment:
        """Wire one node link interface to a crossbar port (both ways)."""
        if (node_id, iface) in self.attachments:
            raise ValueError(f"node {node_id} iface {iface} already attached")
        self._claim_port(xbar_name, port)
        xbar = self.crossbars[xbar_name]

        tx_link = Link(self.sim, self.link_config, xbar.input_fifo(port),
                       name=f"n{node_id}.{iface}->{xbar_name}.{port}")
        rx_fifo = ByteFifo(self.sim, self.node_rx_fifo_bytes,
                           name=f"{xbar_name}.{port}->n{node_id}.{iface}")
        down_link = Link(self.sim, self.link_config, rx_fifo,
                         name=f"{xbar_name}.{port}->n{node_id}.{iface}.link")
        xbar.attach_output(port, down_link)

        nkey, xkey = node_key(node_id, iface), xbar_key(xbar_name)
        self.graph.add_edge(nkey, xkey, in_port=port)
        self.graph.add_edge(xkey, nkey, out_port=port)
        attachment = NodeAttachment(node_id, iface, tx_link, rx_fifo)
        self.attachments[(node_id, iface)] = attachment
        return attachment

    def connect_crossbars(self, name_a: str, port_a: int, name_b: str,
                          port_b: int,
                          asynchronous: bool = False,
                          xcvr: Optional[TransceiverConfig] = None) -> None:
        """A bidirectional (dual) link between two crossbars.

        ``asynchronous=True`` inserts the inter-cabinet transceiver stage
        with its 2-KB FIFOs on both directions.
        """
        self._claim_port(name_a, port_a)
        self._claim_port(name_b, port_b)
        a, b = self.crossbars[name_a], self.crossbars[name_b]

        def make(src_name: str, src_port: int, dst: Crossbar,
                 dst_port: int) -> Link:
            label = f"{src_name}.{src_port}->{dst.name}.{dst_port}"
            if asynchronous:
                cfg = xcvr or TransceiverConfig()
                return make_async_link(self.sim, self.link_config, cfg,
                                       dst.input_fifo(dst_port), name=label)
            return Link(self.sim, self.link_config, dst.input_fifo(dst_port),
                        name=label)

        a.attach_output(port_a, make(name_a, port_a, b, port_b))
        b.attach_output(port_b, make(name_b, port_b, a, port_a))
        ka, kb = xbar_key(name_a), xbar_key(name_b)
        self.graph.add_edge(ka, kb, out_port=port_a)
        self.graph.add_edge(kb, ka, out_port=port_b)

    # -- queries -----------------------------------------------------------

    def node_ids(self) -> List[int]:
        return sorted({nid for nid, _ in self.attachments})

    def attachment(self, node_id: int, iface: int = 0) -> NodeAttachment:
        try:
            return self.attachments[(node_id, iface)]
        except KeyError:
            raise KeyError(
                f"node {node_id} iface {iface} is not attached") from None


# ---------------------------------------------------------------------------
# Topology builders
# ---------------------------------------------------------------------------


def build_cluster(sim: Simulator, n_nodes: int = 8,
                  link_config: LinkConfig = LinkConfig(),
                  crossbar_config: CrossbarConfig = CrossbarConfig(),
                  planes: int = 2,
                  tracer: Tracer = NULL_TRACER) -> Fabric:
    """Figure 5a: ``n_nodes`` nodes on ``planes`` duplicated crossbars.

    Node *i*'s interface *p* attaches to port *i* of plane-*p*'s crossbar,
    leaving ``ports - n_nodes`` free ports per plane for inter-cluster
    (asynchronous) dual links.
    """
    if n_nodes > crossbar_config.ports:
        raise ValueError(
            f"{n_nodes} nodes do not fit a {crossbar_config.ports}-port crossbar")
    if planes < 1:
        raise ValueError("need at least one network plane")
    fabric = Fabric(sim, link_config, crossbar_config, tracer=tracer)
    for plane in range(planes):
        fabric.add_crossbar(f"plane{plane}")
        for node in range(n_nodes):
            fabric.attach_node(node, plane, f"plane{plane}", node)
    return fabric


def build_power_manna_256(sim: Simulator,
                          clusters: int = 16,
                          nodes_per_cluster: int = 8,
                          link_config: LinkConfig = LinkConfig(),
                          crossbar_config: CrossbarConfig = CrossbarConfig(),
                          tracer: Tracer = NULL_TRACER) -> Fabric:
    """Figure 5b: a 256-processor (128 dual-CPU node) PowerMANNA.

    Per network plane, every cluster crossbar spends its free ports on
    asynchronous links into a spine of 16x16 crossbars; each spine crossbar
    has exactly one link to every cluster.  Any-to-any traffic therefore
    crosses at most three crossbars: source cluster, one spine, destination
    cluster.
    """
    ports = crossbar_config.ports
    spine_count = ports - nodes_per_cluster  # free ports per cluster xbar
    if clusters > ports:
        raise ValueError(
            f"{clusters} clusters need {clusters} spine ports; the crossbar "
            f"has {ports}")
    fabric = Fabric(sim, link_config, crossbar_config, tracer=tracer)
    for plane in range(2):
        spine_names = [f"spine{plane}.{s}" for s in range(spine_count)]
        for name in spine_names:
            fabric.add_crossbar(name)
        for cluster in range(clusters):
            cname = f"c{cluster}.plane{plane}"
            fabric.add_crossbar(cname)
            for local in range(nodes_per_cluster):
                node_id = cluster * nodes_per_cluster + local
                fabric.attach_node(node_id, plane, cname, local)
            for s, sname in enumerate(spine_names):
                fabric.connect_crossbars(
                    cname, nodes_per_cluster + s, sname, cluster,
                    asynchronous=True)
    return fabric


def build_grid_system(sim: Simulator,
                      rows: int = 4, cols: int = 4,
                      nodes_per_cluster: int = 8,
                      link_config: LinkConfig = LinkConfig(),
                      crossbar_config: CrossbarConfig = CrossbarConfig(),
                      tracer: Tracer = NULL_TRACER) -> Fabric:
    """The row/column reading of Figure 5b, for comparison.

    Plane 0 connects the clusters of each row through row crossbars; plane
    1 connects the clusters of each column.  Nodes sharing a row or column
    reach each other in three crossbars; others must relay (the bench
    quantifies this against :func:`build_power_manna_256`).
    """
    fabric = Fabric(sim, link_config, crossbar_config, tracer=tracer)
    ports = crossbar_config.ports
    free = ports - nodes_per_cluster
    links_per_cluster = min(free, max(1, ports // max(rows, cols)))

    def cluster_index(r: int, c: int) -> int:
        return r * cols + c

    # Cluster crossbars and node attachments, both planes.
    for r in range(rows):
        for c in range(cols):
            cluster = cluster_index(r, c)
            for plane in range(2):
                cname = f"c{cluster}.plane{plane}"
                fabric.add_crossbar(cname)
                for local in range(nodes_per_cluster):
                    node_id = cluster * nodes_per_cluster + local
                    fabric.attach_node(node_id, plane, cname, local)

    # Row networks on plane 0, column networks on plane 1.
    for r in range(rows):
        rname = f"row{r}"
        fabric.add_crossbar(rname)
        row_port = itertools.count()
        for c in range(cols):
            cname = f"c{cluster_index(r, c)}.plane0"
            for k in range(links_per_cluster):
                fabric.connect_crossbars(cname, nodes_per_cluster + k,
                                         rname, next(row_port),
                                         asynchronous=True)
    for c in range(cols):
        colname = f"col{c}"
        fabric.add_crossbar(colname)
        col_port = itertools.count()
        for r in range(rows):
            cname = f"c{cluster_index(r, c)}.plane1"
            for k in range(links_per_cluster):
                fabric.connect_crossbars(cname, nodes_per_cluster + k,
                                         colname, next(col_port),
                                         asynchronous=True)
    return fabric
