"""The 16x16 PowerMANNA crossbar ASIC.

One chip integrates, per input channel, a FIFO buffer and the command/
address decoding logic, and per output channel an arbiter.  The routing
protocol is wormhole: the first byte after idle is a *route* command naming
the output channel; it is consumed by this crossbar.  All further flits are
forwarded on the established connection until a *close* command tears it
down (the close itself is forwarded so downstream crossbars also close).

Unlike the CM-5's 8x8 fat-tree switch, every input can route to every
output — the property the paper credits for the topology flexibility of
Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.faults import FAULTS
from repro.network.link import ByteFifo, Link
from repro.network.message import Flit, FlitKind
from repro.network.qos import ClassedArbiter, QosConfig
from repro.obs import OBS
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import Counter
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class CrossbarConfig:
    """Crossbar geometry and timing.

    Attributes:
        ports: square radix (16 on PowerMANNA, 8 on the CM-5 switch).
        input_fifo_bytes: per-input buffering inside the ASIC.
        route_setup_ns: collision-free through-routing time — "if there are
            no collisions, this through-routing takes only 0.2 microseconds".
        forward_ns: per-flit pass-through latency once the wormhole is open.
        teardown_ns: watchdog on an open wormhole — when no flit arrives
            for this long the connection is torn down and the input
            resynchronises on the next route command.  Only armed under
            fault injection; without it, killing an upstream port mid-
            wormhole would leave the downstream connection (and its output
            arbiter) held forever, wedging all traffic behind it.
        qos: per-class arbitration at the output ports.  ``None`` (the
            default) keeps the hardware's plain FIFO arbiters and is
            byte-identical to the pre-QoS simulator.
    """

    ports: int = 16
    input_fifo_bytes: int = 64
    route_setup_ns: float = 200.0
    forward_ns: float = 16.7  # one 60 MHz cycle through the switch core
    teardown_ns: float = 500_000.0
    qos: Optional[QosConfig] = None

    def __post_init__(self):
        if self.ports < 2:
            raise ValueError(f"crossbar needs >= 2 ports, got {self.ports}")
        if self.input_fifo_bytes < 8:
            raise ValueError("input FIFO must hold at least one word")
        if self.route_setup_ns < 0 or self.forward_ns < 0:
            raise ValueError("timing parameters must be nonnegative")
        if self.teardown_ns <= 0:
            raise ValueError("the wormhole watchdog must be positive")


class RoutingError(RuntimeError):
    """Protocol violation observed by the crossbar (bad route byte, data
    with no open connection)."""


class Crossbar:
    """A single crossbar chip: input FIFOs, per-output arbiters, wormholes."""

    def __init__(self, sim: Simulator, config: CrossbarConfig = CrossbarConfig(),
                 name: str = "xbar", tracer: Tracer = NULL_TRACER):
        self.sim = sim
        self.config = config
        self.name = name
        self.tracer = tracer
        self.inputs: List[ByteFifo] = [
            ByteFifo(sim, config.input_fifo_bytes, name=f"{name}.in{i}")
            for i in range(config.ports)
        ]
        self.output_links: List[Optional[Link]] = [None] * config.ports
        # With a QosConfig the bare FIFO Resource at each output is
        # replaced by the pluggable classed arbiter; without one the
        # legacy arbiters (and their exact event sequence) are kept.
        self._classed = config.qos is not None
        if self._classed:
            self._output_arbiters = [
                ClassedArbiter(sim, config.qos, name=f"{name}.out{i}")
                for i in range(config.ports)
            ]
        else:
            self._output_arbiters = [
                Resource(sim, capacity=1, name=f"{name}.out{i}")
                for i in range(config.ports)
            ]
        self._failed_outputs: Set[int] = set()
        self.stats = Counter(name)
        for i in range(config.ports):
            sim.process(self._input_channel(i))
        if OBS.enabled and OBS.timeline.enabled:
            probe = OBS.timeline.probe
            for i in range(config.ports):
                probe(sim, "xbar.in_fifo_bytes",
                      lambda f=self.inputs[i]: float(f.level_bytes),
                      xbar=name, port=str(i))
                probe(sim, "xbar.out_queue",
                      lambda a=self._output_arbiters[i]: float(a.queue_length),
                      xbar=name, port=str(i))
            if self._classed:
                for i in range(config.ports):
                    for ci, tc in enumerate(config.qos.classes):
                        probe(sim, "xbar.class_queue",
                              lambda a=self._output_arbiters[i], c=ci:
                              float(a.class_queue_length(c)),
                              xbar=name, port=str(i), cls=tc.name)

    # -- wiring -----------------------------------------------------------

    def attach_output(self, port: int, link: Link) -> None:
        """Connect output channel ``port`` to an outgoing link."""
        self._check_port(port)
        if self.output_links[port] is not None:
            raise ValueError(f"{self.name} output {port} already wired")
        self.output_links[port] = link

    def fail_output(self, port: int) -> None:
        """Hard-fail an output channel (fault injection).

        Connections routed to a failed output are *black-holed*: the
        crossbar keeps consuming the wormhole's flits (so upstream traffic
        is not wedged behind them) but forwards nothing.  Recovery is the
        software's job — end-to-end retransmission plus rerouting once the
        route table learns of the failure.
        """
        self._check_port(port)
        self._failed_outputs.add(port)
        self.stats.incr("failed_outputs")
        if OBS.enabled:
            OBS.metrics.incr("faults.xbar_ports_down", xbar=self.name)

    def output_failed(self, port: int) -> bool:
        self._check_port(port)
        return port in self._failed_outputs

    def input_fifo(self, port: int) -> ByteFifo:
        """The FIFO an incoming link should deliver into."""
        self._check_port(port)
        return self.inputs[port]

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.config.ports:
            raise ValueError(
                f"{self.name} has ports 0..{self.config.ports - 1}, got {port}")

    # -- the per-input wormhole engine ----------------------------------------

    def _input_channel(self, port: int):
        fifo = self.inputs[port]
        sim = self.sim
        fifo_get = fifo.get_pooled
        pooled_timeout = sim.pooled_timeout
        stats_incr = self.stats.incr
        route_setup_ns = self.config.route_setup_ns
        forward_ns = self.config.forward_ns
        close_kind = FlitKind.CLOSE
        failed = self._failed_outputs
        classed = self._classed
        resync = False
        while True:
            flit = yield fifo_get()
            if flit.kind != FlitKind.ROUTE:
                if resync:
                    # Straggler flits of a torn-down wormhole: discard
                    # until the next connection start.
                    self.stats.incr("resync_discarded")
                    continue
                raise RoutingError(
                    f"{self.name} input {port}: expected a route command at "
                    f"connection start, got {flit.kind} "
                    f"(message {flit.message_id})")
            resync = False
            out_port = flit.route_port
            self._check_route(port, out_port, flit)
            if out_port in failed:
                # Dead output: swallow the whole wormhole so traffic queued
                # behind it on this input still progresses.
                resync = yield from self._blackhole(port, out_port,
                                                    flit.message_id)
                continue
            arbiter = self._output_arbiters[out_port]
            sclass = flit.sclass
            arb_span = 0
            if OBS.enabled:
                arb_span = OBS.tracer.begin(
                    "xbar.arbitrate", self.name, self.sim.now,
                    category="network", message=flit.message_id,
                    in_port=port, out_port=out_port)
            if classed:
                waited = yield arbiter.acquire(sclass)
            else:
                waited = yield arbiter.acquire()
            if waited > 0:
                stats_incr("collisions")
                if OBS.enabled:
                    if classed:
                        OBS.metrics.incr(
                            "xbar.collisions", xbar=self.name,
                            cls=self.config.qos.classes[sclass].name)
                    else:
                        OBS.metrics.incr("xbar.collisions", xbar=self.name)
            # Collision-free through-routing costs route_setup_ns; the route
            # byte is consumed here and never forwarded.
            yield pooled_timeout(route_setup_ns)
            stats_incr("connections")
            self.tracer.record(sim.now, self.name, "route",
                               (port, out_port, flit.message_id))
            fwd_span = 0
            if OBS.enabled:
                OBS.tracer.end(arb_span, self.sim.now,
                               collided=waited > 0)
                OBS.metrics.incr("xbar.connections", xbar=self.name)
                fwd_span = OBS.tracer.begin(
                    "xbar.forward", self.name, self.sim.now,
                    category="network", message=flit.message_id,
                    in_port=port, out_port=out_port)
            link = self.output_links[out_port]
            link_send = link.tx.put_pooled
            message_id = flit.message_id
            conn_bytes = 0
            try:
                while True:
                    if FAULTS.enabled:
                        flit = yield from self._guarded_get(fifo)
                    else:
                        # The watchdog is only armed under fault injection;
                        # without it this is a plain get, inlined to skip
                        # the per-flit generator allocation.
                        flit = yield fifo_get()
                    if flit is None:
                        # Watchdog: the upstream of this wormhole died (a
                        # failed port blackholed its tail); tear down the
                        # connection instead of holding the output forever.
                        self._note_teardown(port, out_port, message_id)
                        resync = True
                        break
                    if out_port in failed:
                        # Port died mid-wormhole: drain the rest unsent.
                        resync = yield from self._blackhole(port, out_port,
                                                            flit.message_id,
                                                            first=flit)
                        break
                    yield pooled_timeout(forward_ns)
                    yield link_send(flit)
                    stats_incr("forwarded_bytes", flit.nbytes)
                    conn_bytes += flit.nbytes
                    if flit.kind == close_kind:
                        break
            finally:
                if classed:
                    arbiter.release(sclass, conn_bytes)
                else:
                    arbiter.release()
                self.tracer.record(sim.now, self.name, "close",
                                   (port, out_port, message_id))
                if OBS.enabled:
                    OBS.tracer.end(fwd_span, self.sim.now)

    def _guarded_get(self, fifo: ByteFifo):
        """Next flit of an open wormhole, or None if the watchdog fires.

        The watchdog is only armed under fault injection, and only when
        the input is actually idle — a buffered flit resumes immediately
        with no timer event.
        """
        get_event = fifo.get()
        if not FAULTS.enabled or get_event.triggered:
            flit = yield get_event
            return flit
        timer = self.sim.timeout(self.config.teardown_ns)
        fired = yield self.sim.any_of([get_event, timer])
        if get_event in fired:
            return fired[get_event]
        if get_event.triggered:
            # The flit raced the watchdog at the same instant; take it.
            return get_event.value
        fifo.cancel_get(get_event)
        return None

    def _note_teardown(self, in_port: int, out_port: int,
                       message_id: int) -> None:
        self.stats.incr("torn_down")
        self.tracer.record(self.sim.now, self.name, "teardown",
                           (in_port, out_port, message_id))
        if OBS.enabled:
            OBS.metrics.incr("faults.wormhole_teardowns", xbar=self.name)

    def _blackhole(self, in_port: int, out_port: int, message_id: int,
                   first: Optional[Flit] = None):
        """Consume a wormhole's flits up to CLOSE without forwarding.

        Returns True when the watchdog ended the drain (the upstream died
        before sending CLOSE), in which case the caller must resync.
        """
        self.stats.incr("blackholed")
        self.tracer.record(self.sim.now, self.name, "blackhole",
                           (in_port, out_port, message_id))
        if OBS.enabled:
            OBS.metrics.incr("faults.blackholed", xbar=self.name)
        flit = first
        while flit is None or flit.kind != FlitKind.CLOSE:
            flit = yield from self._guarded_get(self.inputs[in_port])
            if flit is None:
                self._note_teardown(in_port, out_port, message_id)
                return True
        return False

    def _check_route(self, in_port: int, out_port: Optional[int],
                     flit: Flit) -> None:
        if out_port is None or not 0 <= out_port < self.config.ports:
            raise RoutingError(
                f"{self.name} input {in_port}: route byte {out_port!r} does "
                f"not name an output channel (message {flit.message_id})")
        if self.output_links[out_port] is None:
            raise RoutingError(
                f"{self.name} input {in_port}: route to unwired output "
                f"{out_port} (message {flit.message_id})")

    # -- statistics ------------------------------------------------------------

    def collision_rate(self) -> float:
        conns = self.stats["connections"]
        return self.stats["collisions"] / conns if conns else 0.0

    def output_utilization(self, port: int) -> float:
        self._check_port(port)
        return self._output_arbiters[port].utilization()
