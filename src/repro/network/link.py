"""The PowerMANNA link: byte-parallel pipe with stop-signal flow control.

Physically each link direction is a 9-bit channel (8 data + 1 control) at
60 MHz — 60 Mbyte/s — plus a *stop* wire back from the receiver.  The model
is a process that serialises flits at the link rate and delivers them into
the receiver's FIFO; when that FIFO is full the process blocks, which is
exactly the stop signal asserting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.faults import FAULTS
from repro.network.message import Flit, FlitKind
from repro.obs import OBS
from repro.sim.clock import Clock
from repro.sim.engine import Event, SimulationError, Simulator, _heappush
from repro.sim.resources import FifoStore
from repro.sim.stats import Counter
from repro.sim.trace import NULL_TRACER, Tracer


class ByteFifo:
    """A FIFO whose capacity is accounted in *bytes* of flit payload.

    Hardware FIFOs (crossbar input buffers, NI send/receive FIFOs,
    transceiver buffers) are sized in bytes while the simulator moves
    multi-byte flits; this store blocks a put until the whole flit fits.
    """

    def __init__(self, sim: Simulator, capacity_bytes: int, name: str = "bytefifo"):
        if capacity_bytes <= 0:
            raise SimulationError(f"FIFO capacity must be positive, got {capacity_bytes}")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._put_name = name + ".put"
        self._get_name = name + ".get"
        self.items: Deque[Flit] = deque()
        self.level_bytes = 0
        self._putters: Deque[tuple[Event, Flit]] = deque()
        self._getters: Deque[Event] = deque()
        self.total_bytes_in = 0
        self.total_bytes_out = 0
        self.high_water_bytes = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.level_bytes

    @property
    def is_empty(self) -> bool:
        return not self.items

    def put(self, flit: Flit) -> Event:
        return self._put(Event(self.sim, self._put_name), flit)

    def put_pooled(self, flit: Flit) -> Event:
        """Like :meth:`put` with a recycled event — only for call sites
        that ``yield`` the event immediately (see
        :meth:`~repro.sim.engine.Simulator.pooled_event`)."""
        return self._put(self.sim.pooled_event(self._put_name), flit)

    def _put(self, event: Event, flit: Flit) -> Event:
        nbytes = flit.nbytes
        if nbytes > self.capacity_bytes:
            raise SimulationError(
                f"flit of {nbytes} B can never fit FIFO {self.name!r} "
                f"of {self.capacity_bytes} B")
        if not self._putters and nbytes <= self.capacity_bytes - self.level_bytes:
            # Accepted immediately — same trigger order as _settle (put
            # event first, then the getter it satisfies, if any).
            self.items.append(flit)
            level = self.level_bytes + nbytes
            self.level_bytes = level
            self.total_bytes_in += nbytes
            if level > self.high_water_bytes:
                self.high_water_bytes = level
            # Inline event.trigger(flit): the event is fresh, so the
            # double-trigger check cannot fire.
            event._triggered = True
            event._value = flit
            sim = self.sim
            _heappush(sim._queue, (sim._now, next(sim._tiebreak), event))
            getters = self._getters
            if getters:
                gev = getters.popleft()
                item = self.items.popleft()
                self.level_bytes -= item.nbytes
                self.total_bytes_out += item.nbytes
                gev.trigger(item)
                if getters and self.items:
                    self._settle()
            return event
        # Queued behind other putters, or too big right now.  No match is
        # possible (the head putter still does not fit, and a waiting
        # getter implies the FIFO is empty), so skip the settle loop.
        self._putters.append((event, flit))
        return event

    def get(self) -> Event:
        return self._get(Event(self.sim, self._get_name))

    def get_pooled(self) -> Event:
        """Like :meth:`get` with a recycled event — only for call sites
        that ``yield`` the event immediately."""
        return self._get(self.sim.pooled_event(self._get_name))

    def _get(self, event: Event) -> Event:
        items = self.items
        if items and not self._getters:
            flit = items.popleft()
            self.level_bytes -= flit.nbytes
            self.total_bytes_out += flit.nbytes
            event._triggered = True
            event._value = flit
            sim = self.sim
            _heappush(sim._queue, (sim._now, next(sim._tiebreak), event))
            if self._putters:
                self._settle()
            return event
        self._getters.append(event)
        if items:
            self._settle()
        return event

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending getter (used by watchdog teardowns), so an
        abandoned get event cannot silently swallow a later flit."""
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def try_put(self, flit: Flit) -> bool:
        """Non-blocking put; returns False when the flit does not fit."""
        if flit.nbytes > self.free_bytes:
            return False
        self.items.append(flit)
        self.level_bytes += flit.nbytes
        self.total_bytes_in += flit.nbytes
        self.high_water_bytes = max(self.high_water_bytes, self.level_bytes)
        self._settle()
        return True

    def try_get(self) -> tuple[bool, Optional[Flit]]:
        """Non-blocking get; returns (ok, flit)."""
        if not self.items:
            return False, None
        flit = self.items.popleft()
        self.level_bytes -= flit.nbytes
        self.total_bytes_out += flit.nbytes
        self._settle()
        return True, flit

    def _settle(self) -> None:
        items = self.items
        putters = self._putters
        getters = self._getters
        progressed = True
        while progressed:
            progressed = False
            if putters:
                event, flit = putters[0]
                nbytes = flit.nbytes
                if nbytes <= self.capacity_bytes - self.level_bytes:
                    putters.popleft()
                    items.append(flit)
                    level = self.level_bytes + nbytes
                    self.level_bytes = level
                    self.total_bytes_in += nbytes
                    if level > self.high_water_bytes:
                        self.high_water_bytes = level
                    event.trigger(flit)
                    progressed = True
            if getters and items:
                event = getters.popleft()
                flit = items.popleft()
                self.level_bytes -= flit.nbytes
                self.total_bytes_out += flit.nbytes
                event.trigger(flit)
                progressed = True


@dataclass(frozen=True)
class LinkConfig:
    """Link timing.

    Attributes:
        clock: the link clock (60 MHz on PowerMANNA — one byte per cycle).
        propagation_ns: wire flight time (near zero inside a cabinet).
    """

    clock: Clock = Clock(60.0)
    propagation_ns: float = 5.0

    @property
    def byte_ns(self) -> float:
        return self.clock.period_ns

    @property
    def bandwidth_mb_s(self) -> float:
        """Unidirectional bandwidth in Mbyte/s (1 byte per cycle)."""
        return self.clock.mhz

    def serialize_ns(self, nbytes: int) -> float:
        return nbytes * self.byte_ns


class Link:
    """One direction of a point-to-point link.

    ``tx`` is the sender-side staging FIFO; a pump process serialises each
    flit (``nbytes`` link cycles), then delivers it into the receiver FIFO
    ``rx`` — blocking while ``rx`` is full, i.e. honouring the stop signal.
    """

    def __init__(self, sim: Simulator, config: LinkConfig, rx: ByteFifo,
                 name: str = "link", tx_capacity_bytes: int = 16,
                 tracer: Tracer = NULL_TRACER):
        self.sim = sim
        self.config = config
        self.name = name
        self.rx = rx
        self.tx = ByteFifo(sim, tx_capacity_bytes, name=f"{name}.tx")
        self.tracer = tracer
        self.stats = Counter(name)
        self.busy_ns = 0.0
        # Flits in flight on the cable: (flit, arrival_time).  Propagation
        # pipelines — a long cable adds latency, never costs bandwidth —
        # but the cable only holds as many bytes as fit its flight time,
        # so a stalled receiver still backpressures the sender (the stop
        # signal) after at most that much slack.
        wire_slots = max(1, int(config.propagation_ns / config.byte_ns) + 1)
        self._in_flight = FifoStore(sim, capacity=wire_slots,
                                    name=f"{name}.wire")
        # message_id -> open "link.transmit" span (wormhole routing keeps
        # one message on the wire at a time, but the span starts in the
        # serializer process and ends in the deliverer process).
        self._spans: dict[int, int] = {}
        self._serializer = sim.process(self._serialize())
        self._deliverer = sim.process(self._deliver())
        if OBS.enabled and OBS.timeline.enabled:
            probe = OBS.timeline.probe
            probe(sim, "link.tx_bytes",
                  lambda: float(self.tx.level_bytes), link=name)
            probe(sim, "link.flits_in_flight",
                  lambda: float(self._in_flight.level), link=name)
            # Occupancy per interval: busy_ns is cumulative, so each
            # sample reports the busy fraction since the previous one.
            interval = OBS.timeline.sample_interval_ns
            last_busy = [0.0]

            def _util() -> float:
                busy = self.busy_ns
                delta = busy - last_busy[0]
                last_busy[0] = busy
                return min(1.0, delta / interval)

            probe(sim, "link.util", _util, link=name)

    def send(self, flit: Flit) -> Event:
        """Stage a flit for transmission; fires when accepted into tx."""
        return self.tx.put(flit)

    def _serialize(self):
        sim = self.sim
        tx_get = self.tx.get_pooled
        pooled_timeout = sim.pooled_timeout
        serialize_ns = self.config.serialize_ns
        propagation_ns = self.config.propagation_ns
        wire_put = self._in_flight.put_pooled
        while True:
            flit = yield tx_get()
            if OBS.enabled and flit.message_id not in self._spans:
                self._spans[flit.message_id] = OBS.tracer.begin(
                    "link.transmit", self.name, sim.now,
                    category="network", message=flit.message_id)
            start = sim.now
            yield pooled_timeout(serialize_ns(flit.nbytes))
            self.busy_ns += sim.now - start
            arrival = sim.now + propagation_ns
            yield wire_put((flit, arrival))

    def _deliver(self):
        sim = self.sim
        wire_get = self._in_flight.get_pooled
        pooled_timeout = sim.pooled_timeout
        rx_put = self.rx.put_pooled
        stats_incr = self.stats.incr
        tracer_record = self.tracer.record
        data_kind = FlitKind.DATA
        close_kind = FlitKind.CLOSE
        while True:
            flit, arrival = yield wire_get()
            wait = arrival - sim.now
            if wait > 0:
                yield pooled_timeout(wait)
            if FAULTS.enabled:
                # A dropped DATA flit shortens the payload; the receiving
                # driver flags the message as corrupt (the CRC covers the
                # whole message, so a hole fails the check like a flip).
                if flit.kind == data_kind and FAULTS.engine.fires(
                        "flit_drop", self.name, sim.now):
                    stats_incr("dropped_flits")
                    if OBS.enabled:
                        OBS.metrics.incr("faults.dropped_flits",
                                         link=self.name)
                    continue
                # Bit-error bursts: one corruption draw per message per
                # link, taken as the message's tail crosses.
                if flit.kind == close_kind and FAULTS.engine.fires(
                        "link_corrupt", self.name, sim.now):
                    FAULTS.engine.mark_corrupt(flit.message_id)
                    stats_incr("corrupted_messages")
                    if OBS.enabled:
                        OBS.metrics.incr("faults.corrupted_messages",
                                         link=self.name)
            # Blocking here *is* the stop signal: the wire stalls until the
            # receiver FIFO has room for the flit.
            yield rx_put(flit)
            stats_incr("flits")
            stats_incr("bytes", flit.nbytes)
            tracer_record(sim.now, self.name, "delivered",
                          (flit.kind.value, flit.message_id, flit.seq))
            if self._spans and flit.kind == close_kind:
                span = self._spans.pop(flit.message_id, 0)
                if OBS.enabled:
                    OBS.tracer.end(span, sim.now)
                    OBS.metrics.incr("link.messages", link=self.name)

    def utilization(self, elapsed_ns: Optional[float] = None) -> float:
        elapsed = self.sim.now if elapsed_ns is None else elapsed_ns
        return self.busy_ns / elapsed if elapsed > 0 else 0.0


class DuplexLink:
    """A bidirectional link: two independent directions (full duplex).

    The full-duplex protocol "improves not only the overall bandwidth but
    also simplifies the communication protocols by excluding deadlocks" —
    in the model, each direction has its own pump and FIFOs, so opposite
    traffic never shares a resource.
    """

    def __init__(self, sim: Simulator, config: LinkConfig,
                 rx_forward: ByteFifo, rx_backward: ByteFifo,
                 name: str = "duplex"):
        self.forward = Link(sim, config, rx_forward, name=f"{name}.fwd")
        self.backward = Link(sim, config, rx_backward, name=f"{name}.bwd")

    @property
    def full_duplex_bandwidth_mb_s(self) -> float:
        return 2 * self.forward.config.bandwidth_mb_s
