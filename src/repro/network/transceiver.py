"""Asynchronous inter-cabinet transceivers.

The clock-synchronous link protocol only works over short distances (inside
a cabinet).  Between cabinets (up to 30 m) PowerMANNA inserts asynchronous
transceivers: the input side carries a 2-Kbyte FIFO so the stop signal can
tolerate the longer round-trip.  In the model a transceiver pair is a link
stage with extra propagation delay and a deep FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults import FAULTS
from repro.network.link import ByteFifo, Link, LinkConfig
from repro.network.message import FlitKind
from repro.obs import OBS
from repro.sim.engine import Simulator

SPEED_OF_LIGHT_NS_PER_M = 5.0  # signal propagation in copper, ~0.2 m/ns


@dataclass(frozen=True)
class TransceiverConfig:
    """Asynchronous link-stage parameters.

    Attributes:
        cable_m: cable length (paper: up to 30 m between cabinets).
        fifo_bytes: asynchronous input FIFO ("2-Kbyte entries").
        resync_ns: clock-domain crossing penalty per flit.
    """

    cable_m: float = 30.0
    fifo_bytes: int = 2048
    resync_ns: float = 35.0  # two 60 MHz cycles of synchroniser

    def __post_init__(self):
        if self.cable_m <= 0 or self.cable_m > 100:
            raise ValueError(f"cable length {self.cable_m} m out of range (0, 100]")
        if self.fifo_bytes < 64:
            raise ValueError("transceiver FIFO must be at least 64 bytes")

    @property
    def propagation_ns(self) -> float:
        return self.cable_m * SPEED_OF_LIGHT_NS_PER_M


def make_async_link(sim: Simulator, link_config: LinkConfig,
                    xcvr: TransceiverConfig, rx: ByteFifo,
                    name: str = "async") -> Link:
    """Build one direction of an inter-cabinet link.

    The stage is: sender -> (synchronous wire) -> transceiver FIFO ->
    (cable) -> receiver FIFO.  We compose it as a single :class:`Link`
    whose propagation includes the cable flight plus resynchronisation,
    delivering into an intermediate 2-KB FIFO that drains into ``rx``.
    """
    cfg = LinkConfig(
        clock=link_config.clock,
        propagation_ns=link_config.propagation_ns + xcvr.propagation_ns
        + xcvr.resync_ns)
    buffer_fifo = ByteFifo(sim, xcvr.fifo_bytes, name=f"{name}.xcvr_fifo")
    link = Link(sim, cfg, buffer_fifo, name=name)

    def drain():
        # The transceiver forwards into the downstream FIFO at link rate;
        # backpressure from ``rx`` accumulates in the 2-KB buffer first,
        # which is what lets the stop signal work over 30 m.
        relay_span = 0
        while True:
            flit = yield buffer_fifo.get()
            if OBS.enabled and not relay_span:
                relay_span = OBS.tracer.begin(
                    "xcvr.relay", name, sim.now, category="network",
                    message=flit.message_id)
            if FAULTS.enabled:
                # Transceiver stall: the clock-domain crossing hiccups and
                # the relay pauses; upstream backpressure absorbs it in
                # the 2-KB FIFO exactly as the stop signal would.
                stall = FAULTS.engine.stall_ns("xcvr_stall", name, sim.now)
                if stall > 0:
                    if OBS.enabled:
                        OBS.metrics.incr("faults.xcvr_stalls", xcvr=name)
                        OBS.metrics.observe("faults.xcvr_stall_ns", stall,
                                            xcvr=name)
                    yield sim.pooled_timeout(stall)
            yield sim.pooled_timeout(cfg.serialize_ns(flit.nbytes))
            yield rx.put(flit)
            if flit.kind == FlitKind.CLOSE:
                if OBS.enabled:
                    OBS.tracer.end(relay_span, sim.now)
                    OBS.metrics.incr("xcvr.messages", xcvr=name)
                relay_span = 0

    sim.process(drain())
    return link
