"""The flow-level fidelity tier: calibrated analytic message pricing.

The flit-level model is the ground truth, but standing up a 1k-4k-node
machine as discrete-event processes is wasteful when the question is
"what do latency and bandwidth look like at scale".  This tier prices a
message from

* **calibrated constants** — affine fits (``c0 + c1 * nbytes``) of
  latency, gap, send overhead and bidirectional round time, measured
  *once* per configuration by running the flit-level model on the
  8-node Figure-5a cluster (one crossbar, no async hops); and
* **path costs from the wiring graph** — each crossbar beyond the first
  adds its route-setup/forward/link-stage time, each asynchronous hop
  adds the transceiver resync plus cable flight, both straight from the
  same :class:`LinkConfig`/:class:`CrossbarConfig`/:class:`TransceiverConfig`
  constants the flit model integrates.

Because both terms derive from the flit model (by measurement and by
shared constants respectively), the tiers agree on small machines — the
equivalence suite in ``tests/network/test_topo_flow.py`` holds them to
:data:`repro.comparators.calibration.FLOW_EQUIVALENCE` and to identical
hop counts and reachability — and the flow tier then extrapolates to
machines the flit model cannot touch interactively.

Determinism: calibration is a deterministic simulation, the fits are
closed-form, and path costs are graph lookups, so a flow-tier sweep is
byte-identical at any ``--jobs`` level like every other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.network.crossbar import CrossbarConfig
from repro.network.link import LinkConfig
from repro.network.routing import RouteTable
from repro.network.topo.generators import build_graph
from repro.network.topo.spec import TopologySpec
from repro.network.transceiver import TransceiverConfig

#: Message sizes the affine fits anchor at.  Far enough apart that the
#: per-byte slope is well conditioned, small enough that calibration
#: stays interactive (~a second of flit simulation).
CALIBRATION_SIZES = (256, 8192)

#: Extra anchors for the small-message gap regime: below ~256 bytes the
#: inter-send gap is bound by per-message driver work, not the link, so
#: the gap model is the max of two affine fits (overhead-bound and
#: bandwidth-bound).
GAP_FLOOR_SIZES = (8, 64)


@dataclass(frozen=True)
class FlowParams:
    """Affine fit constants, all in nanoseconds (per message / per byte).

    ``latency(n) = lat0 + lat1 * n`` on a one-crossbar path;
    ``extra_xbar_ns`` / ``async_hop_ns`` are added per additional
    crossbar / per asynchronous inter-crossbar hop on the actual route.
    """

    lat0: float
    lat1: float
    gap0: float
    gap1: float
    gapf0: float
    gapf1: float
    ovh0: float
    ovh1: float
    round0: float
    round1: float
    extra_xbar_ns: float
    async_hop_ns: float

    def latency_ns(self, nbytes: int, crossbars: int,
                   async_hops: int) -> float:
        base = self.lat0 + self.lat1 * nbytes
        return (base + (crossbars - 1) * self.extra_xbar_ns
                + async_hops * self.async_hop_ns)

    def gap_ns(self, nbytes: int) -> float:
        # The steady-state gap is whichever bound bites: per-message
        # driver work (dominates small messages) or the bottleneck link
        # (the same 60 MB/s stage on every path, so path length drops
        # out of both regimes).
        return max(self.gapf0 + self.gapf1 * nbytes,
                   self.gap0 + self.gap1 * nbytes)

    def overhead_ns(self, nbytes: int) -> float:
        return self.ovh0 + self.ovh1 * nbytes

    def round_ns(self, nbytes: int) -> float:
        return self.round0 + self.round1 * nbytes


def _affine_fit(sizes: Tuple[int, int],
                values: Tuple[float, float]) -> Tuple[float, float]:
    (n_a, n_b), (v_a, v_b) = sizes, values
    slope = (v_b - v_a) / (n_b - n_a)
    return v_a - slope * n_a, slope


_calibration_memo: Dict[tuple, FlowParams] = {}


def clear_calibration_memo() -> None:
    """Forget calibrations (tests that tweak configs mid-process)."""
    _calibration_memo.clear()


def calibrate_flow(link_config: LinkConfig = LinkConfig(),
                   crossbar_config: CrossbarConfig = CrossbarConfig(),
                   driver_config=None,
                   fifo_words: int = 32,
                   transceiver_config: TransceiverConfig = TransceiverConfig(),
                   sizes: Tuple[int, int] = CALIBRATION_SIZES) -> FlowParams:
    """Fit :class:`FlowParams` against flit-level runs on the 8-node
    cluster with these exact configs.  Memoised per configuration."""
    from repro.parallel.cache import canonical

    key = canonical((link_config, crossbar_config, driver_config,
                     fifo_words, transceiver_config, sizes))
    hit = _calibration_memo.get(key)
    if hit is not None:
        return hit

    from repro.msg.api import build_cluster_world
    from repro.msg.logp import measure_send_overhead_ns
    from repro.ni.driver import DriverConfig

    driver = driver_config if driver_config is not None else DriverConfig()

    def fresh():
        _, world = build_cluster_world(fifo_words=fifo_words,
                                       link_config=link_config,
                                       crossbar_config=crossbar_config,
                                       driver_config=driver)
        return world

    lats, gaps, ovhs, rounds = [], [], [], []
    for nbytes in sizes:
        lats.append(fresh().one_way_latency_ns(0, 1, nbytes))
        gaps.append(fresh().send_gap_ns(0, 1, nbytes))
        ovhs.append(measure_send_overhead_ns(fresh(), 0, 1, nbytes))
        bidir = fresh().bidirectional_mb_s(0, 1, nbytes)
        # One bidirectional round moves 2*nbytes; MB/s = bytes*1e3/ns.
        rounds.append(2 * nbytes * 1e3 / bidir if bidir > 0 else 0.0)
    floor_gaps = tuple(fresh().send_gap_ns(0, 1, nbytes)
                       for nbytes in GAP_FLOOR_SIZES)

    lat0, lat1 = _affine_fit(sizes, tuple(lats))
    gap0, gap1 = _affine_fit(sizes, tuple(gaps))
    gapf0, gapf1 = _affine_fit(GAP_FLOOR_SIZES, floor_gaps)
    ovh0, ovh1 = _affine_fit(sizes, tuple(ovhs))
    round0, round1 = _affine_fit(sizes, tuple(rounds))
    # Per-hop terms come straight from the component constants the flit
    # model integrates: an extra crossbar costs its route setup plus the
    # switch-core forward plus one more link stage's first-flit time; an
    # asynchronous hop adds the transceiver's clock-domain resync and the
    # cable flight.
    extra_xbar = (crossbar_config.route_setup_ns + crossbar_config.forward_ns
                  + link_config.propagation_ns + link_config.byte_ns)
    async_hop = (transceiver_config.resync_ns
                 + transceiver_config.propagation_ns)
    params = FlowParams(lat0=lat0, lat1=lat1, gap0=gap0, gap1=gap1,
                        gapf0=gapf0, gapf1=gapf1,
                        ovh0=ovh0, ovh1=ovh1, round0=round0, round1=round1,
                        extra_xbar_ns=extra_xbar, async_hop_ns=async_hop)
    _calibration_memo[key] = params
    return params


class FlowWorld:
    """The flow tier's stand-in for a :class:`~repro.msg.api.CommWorld`.

    Exposes the same measurement surface (``one_way_latency_ns``,
    ``send_gap_ns``, ``unidirectional_mb_s``, ``bidirectional_mb_s``)
    computed analytically, so the communication sweeps run unmodified on
    either tier.  Routing runs over the real wiring graph — hop counts,
    route bytes and reachability are exactly what the flit fabric would
    compute, only the *timing* is modelled.
    """

    fidelity = "flow"

    def __init__(self, spec: TopologySpec,
                 link_config: LinkConfig = LinkConfig(),
                 crossbar_config: CrossbarConfig = CrossbarConfig(),
                 driver_config=None,
                 fifo_words: int = 32,
                 transceiver_config: TransceiverConfig = TransceiverConfig(),
                 plane: int = 0,
                 params: Optional[FlowParams] = None):
        self.spec = spec
        self.plane = plane
        self.graph = build_graph(spec, ports=crossbar_config.ports)
        self.routes = RouteTable(self.graph)
        self.params = params if params is not None else calibrate_flow(
            link_config, crossbar_config, driver_config, fifo_words,
            transceiver_config)
        self._node_ids = sorted({key[1] for key in self.graph.nodes
                                 if key[0] == "node" and key[2] == plane})

    # -- structure ----------------------------------------------------------

    def node_ids(self) -> List[int]:
        return list(self._node_ids)

    def _key(self, node: int) -> Hashable:
        from repro.network.topology import node_key

        return node_key(node, self.plane)

    def path_costs(self, a: int, b: int) -> Tuple[int, int]:
        """(crossbars on the route, asynchronous hops on the route)."""
        path = self.routes.path(self._key(a), self._key(b))
        crossbars = sum(1 for hop in path if hop[0] == "xbar")
        async_hops = sum(
            1 for here, there in zip(path, path[1:])
            if self.graph.edges[here, there].get("asynchronous"))
        return crossbars, async_hops

    def hops(self, a: int, b: int) -> int:
        return self.routes.crossbars_on_path(self._key(a), self._key(b))

    def far_pair(self) -> Tuple[int, int]:
        """The measurement pair: the lowest node id and the nearest of
        its most distant peers — deterministic, and on a single-crossbar
        topology it degenerates to ``(0, 1)`` like the legacy sweeps."""
        import networkx as nx

        src = self._node_ids[0]
        lengths = nx.single_source_shortest_path_length(
            self.graph, self._key(src))
        best, best_len = None, -1
        for node in self._node_ids[1:]:
            length = lengths.get(self._key(node))
            if length is not None and length > best_len:
                best, best_len = node, length
        if best is None:
            raise ValueError(f"node {src} reaches no peer on plane "
                             f"{self.plane}")
        return src, best

    # -- the CommWorld measurement surface ----------------------------------

    def one_way_latency_ns(self, a: int, b: int, nbytes: int,
                           reps: int = 4) -> float:
        crossbars, async_hops = self.path_costs(a, b)
        return self.params.latency_ns(nbytes, crossbars, async_hops)

    def send_gap_ns(self, a: int, b: int, nbytes: int,
                    count: int = 16) -> float:
        self.path_costs(a, b)  # raises NoRouteError on dead pairs
        return self.params.gap_ns(nbytes)

    def unidirectional_mb_s(self, a: int, b: int, nbytes: int,
                            count: int = 8) -> float:
        # Pipeline fill (one latency) then steady-state gaps, exactly the
        # structure of the flit measurement loop.
        latency = self.one_way_latency_ns(a, b, nbytes)
        elapsed = latency + (count - 1) * self.params.gap_ns(nbytes)
        return count * nbytes * 1e3 / elapsed if elapsed > 0 else 0.0

    def bidirectional_mb_s(self, a: int, b: int, nbytes: int,
                           rounds: int = 4) -> float:
        crossbars, async_hops = self.path_costs(a, b)
        extra = ((crossbars - 1) * self.params.extra_xbar_ns
                 + async_hops * self.params.async_hop_ns)
        # Back-to-back exchanges pipeline through the fabric, so the
        # extra path latency is a one-time fill cost (both directions),
        # not a per-round tax.
        elapsed = rounds * self.params.round_ns(nbytes) + 2 * extra
        total_bytes = 2 * rounds * nbytes
        return total_bytes * 1e3 / elapsed if elapsed > 0 else 0.0
