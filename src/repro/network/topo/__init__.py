"""Pluggable topology layer: spec-driven fabric construction.

* :mod:`repro.network.topo.spec` — :class:`TopologySpec` (JSON
  round-trip, canonical cache form) and ``--topology`` parsing.
* :mod:`repro.network.topo.generators` — the generator family (cluster,
  manna, grid, xbar_tree, hypercube, torus, fat_tree) emitting ordered
  wiring blueprints, plus the flit realizer :func:`build_fabric` and the
  graph realizer :func:`build_graph`.
* :mod:`repro.network.topo.flow` — the calibrated flow-level fidelity
  tier (:class:`FlowWorld`) for 1k-4k-node sweeps.
"""

from repro.network.topo.spec import (
    GENERATORS,
    TopologySpec,
    generator_kinds,
    parse_topology,
)
from repro.network.topo.generators import (
    Blueprint,
    blueprint,
    build_fabric,
    build_graph,
    diameter_bound_crossbars,
)
from repro.network.topo.flow import (
    FlowParams,
    FlowWorld,
    calibrate_flow,
    clear_calibration_memo,
)

__all__ = [
    "Blueprint",
    "FlowParams",
    "FlowWorld",
    "GENERATORS",
    "TopologySpec",
    "blueprint",
    "build_fabric",
    "build_graph",
    "calibrate_flow",
    "clear_calibration_memo",
    "diameter_bound_crossbars",
    "generator_kinds",
    "parse_topology",
]
