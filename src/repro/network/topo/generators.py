"""Blueprint generators and the two fabric realizers.

A generator turns a :class:`~repro.network.topo.spec.TopologySpec` into a
:class:`Blueprint` — an ordered op list of crossbars, node attachments
and crossbar-crossbar dual links.  The op *order* is part of the
contract: :func:`build_fabric` replays it verbatim, so the legacy
builders' specs reconstruct bit-identical simulations (process creation
order determines event ordering in the DES kernel).

Two realizers consume a blueprint:

* :func:`build_fabric` — the flit-fidelity tier: a full
  :class:`~repro.network.topology.Fabric` (crossbar ASICs, link pipes,
  transceivers — every component a simulation process).
* :func:`build_graph` — the flow-fidelity tier: only the wiring digraph,
  with the same vertex keys and port attributes the Fabric would carry
  plus an ``asynchronous`` flag on inter-crossbar edges, cheap enough to
  stand up a 4k-node machine in milliseconds.

Generator family:

========== ===================================================== =========
kind       shape                                                 paper tie
========== ===================================================== =========
cluster    Figure 5a: N nodes on P duplicated crossbars          Fig. 5a
manna      Figure 5b: clusters joined by permutation spines      Fig. 5b
grid       row/column reading of Figure 5b                       Fig. 5b
xbar_tree  multi-tier crossbar tree (clusters of clusters)       sec. 2
hypercube  2^d routers in a binary hypercube (RTNN, QCDSP line)  PAPERS.md
torus      2-D/3-D wraparound mesh of router crossbars           PAPERS.md
fat_tree   k-ary 3-level fat tree (k pods, k^3/4 hosts)          PAPERS.md
========== ===================================================== =========
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.network.link import LinkConfig
from repro.network.crossbar import CrossbarConfig
from repro.network.topo.spec import TopologySpec, register_generator
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Tracer

# Op tags.  A blueprint op is one of:
#   ("xbar", name)
#   ("node", node_id, iface, xbar_name, port)
#   ("xlink", name_a, port_a, name_b, port_b, asynchronous)
OP_XBAR = "xbar"
OP_NODE = "node"
OP_XLINK = "xlink"


@dataclass(frozen=True)
class Blueprint:
    """An ordered, fidelity-neutral wiring program for one fabric."""

    kind: str
    ops: Tuple[tuple, ...]

    def crossbar_names(self) -> List[str]:
        return [op[1] for op in self.ops if op[0] == OP_XBAR]

    def node_count(self) -> int:
        return len({op[1] for op in self.ops if op[0] == OP_NODE})

    def planes(self) -> int:
        ifaces = {op[2] for op in self.ops if op[0] == OP_NODE}
        return (max(ifaces) + 1) if ifaces else 0


class _PortAllocator:
    """Deterministic next-free-port bookkeeping for the new generators."""

    def __init__(self, ports: int):
        self.ports = ports
        self._next: Dict[str, int] = {}

    def take(self, xbar: str) -> int:
        port = self._next.get(xbar, 0)
        if port >= self.ports:
            raise ValueError(
                f"crossbar {xbar!r} needs more than {self.ports} ports; "
                f"use a larger crossbar or a smaller topology")
        self._next[xbar] = port + 1
        return port


def blueprint(spec: TopologySpec, ports: int) -> Blueprint:
    """The wiring program of ``spec`` on ``ports``-port crossbars."""
    from repro.network.topo.spec import GENERATORS

    generator = GENERATORS[spec.kind][0]
    return Blueprint(spec.kind, tuple(generator(spec.resolved_params(),
                                                ports)))


# ---------------------------------------------------------------------------
# Legacy generators — op order matches the original bespoke builders
# exactly (byte-identity of every existing figure depends on it).
# ---------------------------------------------------------------------------


@register_generator("cluster", {"n_nodes": 8, "planes": 2})
def _gen_cluster(params: dict, ports: int) -> List[tuple]:
    n_nodes, planes = params["n_nodes"], params["planes"]
    if n_nodes > ports:
        raise ValueError(
            f"{n_nodes} nodes do not fit a {ports}-port crossbar")
    if planes < 1:
        raise ValueError("need at least one network plane")
    ops: List[tuple] = []
    for plane in range(planes):
        ops.append((OP_XBAR, f"plane{plane}"))
        for node in range(n_nodes):
            ops.append((OP_NODE, node, plane, f"plane{plane}", node))
    return ops


@register_generator("manna", {"clusters": 16, "nodes_per_cluster": 8})
def _gen_manna(params: dict, ports: int) -> List[tuple]:
    clusters = params["clusters"]
    npc = params["nodes_per_cluster"]
    spine_count = ports - npc  # free ports per cluster xbar
    if clusters > ports:
        raise ValueError(
            f"{clusters} clusters need {clusters} spine ports; the crossbar "
            f"has {ports}")
    ops: List[tuple] = []
    for plane in range(2):
        spine_names = [f"spine{plane}.{s}" for s in range(spine_count)]
        for name in spine_names:
            ops.append((OP_XBAR, name))
        for cluster in range(clusters):
            cname = f"c{cluster}.plane{plane}"
            ops.append((OP_XBAR, cname))
            for local in range(npc):
                node_id = cluster * npc + local
                ops.append((OP_NODE, node_id, plane, cname, local))
            for s, sname in enumerate(spine_names):
                ops.append((OP_XLINK, cname, npc + s, sname, cluster, True))
    return ops


@register_generator("grid", {"rows": 4, "cols": 4, "nodes_per_cluster": 8})
def _gen_grid(params: dict, ports: int) -> List[tuple]:
    rows, cols, npc = params["rows"], params["cols"], params["nodes_per_cluster"]
    free = ports - npc
    links_per_cluster = min(free, max(1, ports // max(rows, cols)))
    ops: List[tuple] = []

    def cluster_index(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            cluster = cluster_index(r, c)
            for plane in range(2):
                cname = f"c{cluster}.plane{plane}"
                ops.append((OP_XBAR, cname))
                for local in range(npc):
                    node_id = cluster * npc + local
                    ops.append((OP_NODE, node_id, plane, cname, local))

    for r in range(rows):
        rname = f"row{r}"
        ops.append((OP_XBAR, rname))
        row_port = itertools.count()
        for c in range(cols):
            cname = f"c{cluster_index(r, c)}.plane0"
            for k in range(links_per_cluster):
                ops.append((OP_XLINK, cname, npc + k, rname,
                            next(row_port), True))
    for c in range(cols):
        colname = f"col{c}"
        ops.append((OP_XBAR, colname))
        col_port = itertools.count()
        for r in range(rows):
            cname = f"c{cluster_index(r, c)}.plane1"
            for k in range(links_per_cluster):
                ops.append((OP_XLINK, cname, npc + k, colname,
                            next(col_port), True))
    return ops


# ---------------------------------------------------------------------------
# The scaling family: tree / hypercube / torus / fat tree.
# ---------------------------------------------------------------------------


@register_generator("xbar_tree", {"levels": 2, "arity": 4,
                                  "nodes_per_leaf": 8, "uplinks": 1,
                                  "asynchronous": True})
def _gen_xbar_tree(params: dict, ports: int) -> List[tuple]:
    """A multi-tier crossbar tree: nodes on leaf crossbars, ``arity``
    children per switch, ``uplinks`` parallel dual links child-to-parent.

    Worst-case path climbs to the root and back down: ``2*levels - 1``
    crossbars (``levels=2, arity=16`` reproduces a 16-cluster machine in
    the Figure-5b spirit with a single-crossbar spine).
    """
    levels, arity = params["levels"], params["arity"]
    npl, uplinks = params["nodes_per_leaf"], params["uplinks"]
    asynchronous = params["asynchronous"]
    if levels < 1:
        raise ValueError("xbar_tree needs at least one level")
    if arity < 2 and levels > 1:
        raise ValueError("xbar_tree arity must be >= 2")
    if npl + (uplinks if levels > 1 else 0) > ports:
        raise ValueError(
            f"{npl} nodes + {uplinks} uplink(s) do not fit a {ports}-port "
            f"leaf crossbar")
    if levels > 1 and arity * uplinks + uplinks > ports:
        raise ValueError(
            f"{arity} children x {uplinks} uplink(s) do not fit a "
            f"{ports}-port switch")
    ops: List[tuple] = []
    alloc = _PortAllocator(ports)

    def switch_name(level: int, index: int) -> str:
        return f"t{level}.{index}"

    # Leaves first (nodes attach in node-id order), then tiers upward.
    leaves = arity ** (levels - 1)
    for leaf in range(leaves):
        name = switch_name(levels - 1, leaf)
        ops.append((OP_XBAR, name))
        for local in range(npl):
            ops.append((OP_NODE, leaf * npl + local, 0, name,
                        alloc.take(name)))
    for level in range(levels - 2, -1, -1):
        for index in range(arity ** level):
            parent = switch_name(level, index)
            ops.append((OP_XBAR, parent))
            for child in range(arity):
                child_name = switch_name(level + 1, index * arity + child)
                for _ in range(uplinks):
                    ops.append((OP_XLINK, child_name,
                                alloc.take(child_name), parent,
                                alloc.take(parent), asynchronous))
    return ops


@register_generator("hypercube", {"dimensions": 4, "nodes_per_router": 1,
                                  "asynchronous": False})
def _gen_hypercube(params: dict, ports: int) -> List[tuple]:
    """2^d router crossbars, routers joined along every dimension.

    Diameter is ``d`` router-router hops, so a route crosses at most
    ``d + 1`` crossbars.  ``dimensions=8, nodes_per_router=4`` is a
    1024-node machine on 16-port crossbars (8 links + 4 nodes).
    """
    d = params["dimensions"]
    npr = params["nodes_per_router"]
    asynchronous = params["asynchronous"]
    if d < 1:
        raise ValueError("hypercube needs at least one dimension")
    if npr < 1:
        raise ValueError("hypercube needs at least one node per router")
    if npr + d > ports:
        raise ValueError(
            f"{npr} nodes + {d} dimension links do not fit a {ports}-port "
            f"crossbar")
    ops: List[tuple] = []
    alloc = _PortAllocator(ports)
    routers = 1 << d
    for router in range(routers):
        name = f"h{router}"
        ops.append((OP_XBAR, name))
        for local in range(npr):
            ops.append((OP_NODE, router * npr + local, 0, name,
                        alloc.take(name)))
    for router in range(routers):
        for bit in range(d):
            peer = router ^ (1 << bit)
            if peer < router:
                continue  # one dual link per edge
            a, b = f"h{router}", f"h{peer}"
            ops.append((OP_XLINK, a, alloc.take(a), b, alloc.take(b),
                        asynchronous))
    return ops


@register_generator("torus", {"dims": [4, 4], "nodes_per_router": 1,
                              "asynchronous": False})
def _gen_torus(params: dict, ports: int) -> List[tuple]:
    """A 2-D or 3-D wraparound mesh of router crossbars.

    Diameter is ``sum(dim // 2)`` router hops, so at most
    ``1 + sum(dim // 2)`` crossbars on a route.
    """
    dims = list(params["dims"])
    npr = params["nodes_per_router"]
    asynchronous = params["asynchronous"]
    if len(dims) not in (2, 3):
        raise ValueError(f"torus dims must be 2-D or 3-D, got {dims}")
    if any(d < 2 for d in dims):
        raise ValueError(f"every torus dimension must be >= 2, got {dims}")
    degree = sum(1 if d == 2 else 2 for d in dims)
    if npr + degree > ports:
        raise ValueError(
            f"{npr} nodes + {degree} torus links do not fit a {ports}-port "
            f"crossbar")
    ops: List[tuple] = []
    alloc = _PortAllocator(ports)
    coords = list(itertools.product(*[range(d) for d in dims]))
    index = {coord: i for i, coord in enumerate(coords)}

    def name(coord) -> str:
        return "r" + ".".join(str(c) for c in coord)

    for i, coord in enumerate(coords):
        ops.append((OP_XBAR, name(coord)))
        for local in range(npr):
            ops.append((OP_NODE, i * npr + local, 0, name(coord),
                        alloc.take(name(coord))))
    for coord in coords:
        for axis, size in enumerate(dims):
            neighbor = list(coord)
            neighbor[axis] = (coord[axis] + 1) % size
            neighbor = tuple(neighbor)
            if size == 2 and coord[axis] == 1:
                continue  # +1 wraps onto the same pair: one link suffices
            if index[neighbor] == index[coord]:
                continue
            a, b = name(coord), name(neighbor)
            ops.append((OP_XLINK, a, alloc.take(a), b, alloc.take(b),
                        asynchronous))
    return ops


@register_generator("fat_tree", {"k": 4, "nodes_per_edge": None,
                                 "asynchronous": True})
def _gen_fat_tree(params: dict, ports: int) -> List[tuple]:
    """A k-ary 3-level fat tree: k pods of k/2 edge + k/2 aggregation
    switches, (k/2)^2 core switches, ``nodes_per_edge`` (default k/2)
    hosts per edge switch — k^3/4 hosts at full population.

    Any route crosses at most 5 crossbars (edge, agg, core, agg, edge);
    ``k=16`` is a 1024-node machine on exactly 16-port crossbars.
    """
    k = params["k"]
    if k < 2 or k % 2:
        raise ValueError(f"fat tree k must be even and >= 2, got {k}")
    half = k // 2
    npe = params["nodes_per_edge"]
    npe = half if npe is None else npe
    if npe < 1 or npe > half:
        raise ValueError(
            f"nodes_per_edge must be in [1, {half}] for k={k}, got {npe}")
    if k > ports:
        raise ValueError(
            f"fat tree k={k} needs {k}-port crossbars; the crossbar has "
            f"{ports}")
    asynchronous = params["asynchronous"]
    ops: List[tuple] = []
    alloc = _PortAllocator(ports)

    core_names = [f"core{i}" for i in range(half * half)]
    # Pods first (hosts attach in node-id order), cores declared before
    # the agg uplinks that reference them.
    for name in core_names:
        ops.append((OP_XBAR, name))
    node_id = 0
    for pod in range(k):
        edge_names = [f"p{pod}.e{e}" for e in range(half)]
        agg_names = [f"p{pod}.a{a}" for a in range(half)]
        for e, ename in enumerate(edge_names):
            ops.append((OP_XBAR, ename))
            for _ in range(npe):
                ops.append((OP_NODE, node_id, 0, ename, alloc.take(ename)))
                node_id += 1
        for a, aname in enumerate(agg_names):
            ops.append((OP_XBAR, aname))
            for ename in edge_names:
                ops.append((OP_XLINK, ename, alloc.take(ename), aname,
                            alloc.take(aname), asynchronous))
            for c in range(half):
                cname = core_names[a * half + c]
                ops.append((OP_XLINK, aname, alloc.take(aname), cname,
                            alloc.take(cname), asynchronous))
    return ops


# ---------------------------------------------------------------------------
# Realizers.
# ---------------------------------------------------------------------------


def build_fabric(sim: Simulator, spec: TopologySpec,
                 link_config: LinkConfig = LinkConfig(),
                 crossbar_config: CrossbarConfig = CrossbarConfig(),
                 node_rx_fifo_bytes: int = 256,
                 tracer: Tracer = NULL_TRACER):
    """Realise ``spec`` as a full flit-level Fabric on ``sim``.

    Ops replay in blueprint order, so a spec produced by one of the
    legacy wrappers constructs the exact simulation the bespoke builder
    used to.
    """
    from repro.network.topology import Fabric

    if spec.fidelity != "flit":
        raise ValueError(
            f"build_fabric realises flit-fidelity specs; {spec.label()} "
            f"asks for {spec.fidelity!r} (use FlowWorld for the flow tier)")
    plan = blueprint(spec, crossbar_config.ports)
    fabric = Fabric(sim, link_config, crossbar_config,
                    node_rx_fifo_bytes=node_rx_fifo_bytes, tracer=tracer)
    for op in plan.ops:
        if op[0] == OP_XBAR:
            fabric.add_crossbar(op[1])
        elif op[0] == OP_NODE:
            _, node_id, iface, xbar, port = op
            fabric.attach_node(node_id, iface, xbar, port)
        else:
            _, name_a, port_a, name_b, port_b, asynchronous = op
            fabric.connect_crossbars(name_a, port_a, name_b, port_b,
                                     asynchronous=asynchronous)
    return fabric


def build_graph(spec: TopologySpec, ports: int = 16) -> nx.DiGraph:
    """Realise ``spec`` as a wiring digraph only — the flow tier's input.

    Vertex keys and ``in_port``/``out_port`` attributes match what a
    Fabric would build (so :class:`~repro.network.routing.RouteTable`
    computes identical paths, hop counts and route bytes); crossbar-
    crossbar edges additionally carry ``asynchronous`` so the flow model
    can price transceiver hops.
    """
    from repro.network.topology import node_key, xbar_key

    plan = blueprint(spec, ports)
    graph = nx.DiGraph()
    for op in plan.ops:
        if op[0] == OP_XBAR:
            graph.add_node(xbar_key(op[1]))
        elif op[0] == OP_NODE:
            _, node_id, iface, xbar, port = op
            nkey, xkey = node_key(node_id, iface), xbar_key(xbar)
            graph.add_edge(nkey, xkey, in_port=port)
            graph.add_edge(xkey, nkey, out_port=port)
        else:
            _, name_a, port_a, name_b, port_b, asynchronous = op
            ka, kb = xbar_key(name_a), xbar_key(name_b)
            graph.add_edge(ka, kb, out_port=port_a,
                           asynchronous=asynchronous)
            graph.add_edge(kb, ka, out_port=port_b,
                           asynchronous=asynchronous)
    return graph


# ---------------------------------------------------------------------------
# Documented per-topology diameter bounds (crossbars on a route), used by
# the property tests and the docs.  ``None`` means "depends on wiring
# degree" (grid relaying is the paper's argument against that reading).
# ---------------------------------------------------------------------------


def diameter_bound_crossbars(spec: TopologySpec) -> Optional[int]:
    """Worst-case crossbars on any route, from the topology's geometry.

    * cluster  — 1 (single crossbar per plane)
    * manna    — 3 (cluster, spine, cluster: the paper's property)
    * xbar_tree — ``2*levels - 1`` (up to the root and back down)
    * hypercube — ``dimensions + 1``
    * torus    — ``1 + sum(dim // 2)``
    * fat_tree — 5 (edge, agg, core, agg, edge)
    * grid     — no constant bound (same row/column: 3; otherwise a
      software relay is required), hence ``None``.
    """
    params = spec.resolved_params()
    if spec.kind == "cluster":
        return 1
    if spec.kind == "manna":
        return 3
    if spec.kind == "xbar_tree":
        return 2 * params["levels"] - 1
    if spec.kind == "hypercube":
        return params["dimensions"] + 1
    if spec.kind == "torus":
        return 1 + sum(d // 2 for d in params["dims"])
    if spec.kind == "fat_tree":
        return 5
    return None
