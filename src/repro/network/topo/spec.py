"""Declarative topology specifications.

A :class:`TopologySpec` names a fabric *shape* — generator kind plus its
parameters — independently of how it is realised.  The same spec can be

* realised at **flit fidelity** (:func:`repro.network.topo.build_fabric`):
  a full :class:`~repro.network.topology.Fabric` of discrete-event
  crossbars, links and transceivers, or
* realised at **flow fidelity** (:class:`repro.network.topo.flow.FlowWorld`):
  a wiring graph only, with message costs priced from calibrated
  link/crossbar constants, which makes 1k-4k-node sweeps tractable.

Specs round-trip through JSON and have a canonical dictionary form for
the parallel sweep cache: ``to_dict`` emits the *resolved* parameters
(generator defaults overlaid with the spec's own) with sorted keys, so
``hypercube`` and ``hypercube:dimensions=4`` fingerprint identically and
dict ordering cannot leak into a cache key.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

FIDELITIES = ("flit", "flow")

#: kind -> (generator, {param: default}).  Populated by
#: :func:`register_generator`; :mod:`repro.network.topo.generators` fills
#: it at import time.
GENERATORS: Dict[str, Tuple[Callable[..., Any], Dict[str, Any]]] = {}


def register_generator(kind: str, defaults: Dict[str, Any]):
    """Class decorator/registration hook for a blueprint generator."""

    def register(fn):
        GENERATORS[kind] = (fn, dict(defaults))
        return fn

    return register


def generator_kinds() -> Tuple[str, ...]:
    return tuple(sorted(GENERATORS))


def _ensure_generators_loaded() -> None:
    if not GENERATORS:  # pragma: no cover - import cycle guard
        import repro.network.topo.generators  # noqa: F401


@dataclass(frozen=True, eq=False)
class TopologySpec:
    """One declarative fabric description.

    Attributes:
        kind: generator name (``cluster``, ``manna``, ``grid``,
            ``xbar_tree``, ``hypercube``, ``torus``, ``fat_tree``).
        params: generator parameters; unknown keys are rejected, omitted
            keys take the generator's defaults.
        fidelity: ``flit`` (full discrete-event fabric, the default and
            the ground truth) or ``flow`` (calibrated analytic tier).
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    fidelity: str = "flit"

    def __post_init__(self):
        _ensure_generators_loaded()
        if self.kind not in GENERATORS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; choose from "
                f"{generator_kinds()}")
        if self.fidelity not in FIDELITIES:
            raise ValueError(
                f"unknown fidelity {self.fidelity!r}; choose from "
                f"{FIDELITIES}")
        defaults = GENERATORS[self.kind][1]
        unknown = sorted(set(self.params) - set(defaults))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for topology "
                f"{self.kind!r}; accepts {sorted(defaults)}")

    def __eq__(self, other: object) -> bool:
        # Canonical equality: a spec that spells out a default equals one
        # that omits it (both fingerprint identically too).
        if not isinstance(other, TopologySpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(self.to_json())

    # -- parameters ---------------------------------------------------------

    def resolved_params(self) -> Dict[str, Any]:
        """Generator defaults overlaid with this spec's parameters."""
        merged = dict(GENERATORS[self.kind][1])
        merged.update(self.params)
        return merged

    def param(self, name: str) -> Any:
        return self.resolved_params()[name]

    def with_fidelity(self, fidelity: str) -> "TopologySpec":
        return TopologySpec(self.kind, dict(self.params), fidelity)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical dictionary form (resolved params, sorted keys).

        Two specs that describe the same fabric — regardless of which
        parameters were spelled out — produce identical dictionaries, so
        the sweep cache fingerprint cannot depend on spelling.
        """
        params = self.resolved_params()
        return {
            "kind": self.kind,
            "params": {key: params[key] for key in sorted(params)},
            "fidelity": self.fidelity,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"topology spec must be an object, got "
                             f"{type(data).__name__}")
        unknown = sorted(set(data) - {"kind", "params", "fidelity"})
        if unknown:
            raise ValueError(f"unknown topology spec field(s) {unknown}")
        if "kind" not in data:
            raise ValueError("topology spec needs a 'kind'")
        params = data.get("params", {})
        if not isinstance(params, Mapping):
            raise ValueError("'params' must be an object")
        return cls(kind=str(data["kind"]), params=dict(params),
                   fidelity=str(data.get("fidelity", "flit")))

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        return cls.from_dict(json.loads(text))

    def label(self) -> str:
        """A short human label: ``hypercube(dimensions=8)``."""
        shown = ",".join(f"{k}={_label_value(v)}"
                         for k, v in sorted(self.params.items()))
        tier = "" if self.fidelity == "flit" else f"@{self.fidelity}"
        return f"{self.kind}({shown}){tier}"


def _label_value(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "x".join(str(v) for v in value)
    return str(value)


def _parse_scalar(text: str) -> Any:
    """``4`` -> int, ``0.5`` -> float, ``true`` -> bool, ``4x4x2`` -> list,
    anything else stays a string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if "x" in text:
        parts = text.split("x")
        try:
            return [int(p) for p in parts]
        except ValueError:
            pass
    for conv in (int, float):
        try:
            return conv(text)
        except ValueError:
            continue
    return text


def parse_topology(text: str) -> TopologySpec:
    """A :class:`TopologySpec` from the CLI ``--topology`` argument.

    Accepted forms::

        hypercube                               # generator defaults
        hypercube:dimensions=8,nodes_per_router=4
        torus:dims=4x4x4,fidelity=flow          # NxM[xK] list syntax
        {"kind": "fat_tree", "params": {"k": 16}, "fidelity": "flow"}
        path/to/spec.json                       # or @path/to/spec.json
    """
    _ensure_generators_loaded()
    text = text.strip()
    if not text:
        raise ValueError("empty --topology argument")
    if text.startswith("{"):
        return TopologySpec.from_json(text)
    path = text[1:] if text.startswith("@") else text
    if text.startswith("@") or (path.endswith(".json") and
                                os.path.exists(path)):
        with open(path, "r", encoding="utf-8") as handle:
            return TopologySpec.from_json(handle.read())
    kind, _, rest = text.partition(":")
    params: Dict[str, Any] = {}
    fidelity = "flit"
    if rest:
        for item in rest.split(","):
            if not item:
                continue
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed topology parameter {item!r} (expected "
                    f"key=value)")
            if key == "fidelity":
                fidelity = raw
            else:
                params[key] = _parse_scalar(raw)
    return TopologySpec(kind=kind, params=params, fidelity=fidelity)
