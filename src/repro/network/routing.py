"""Route computation over a fabric graph.

PowerMANNA uses source routing: the sender prepends one route byte per
crossbar on the path, each naming that crossbar's output channel.  The
:class:`RouteTable` computes those bytes from the fabric's wiring graph
(shortest path over a :mod:`networkx` digraph) and caches them.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx


class NoRouteError(RuntimeError):
    """No path exists between the requested endpoints.

    Carries the endpoints and the failure state the search ran under
    (``src``/``dst``/``failed_edges``/``failed_vertices``), and the
    message summarises them — "no route" with no idea *why* is the least
    debuggable error a fault experiment can produce.
    """

    def __init__(self, message: str, src: Hashable = None,
                 dst: Hashable = None,
                 failed_edges: Optional[Set[Tuple[Hashable, Hashable]]] = None,
                 failed_vertices: Optional[Set[Hashable]] = None):
        super().__init__(message)
        self.src = src
        self.dst = dst
        self.failed_edges = set(failed_edges or ())
        self.failed_vertices = set(failed_vertices or ())


def _summarise(items: Set, limit: int = 4) -> str:
    shown = sorted(items, key=repr)[:limit]
    text = ", ".join(repr(item) for item in shown)
    more = len(items) - len(shown)
    return text + (f", ... {more} more" if more > 0 else "")


class RouteTable:
    """Shortest-path source routes over a wiring graph.

    Graph vertices are component keys (crossbars and node interfaces);
    every directed edge leaving a crossbar carries the ``out_port``
    attribute naming the output channel used.

    Fault awareness: failed edges/vertices are tracked *here* — callers
    report failures through :meth:`mark_edge_failed` /
    :meth:`mark_vertex_failed` rather than mutating the shared wiring
    graph — and every path computation avoids them, so marking a failure
    immediately reroutes all traffic that still has a surviving path.
    """

    def __init__(self, graph: nx.DiGraph):
        self.graph = graph
        self._cache: Dict[Tuple[Hashable, Hashable], List[int]] = {}
        self._path_cache: Dict[Tuple[Hashable, Hashable],
                               List[Hashable]] = {}
        self._failed_edges: Set[Tuple[Hashable, Hashable]] = set()
        self._failed_vertices: Set[Hashable] = set()
        #: Soft failures: edges the adaptive router wants avoided while
        #: their output port is congested.  They participate in the
        #: same liveness filter as failed edges but are owned by
        #: :meth:`set_congested_edges`, never by the fault API.
        self._congested_edges: Set[Tuple[Hashable, Hashable]] = set()
        #: Bumped on every invalidation; protocols compare it to detect
        #: that routes may have moved under them.
        self.version = 0
        #: Shortest-path searches actually run (cache misses); tests use
        #: it to prove the memo works and is dropped on invalidation.
        self.searches = 0

    def route_bytes(self, src: Hashable, dst: Hashable) -> List[int]:
        """Route-command bytes for a message from ``src`` to ``dst``.

        One byte per crossbar on the path, in traversal order.
        """
        key = (src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return list(cached)
        path = self.path(src, dst)
        route: List[int] = []
        for here, there in zip(path, path[1:]):
            if not self._is_crossbar(here):
                continue
            out_port = self.graph.edges[here, there].get("out_port")
            if out_port is None:
                raise NoRouteError(
                    f"edge {here} -> {there} lacks an out_port attribute")
            route.append(out_port)
        self._cache[key] = route
        return list(route)

    def path(self, src: Hashable, dst: Hashable) -> List[Hashable]:
        """The component path (src, crossbars..., dst).

        Intermediate hops are restricted to crossbars: a wormhole cannot
        pass *through* another node's link interface (that would be a
        software relay, which the hardware route bytes cannot express).

        Memoised until :meth:`invalidate` (which every ``mark_*_failed``
        and :meth:`clear_failures` calls), so repeated measurements over
        a large fabric pay one search per pair per failure epoch.
        """
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return list(cached)

        def allowed(vertex: Hashable) -> bool:
            if vertex in self._failed_vertices:
                return False
            return self._is_crossbar(vertex) or vertex in (src, dst)

        view = nx.subgraph_view(self.graph, filter_node=allowed,
                                filter_edge=self._edge_alive)
        self.searches += 1
        try:
            path = nx.shortest_path(view, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            detail = ""
            if self._failed_edges:
                detail += (f" with {len(self._failed_edges)} failed "
                           f"edge(s): {_summarise(self._failed_edges)}")
            if self._failed_vertices:
                joiner = " and" if detail else " with"
                detail += (f"{joiner} {len(self._failed_vertices)} failed "
                           f"vertex(es): "
                           f"{_summarise(self._failed_vertices)}")
            if not detail:
                detail = " (no failures marked; the graph never had one)"
            raise NoRouteError(
                f"no route from {src} to {dst}{detail}",
                src=src, dst=dst, failed_edges=self._failed_edges,
                failed_vertices=self._failed_vertices) from exc
        self._path_cache[key] = path
        return list(path)

    def crossbars_on_path(self, src: Hashable, dst: Hashable) -> int:
        """How many crossbars a connection traverses (the paper's metric:
        at most three in the 256-processor system)."""
        return sum(1 for hop in self.path(src, dst) if self._is_crossbar(hop))

    def network_diameter_crossbars(self, endpoints: List[Hashable]) -> int:
        """Worst-case crossbar count over all endpoint pairs.

        Raises :class:`NoRouteError` if any pair is unreachable without a
        software relay.  For speed this sweep allows other endpoints as
        intermediate vertices; on the hierarchical topologies a node-transit
        path is always longer than the direct crossbar path, so the result
        is exact there (use :meth:`crossbars_on_path` for strict per-pair
        answers).
        """
        worst = 0
        crossbars = {v for v in self.graph.nodes if self._is_crossbar(v)}
        endpoint_set = set(endpoints)
        for src in endpoints:
            allowed = (crossbars | endpoint_set) - self._failed_vertices
            view = nx.subgraph_view(self.graph,
                                    filter_node=lambda v: v in allowed or v == src,
                                    filter_edge=self._edge_alive)
            paths = nx.single_source_shortest_path(view, src)
            for dst in endpoints:
                if dst == src:
                    continue
                path = paths.get(dst)
                if path is None:
                    raise NoRouteError(f"no route from {src} to {dst}")
                hops = sum(1 for hop in path if self._is_crossbar(hop))
                worst = max(worst, hops)
        return worst

    def reachable_fraction(self, endpoints: List[Hashable]) -> float:
        """Fraction of ordered pairs connectable without a software relay."""
        total = reachable = 0
        for src in endpoints:
            for dst in endpoints:
                if src == dst:
                    continue
                total += 1
                try:
                    self.path(src, dst)
                    reachable += 1
                except NoRouteError:
                    pass
        return reachable / total if total else 1.0

    @staticmethod
    def _is_crossbar(key: Hashable) -> bool:
        return isinstance(key, tuple) and len(key) >= 1 and key[0] == "xbar"

    # -- failure reporting -------------------------------------------------

    def _edge_alive(self, u: Hashable, v: Hashable) -> bool:
        return ((u, v) not in self._failed_edges
                and (u, v) not in self._congested_edges)

    def mark_edge_failed(self, u: Hashable, v: Hashable) -> None:
        """Report a directed wiring edge as dead; future routes avoid it."""
        if not self.graph.has_edge(u, v):
            raise KeyError(f"no wiring edge {u} -> {v} to fail")
        self._failed_edges.add((u, v))
        self.invalidate()

    def mark_vertex_failed(self, vertex: Hashable) -> None:
        """Report a component (crossbar or endpoint) as dead."""
        if vertex not in self.graph:
            raise KeyError(f"no wiring vertex {vertex} to fail")
        self._failed_vertices.add(vertex)
        self.invalidate()

    def clear_failures(self) -> None:
        """Forget all reported failures (component repaired/replaced)."""
        self._failed_edges.clear()
        self._failed_vertices.clear()
        self.invalidate()

    def set_congested_edges(self,
                            edges: Set[Tuple[Hashable, Hashable]]) -> bool:
        """Replace the congested-edge set (soft failures).

        Invalidates the route/path memo only when the set actually
        changes, so an adaptive router re-asserting the same verdict
        between scans costs nothing.  Returns whether it changed.
        """
        edges = set(edges)
        if edges == self._congested_edges:
            return False
        self._congested_edges = edges
        self.invalidate()
        return True

    @property
    def congested_edges(self) -> Set[Tuple[Hashable, Hashable]]:
        return set(self._congested_edges)

    @property
    def failed_edges(self) -> Set[Tuple[Hashable, Hashable]]:
        return set(self._failed_edges)

    @property
    def failed_vertices(self) -> Set[Hashable]:
        return set(self._failed_vertices)

    def invalidate(self) -> None:
        """Drop cached routes (and bump :attr:`version`) so the next
        :meth:`route_bytes` recomputes against current failure state."""
        self._cache.clear()
        self._path_cache.clear()
        self.version += 1
