"""Tests for the EARTH fine-grain multithreading runtime."""

import pytest

from repro.earth.bench import overlap_experiment, remote_load_latency_ns
from repro.earth.fibers import Fiber, SyncSlot
from repro.earth.operations import (
    DataSync,
    LocalSignal,
    RemoteLoad,
    RemoteStore,
    Spawn,
)
from repro.earth.runtime import EarthConfig, EarthMachine


class TestFibersAndSlots:
    def test_sync_slot_counts_down(self):
        fiber = Fiber(lambda node, frame: [], label="f")
        slot = SyncSlot(3, fiber)
        assert slot.signal() is None
        assert slot.signal() is None
        assert slot.signal() is fiber
        assert slot.fired == 1

    def test_one_shot_slot_rejects_extra_signals(self):
        slot = SyncSlot(1, Fiber(lambda node, frame: []))
        slot.signal()
        with pytest.raises(RuntimeError, match="exhaustion"):
            slot.signal()

    def test_reusable_slot_reloads(self):
        fiber = Fiber(lambda node, frame: [])
        slot = SyncSlot(2, fiber, reset=True)
        slot.signal()
        assert slot.signal() is fiber
        slot.signal()
        assert slot.signal() is fiber
        assert slot.fired == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SyncSlot(0, Fiber(lambda node, frame: []))
        with pytest.raises(ValueError):
            Fiber(lambda node, frame: [], work_ns=-1.0)
        with pytest.raises(TypeError):
            Fiber("not callable")


class TestRuntimeSemantics:
    def test_local_fiber_runs(self):
        machine = EarthMachine()
        log = []
        machine.spawn(0, Fiber(lambda node, frame: log.append(node.sim.now),
                               label="probe"))
        machine.run()
        assert len(log) == 1

    def test_remote_spawn_runs_on_target_node(self):
        machine = EarthMachine()
        where = []

        def remote_body(node, frame):
            where.append(node.node_id)
            return []

        def root(node, frame):
            return [Spawn(node=5, fiber=Fiber(remote_body, label="remote"))]

        machine.spawn(0, Fiber(root, label="root"))
        machine.run()
        assert where == [5]
        assert machine.node(5).stats["fibers_run"] == 1

    def test_remote_store_and_load_roundtrip(self):
        machine = EarthMachine()
        frame = {}
        done = Fiber(lambda node, f: [], label="done")
        slot = SyncSlot(1, done)

        def root(node, f):
            return [
                RemoteStore(node=3, addr=0x10, value=1234),
                RemoteLoad(node=3, addr=0x10, frame=frame, key="v",
                           slot=slot),
            ]

        machine.spawn(0, Fiber(root, label="root"))
        machine.run()
        assert machine.node(3).memory[0x10] == 1234
        assert frame["v"] == 1234
        assert slot.fired == 1

    def test_data_sync_delivers_value_and_signal(self):
        machine = EarthMachine()
        child_frame = {}
        seen = []

        def consumer(node, frame):
            seen.append(frame["input"])
            return []

        consumer_fiber = Fiber(consumer, frame=child_frame, label="consumer")
        slot = SyncSlot(1, consumer_fiber)

        def producer(node, frame):
            return [DataSync(node=2, frame=child_frame, key="input",
                             value=77, slot=slot)]

        # The consumer's slot lives on node 2: spawn the producer elsewhere.
        machine.spawn(6, Fiber(producer, label="producer"))
        machine.run()
        assert seen == [77]

    def test_local_signal_short_circuits_network(self):
        machine = EarthMachine()
        ran = []
        fiber = Fiber(lambda node, frame: ran.append(True))
        slot = SyncSlot(1, fiber)
        machine.spawn(0, Fiber(lambda node, frame: [LocalSignal(slot)]))
        machine.run()
        assert ran == [True]
        assert machine.node(0).stats["remote_ops"] == 0

    def test_fan_in_sync(self):
        """N children on N nodes each DataSync one value into the parent."""
        machine = EarthMachine()
        parent_frame = {}
        results = []

        def parent_body(node, frame):
            results.append(sum(frame[f"c{i}"] for i in range(4)))
            return []

        parent = Fiber(parent_body, frame=parent_frame, label="parent")
        slot = SyncSlot(4, parent)

        def make_child(i):
            def body(node, frame):
                return [DataSync(node=0, frame=parent_frame, key=f"c{i}",
                                 value=i * i, slot=slot)]
            return Fiber(body, label=f"child{i}")

        def root(node, frame):
            return [Spawn(node=i + 1, fiber=make_child(i)) for i in range(4)]

        machine.spawn(0, Fiber(root, label="root"))
        machine.run()
        assert results == [0 + 1 + 4 + 9]


class TestPerformanceProperties:
    def test_remote_load_latency_in_microseconds(self):
        latency = remote_load_latency_ns()
        assert 2000.0 < latency < 6000.0

    def test_split_phase_overlap_beats_blocking(self):
        result = overlap_experiment(count=12)
        assert result.overlap_factor > 2.0
        assert result.split_phase_ns < result.blocking_ns

    def test_overlap_grows_with_outstanding_count(self):
        small = overlap_experiment(count=4)
        large = overlap_experiment(count=16)
        assert large.overlap_factor > small.overlap_factor

    def test_earth_op_cheaper_than_mpi_send(self):
        """EARTH's slot-addressed active messages skip tag matching; the
        remote-load round half must be cheaper than an MPI-style one-way."""
        from repro.msg.api import build_cluster_world
        _, world = build_cluster_world()
        mpi_one_way = world.one_way_latency_ns(0, 1, 16, reps=2)
        earth_half_round = remote_load_latency_ns() / 2.0
        assert earth_half_round < mpi_one_way


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EarthConfig(fiber_dispatch_ns=-1.0)

    def test_machine_requires_sim_with_world(self):
        from repro.msg.api import build_cluster_world
        sim, world = build_cluster_world()
        with pytest.raises(ValueError):
            EarthMachine(world=world)
        machine = EarthMachine(world=world, sim=sim)
        assert len(machine.nodes) == 8
