"""Property-based tests on FIFOs, CRC and network delivery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msg.api import build_cluster_world
from repro.network.link import ByteFifo
from repro.network.message import Flit, FlitKind
from repro.ni.crc import crc32
from repro.sim.engine import Simulator


@given(sizes=st.lists(st.integers(min_value=1, max_value=8),
                      min_size=1, max_size=100),
       capacity=st.integers(min_value=8, max_value=64))
@settings(max_examples=60, deadline=None)
def test_byte_fifo_conserves_flits_and_order(sizes, capacity):
    """Everything put into a FIFO comes out, once, in order."""
    sim = Simulator()
    fifo = ByteFifo(sim, capacity)
    flits = [Flit(FlitKind.DATA, size, 1, seq=i)
             for i, size in enumerate(sizes)]
    received = []

    def producer():
        for flit in flits:
            yield fifo.put(flit)

    def consumer():
        for _ in flits:
            flit = yield fifo.get()
            received.append(flit)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert [f.seq for f in received] == list(range(len(sizes)))
    assert fifo.level_bytes == 0
    assert fifo.total_bytes_in == fifo.total_bytes_out == sum(sizes)


@given(data=st.binary(max_size=200))
@settings(max_examples=100, deadline=None)
def test_crc_matches_zlib(data):
    import zlib
    assert crc32(data) == zlib.crc32(data)


@given(data=st.binary(min_size=1, max_size=64),
       bit=st.integers(min_value=0))
@settings(max_examples=100, deadline=None)
def test_crc_detects_any_single_bit_flip(data, bit):
    corrupted = bytearray(data)
    index = bit % (len(data) * 8)
    corrupted[index // 8] ^= 1 << (index % 8)
    assert crc32(bytes(corrupted)) != crc32(data)


@given(pairs=st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=7),
              st.integers(min_value=0, max_value=512)),
    min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_network_delivers_every_message_exactly_once(pairs):
    """Random (src, dst, size) traffic on the cluster: every message sent
    arrives complete, exactly once, with its payload intact."""
    pairs = [(s, d, n) for s, d, n in pairs if s != d]
    if not pairs:
        return
    sim, world = build_cluster_world()
    receive_counts = {}
    for dst in {d for _, d, _ in pairs}:
        receive_counts[dst] = sum(1 for _, d, _ in pairs if d == dst)

    received = []

    def receiver(node, count):
        for _ in range(count):
            message = yield world.recv(node)
            received.append(message)

    receiver_procs = [sim.process(receiver(node, count))
                      for node, count in receive_counts.items()]

    def sender():
        for src, dst, nbytes in pairs:
            world.send(src, dst, nbytes)
            yield sim.timeout(10.0)

    sim.process(sender())
    sim.run()
    assert all(p.finished for p in receiver_procs)
    assert len(received) == len(pairs)
    got = sorted((m.source, m.dest, m.payload_bytes) for m in received)
    assert got == sorted(pairs)
