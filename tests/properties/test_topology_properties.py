"""Property-based tests on topology generators and their route bounds.

The headline property is the paper's: a connection in a manna-family
machine crosses *at most three crossbars*, whatever the cluster count or
cluster size.  The other generators get the analogous check against
their documented :func:`diameter_bound_crossbars`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.routing import RouteTable
from repro.network.topo import (
    TopologySpec,
    build_graph,
    diameter_bound_crossbars,
)
from repro.network.topology import node_key


def _sampled_worst_crossbars(spec, plane=0, sample=4):
    """Worst crossbars-on-route over a deterministic endpoint sample."""
    graph = build_graph(spec)
    routes = RouteTable(graph)
    nodes = sorted(k[1] for k in graph.nodes if k[0] == "node")
    picks = sorted({nodes[0], nodes[len(nodes) // 3],
                    nodes[2 * len(nodes) // 3], nodes[-1]})[:sample]
    worst = 0
    for a in picks:
        for b in picks:
            if a != b:
                worst = max(worst, routes.crossbars_on_path(
                    node_key(a, plane), node_key(b, plane)))
    return worst


@given(clusters=st.integers(min_value=2, max_value=14),
       npc=st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_manna_family_routes_at_most_three_crossbars(clusters, npc):
    """The paper's claim holds across the whole manna family, not just
    the 256-processor build: cluster -> spine -> cluster and no more."""
    spec = TopologySpec("manna", {"clusters": clusters,
                                  "nodes_per_cluster": npc})
    assert diameter_bound_crossbars(spec) == 3
    for plane in (0, 1):
        assert _sampled_worst_crossbars(spec, plane=plane) <= 3


@given(levels=st.integers(min_value=1, max_value=3),
       arity=st.integers(min_value=2, max_value=4),
       npl=st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_xbar_tree_within_documented_bound(levels, arity, npl):
    spec = TopologySpec("xbar_tree", {"levels": levels, "arity": arity,
                                      "nodes_per_leaf": npl})
    assert _sampled_worst_crossbars(spec) <= 2 * levels - 1


@given(d=st.integers(min_value=1, max_value=6),
       npr=st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_hypercube_within_documented_bound(d, npr):
    spec = TopologySpec("hypercube", {"dimensions": d,
                                      "nodes_per_router": npr})
    assert _sampled_worst_crossbars(spec) <= d + 1


@given(dims=st.lists(st.integers(min_value=2, max_value=5),
                     min_size=2, max_size=3),
       npr=st.integers(min_value=1, max_value=2))
@settings(max_examples=20, deadline=None)
def test_torus_within_documented_bound(dims, npr):
    spec = TopologySpec("torus", {"dims": dims, "nodes_per_router": npr})
    assert _sampled_worst_crossbars(spec) <= 1 + sum(d // 2 for d in dims)


@given(k=st.sampled_from([2, 4, 6]),
       npe=st.integers(min_value=1, max_value=3))
@settings(max_examples=12, deadline=None)
def test_fat_tree_within_documented_bound(k, npe):
    # nodes_per_edge is capped at k/2 down-ports per edge switch.
    spec = TopologySpec("fat_tree", {"k": k,
                                     "nodes_per_edge": min(npe, k // 2)})
    assert _sampled_worst_crossbars(spec) <= 5


@given(clusters=st.integers(min_value=2, max_value=8),
       npc=st.integers(min_value=1, max_value=8))
@settings(max_examples=15, deadline=None)
def test_manna_blueprint_round_trips_through_json(clusters, npc):
    """Spec identity (and hence cache fingerprints) survives JSON."""
    spec = TopologySpec("manna", {"clusters": clusters,
                                  "nodes_per_cluster": npc})
    again = TopologySpec.from_json(spec.to_json())
    assert again == spec
    assert hash(again) == hash(spec)
