"""Property-based tests on the cache and TLB data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import AccessType, Cache, CacheGeometry, MESIState
from repro.memory.tlb import Tlb, TlbConfig

geometries = st.sampled_from([
    CacheGeometry(512, 32, 1),
    CacheGeometry(1024, 64, 2),
    CacheGeometry(2048, 32, 4),
    CacheGeometry(4096, 64, 8),
])

accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 16),
              st.sampled_from([AccessType.READ, AccessType.WRITE])),
    min_size=1, max_size=300)


@given(geometry=geometries, trace=accesses)
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity(geometry, trace):
    cache = Cache(geometry)
    for addr, kind in trace:
        cache.access(addr, kind)
        assert cache.occupancy() <= geometry.num_lines


@given(geometry=geometries, trace=accesses)
@settings(max_examples=60, deadline=None)
def test_set_occupancy_never_exceeds_ways(geometry, trace):
    cache = Cache(geometry)
    for addr, kind in trace:
        cache.access(addr, kind)
    for line_set in cache._sets:
        assert len(line_set) <= geometry.associativity


@given(geometry=geometries, trace=accesses)
@settings(max_examples=60, deadline=None)
def test_access_after_access_hits(geometry, trace):
    """Immediate re-access of the same address always hits (LRU safety)."""
    cache = Cache(geometry)
    for addr, kind in trace:
        cache.access(addr, kind)
        assert cache.access(addr, AccessType.READ).hit


@given(geometry=geometries, trace=accesses)
@settings(max_examples=60, deadline=None)
def test_writes_leave_modified_state(geometry, trace):
    cache = Cache(geometry)
    for addr, kind in trace:
        cache.access(addr, kind)
        if kind == AccessType.WRITE:
            assert cache.state_of(addr) == MESIState.MODIFIED


@given(geometry=geometries, trace=accesses)
@settings(max_examples=60, deadline=None)
def test_stats_accounting_balances(geometry, trace):
    cache = Cache(geometry)
    for addr, kind in trace:
        cache.access(addr, kind)
    assert cache.access_count() == len(trace)
    hits = cache.stats["read_hit"] + cache.stats["write_hit"]
    assert hits + cache.miss_count() == len(trace)


@given(geometry=geometries, trace=accesses)
@settings(max_examples=60, deadline=None)
def test_evictions_plus_residents_equal_fills(geometry, trace):
    """Every miss fills a line; every filled line is resident or evicted."""
    cache = Cache(geometry)
    evictions = 0
    for addr, kind in trace:
        result = cache.access(addr, kind)
        if result.writeback is not None or result.evicted is not None:
            evictions += 1
    assert cache.miss_count() == evictions + cache.occupancy()


@given(trace=st.lists(st.integers(min_value=0, max_value=1 << 20),
                      min_size=1, max_size=300),
       entries=st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_tlb_occupancy_bounded_and_rereference_hits(trace, entries):
    tlb = Tlb(TlbConfig(entries=entries, page_bytes=4096))
    for addr in trace:
        tlb.access(addr)
        assert tlb.occupancy() <= entries
        assert tlb.access(addr)   # immediate re-reference always hits
