"""Property-based tests on wormhole routing and route computation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msg.api import build_cluster_world
from repro.network.message import FlitKind
from repro.network.routing import RouteTable
from repro.network.topology import build_power_manna_256, node_key
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


@given(payloads=st.lists(st.integers(min_value=0, max_value=256),
                         min_size=2, max_size=5),
       senders=st.lists(st.integers(min_value=1, max_value=7),
                        min_size=2, max_size=5))
@settings(max_examples=25, deadline=None)
def test_wormhole_messages_never_interleave(payloads, senders):
    """Under arbitrary contention on one output port, each message's
    payload flits arrive contiguously (wormhole = circuit until close)."""
    senders = senders[:len(payloads)]
    payloads = payloads[:len(senders)]
    sim, world = build_cluster_world()
    target = 0

    arrived = []
    original_apply = world.endpoint(target).driver

    def recorder():
        fifo = world.fabric.attachment(target, 0).rx_fifo
        while True:
            flit = yield fifo.get()
            arrived.append(flit)

    # Replace the driver's receive with a raw recorder on the rx FIFO.
    sim.process(recorder())

    for sender, nbytes in zip(senders, payloads):
        message = world.make_message(sender, target, nbytes)
        sim.process(world.endpoint(sender).driver.send_message(message))
    sim.run()

    # Partition arrivals by message id; each message's flits contiguous.
    ids_in_order = [f.message_id for f in arrived]
    seen = []
    for mid in ids_in_order:
        if not seen or seen[-1] != mid:
            seen.append(mid)
    assert len(seen) == len(set(seen)), (
        f"message flits interleaved: {ids_in_order}")
    # And every message fully arrived (close flit per message).
    closes = [f for f in arrived if f.kind == FlitKind.CLOSE]
    assert len(closes) == len(senders)


@given(pairs=st.lists(
    st.tuples(st.integers(min_value=0, max_value=127),
              st.integers(min_value=0, max_value=127)),
    min_size=1, max_size=10))
@settings(max_examples=10, deadline=None)
def test_route_length_equals_crossbars_on_path(pairs):
    sim = Simulator()
    fabric = build_power_manna_256(sim)
    table = RouteTable(fabric.graph)
    for src, dst in pairs:
        if src == dst:
            continue
        route = table.route_bytes(node_key(src, 0), node_key(dst, 0))
        hops = table.crossbars_on_path(node_key(src, 0), node_key(dst, 0))
        assert len(route) == hops
        assert 1 <= hops <= 3
        same_cluster = src // 8 == dst // 8
        assert hops == (1 if same_cluster else 3)


@given(src=st.integers(min_value=0, max_value=7),
       dst=st.integers(min_value=0, max_value=7),
       nbytes=st.integers(min_value=0, max_value=1024))
@settings(max_examples=30, deadline=None)
def test_any_message_delivered_with_exact_payload(src, dst, nbytes):
    if src == dst:
        return
    sim, world = build_cluster_world()
    recv = world.recv(dst)
    world.send(src, dst, nbytes)
    sim.run_until_complete(recv)
    message = recv.value
    assert message.payload_bytes == nbytes
    assert message.source == src and message.dest == dst
    assert message.delivered_at >= message.sent_at
