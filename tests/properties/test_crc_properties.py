"""Property-based tests for the link chip's CRC-32.

The fault-injection framework leans on two CRC properties: a single bit
flip anywhere in a message is always detected (so the receiver's discard
path fires for every injected corruption), and the incremental fold the
hardware performs per word equals the one-shot checksum regardless of
how the stream is chunked.
"""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ni.crc import crc32, crc32_incremental


@given(data=st.binary(min_size=0, max_size=256))
@settings(max_examples=100, deadline=None)
def test_matches_zlib(data):
    assert crc32(data) == zlib.crc32(data)


@given(data=st.binary(min_size=1, max_size=128), bit=st.integers(min_value=0))
@settings(max_examples=100, deadline=None)
def test_single_bit_flip_always_detected(data, bit):
    """CRC-32 detects every single-bit error (its minimum distance is
    at least 2 for any length), so a flipped bit can never alias."""
    bit %= len(data) * 8
    flipped = bytearray(data)
    flipped[bit // 8] ^= 1 << (bit % 8)
    assert crc32(bytes(flipped)) != crc32(data)


@given(data=st.binary(min_size=0, max_size=256),
       cuts=st.lists(st.integers(min_value=0, max_value=256), max_size=8))
@settings(max_examples=100, deadline=None)
def test_incremental_equals_one_shot_over_any_chunking(data, cuts):
    bounds = sorted({min(c, len(data)) for c in cuts} | {0, len(data)})
    chunks = [data[a:b] for a, b in zip(bounds, bounds[1:])]
    assert b"".join(chunks) == data
    assert crc32_incremental(chunks) == crc32(data)


@given(data=st.binary(min_size=0, max_size=64))
@settings(max_examples=50, deadline=None)
def test_word_at_a_time_fold_matches(data):
    """Folding word-by-word — how the hardware streams the FIFO — is
    just one particular chunking."""
    words = [data[i:i + 4] for i in range(0, len(data), 4)]
    assert crc32_incremental(words) == crc32(data)
