"""Property-based tests on the MESI protocol: safety under random traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import AccessType, Cache, CacheGeometry, MESIState
from repro.memory.mesi import CoherenceDomain

traffic = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),          # cpu
              st.integers(min_value=0, max_value=63),         # line index
              st.sampled_from([AccessType.READ, AccessType.WRITE])),
    min_size=1, max_size=400)


def make_domain():
    return CoherenceDomain([Cache(CacheGeometry(2048, 64, 2), name=f"c{i}")
                            for i in range(4)])


@given(ops=traffic)
@settings(max_examples=80, deadline=None)
def test_single_writer_invariant(ops):
    """At most one M/E copy of any line, never alongside SHARED copies."""
    domain = make_domain()
    for cpu, line, kind in ops:
        domain.access(cpu, line * 64, kind)
        domain.check_all_coherent()


@given(ops=traffic)
@settings(max_examples=80, deadline=None)
def test_writer_always_ends_modified(ops):
    domain = make_domain()
    for cpu, line, kind in ops:
        outcome = domain.access(cpu, line * 64, kind)
        if kind == AccessType.WRITE:
            assert outcome.final_state == MESIState.MODIFIED
            others = [domain.caches[i].state_of(line * 64)
                      for i in range(4) if i != cpu]
            assert all(s == MESIState.INVALID for s in others)


@given(ops=traffic)
@settings(max_examples=80, deadline=None)
def test_reader_state_is_consistent_with_sharers(ops):
    domain = make_domain()
    for cpu, line, kind in ops:
        outcome = domain.access(cpu, line * 64, kind)
        if kind == AccessType.READ:
            # A read never leaves the line invalid locally, and an owned
            # (E/M) result implies no other cache holds a copy.
            assert outcome.final_state != MESIState.INVALID
            if outcome.final_state in (MESIState.EXCLUSIVE,
                                       MESIState.MODIFIED):
                others = [domain.caches[i].state_of(line * 64)
                          for i in range(4) if i != cpu]
                assert all(s == MESIState.INVALID for s in others)


@given(ops=traffic)
@settings(max_examples=50, deadline=None)
def test_writebacks_only_for_previously_written_lines(ops):
    """A dirty flush can only happen for a line some CPU wrote earlier."""
    domain = make_domain()
    written = set()
    for cpu, line, kind in ops:
        addr = line * 64
        outcome = domain.access(cpu, addr, kind)
        for wb in outcome.writebacks:
            assert wb in written
        if kind == AccessType.WRITE:
            written.add(addr)
