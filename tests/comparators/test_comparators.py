"""Tests that the comparator models reproduce their calibration anchors."""

import pytest

from repro.comparators.calibration import (
    BIP_CALIBRATION,
    FM_CALIBRATION,
    GM_CALIBRATION,
)
from repro.comparators.models import (
    all_comparators,
    bip_model,
    comparator,
    fm_model,
    gm_model,
)
from repro.ni.dma import DmaNicModel


def model_metric(model: DmaNicModel, metric: str, nbytes: int) -> float:
    if metric == "latency_us":
        return model.one_way_latency_ns(nbytes) / 1e3
    if metric == "gap_us":
        return model.gap_ns(nbytes) / 1e3
    if metric == "bandwidth_mb_s":
        return model.unidirectional_mb_s(nbytes)
    raise ValueError(metric)


@pytest.mark.parametrize("model_factory,anchors", [
    (bip_model, BIP_CALIBRATION),
    (fm_model, FM_CALIBRATION),
    (gm_model, GM_CALIBRATION),
])
def test_models_hit_their_anchors(model_factory, anchors):
    model = model_factory()
    for anchor in anchors:
        value = model_metric(model, anchor.metric, anchor.nbytes)
        assert value == pytest.approx(anchor.value, rel=anchor.tolerance), (
            f"{model.name} {anchor.metric}@{anchor.nbytes}B: model {value:.2f}"
            f" vs published {anchor.value} ({anchor.source})")


class TestPaperQuotedOrdering:
    """Section 5.2: 'PowerMANNA ... 2.75 us, whereas BIP takes 6.4 us and
    FM 9.2 us' — the comparators must keep that ordering among themselves
    and leave room for PowerMANNA below."""

    def test_short_message_latency_ordering(self):
        bip = bip_model().one_way_latency_ns(8)
        fm = fm_model().one_way_latency_ns(8)
        gm = gm_model().one_way_latency_ns(8)
        assert 2750.0 < bip < fm < gm

    def test_large_message_bandwidth_ordering(self):
        # Myrinet's PCI-limited ~126 MB/s beats the 60 MB/s link for bulk.
        assert bip_model().unidirectional_mb_s(65536) > 60.0
        assert fm_model().unidirectional_mb_s(65536) > 60.0

    def test_fm_pays_per_byte_software(self):
        assert fm_model().per_byte_software_ns > 0
        assert bip_model().per_byte_software_ns == 0


class TestRegistry:
    def test_lookup_by_name(self):
        assert comparator("bip").name == "BIP/Myrinet"
        assert comparator("FM").name == "FM/Myrinet"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            comparator("quadrics")

    def test_all_comparators(self):
        models = all_comparators()
        assert set(models) == {"bip", "fm", "gm"}

    def test_anchor_sources_cited(self):
        for anchors in (BIP_CALIBRATION, FM_CALIBRATION, GM_CALIBRATION):
            for anchor in anchors:
                assert anchor.source
