"""Tests for the application-level studies."""

import numpy as np
import pytest

from repro.apps import distributed_dot, run_stencil, serial_stencil


def default_rod(cells=128):
    rod = np.zeros(cells)
    rod[0] = 100.0
    rod[-1] = -40.0
    return rod


class TestStencilCorrectness:
    def test_matches_serial_reference(self):
        cells, iterations = 128, 12
        result = run_stencil(cells, iterations, ranks=8)
        reference = serial_stencil(default_rod(cells), iterations)
        np.testing.assert_allclose(result.solution, reference)

    def test_matches_serial_for_any_rank_count(self):
        cells, iterations = 96, 6
        reference = serial_stencil(default_rod(cells), iterations)
        for ranks in (2, 3, 4, 8):
            result = run_stencil(cells, iterations, ranks=ranks)
            np.testing.assert_allclose(result.solution, reference,
                                       err_msg=f"ranks={ranks}")

    def test_custom_initial_condition(self):
        cells = 64
        initial = np.sin(np.linspace(0, np.pi, cells)) * 10
        result = run_stencil(cells, 5, ranks=4, initial=initial)
        reference = serial_stencil(initial, 5)
        np.testing.assert_allclose(result.solution, reference)

    def test_uneven_decomposition(self):
        # 100 cells over 8 ranks: remainder cells on the front ranks.
        result = run_stencil(100, 4, ranks=8)
        reference = serial_stencil(default_rod(100), 4)
        np.testing.assert_allclose(result.solution, reference)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_stencil(10, 5, ranks=8)
        with pytest.raises(ValueError):
            run_stencil(128, 0, ranks=4)
        with pytest.raises(ValueError):
            run_stencil(128, 1, ranks=4, initial=np.zeros(5))


class TestStencilTiming:
    def test_timing_fields_consistent(self):
        result = run_stencil(256, 8, ranks=8)
        assert result.elapsed_ns > result.compute_ns > 0
        assert 0.0 < result.comm_fraction < 1.0

    def test_small_slabs_are_latency_bound(self):
        tiny = run_stencil(64, 8, ranks=8)
        assert tiny.comm_fraction > 0.8

    def test_large_slabs_shift_toward_compute(self):
        small = run_stencil(128, 6, ranks=8)
        large = run_stencil(8192, 6, ranks=8)
        assert large.comm_fraction < small.comm_fraction


class TestDotProduct:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=2048), rng.normal(size=2048)
        result = distributed_dot(x, y, ranks=8)
        assert result.value == pytest.approx(float(np.dot(x, y)), rel=1e-12)

    def test_various_rank_counts(self):
        x = np.arange(1000, dtype=float)
        y = 2.0 * np.ones(1000)
        expected = float(np.dot(x, y))
        for ranks in (2, 4, 8):
            result = distributed_dot(x, y, ranks=ranks)
            assert result.value == pytest.approx(expected)

    def test_reduction_time_grows_logarithmically(self):
        x = np.ones(64)
        two = distributed_dot(x, x, ranks=2).elapsed_ns
        eight = distributed_dot(x, x, ranks=8).elapsed_ns
        assert eight < 4 * two     # log scaling, not linear

    def test_validation(self):
        with pytest.raises(ValueError):
            distributed_dot(np.ones(4), np.ones(5))
        with pytest.raises(ValueError):
            distributed_dot(np.ones(4), np.ones(4), ranks=8)
