"""Tests for the fault engine: determinism, state, the FAULTS guard."""

from repro.faults import (
    FAULTS,
    FaultEngine,
    FaultPlan,
    FaultSpec,
    inject,
)


def draw_sequence(engine, site, n=64, kind="flit_drop", now=0.0):
    return [engine.fires(kind, site, now) is not None for _ in range(n)]


def make_plan(probability=0.3, **kwargs):
    return FaultPlan(seed=kwargs.pop("seed", 11), faults=[
        FaultSpec(kind="flit_drop", probability=probability, **kwargs)])


class TestDeterminism:
    def test_same_plan_same_draws(self):
        a = FaultEngine(make_plan())
        b = FaultEngine(make_plan())
        assert draw_sequence(a, "link.x") == draw_sequence(b, "link.x")

    def test_sites_have_independent_streams(self):
        """Interleaving queries for other sites must not perturb a site's
        own decision sequence — the order-independence the chaos CI job
        relies on."""
        alone = FaultEngine(make_plan())
        expected = draw_sequence(alone, "link.x")

        mixed = FaultEngine(make_plan())
        got = []
        for _ in range(64):
            mixed.fires("flit_drop", "link.other", 0.0)
            got.append(mixed.fires("flit_drop", "link.x", 0.0) is not None)
        assert got == expected

    def test_seed_changes_draws(self):
        a = FaultEngine(make_plan(seed=1))
        b = FaultEngine(make_plan(seed=2))
        assert draw_sequence(a, "link.x") != draw_sequence(b, "link.x")


class TestGating:
    def test_unmatched_site_never_fires(self):
        engine = FaultEngine(make_plan(probability=1.0, site="*spine*"))
        assert engine.fires("flit_drop", "cluster.link", 0.0) is None
        assert engine.fires("flit_drop", "spine0.link", 0.0) is not None

    def test_window_gates_firing(self):
        engine = FaultEngine(make_plan(probability=1.0, start_ns=100.0,
                                       end_ns=200.0))
        assert engine.fires("flit_drop", "l", 50.0) is None
        assert engine.fires("flit_drop", "l", 150.0) is not None
        assert engine.fires("flit_drop", "l", 250.0) is None

    def test_unused_kind_is_cheap_none(self):
        engine = FaultEngine(make_plan())
        assert engine.fires("node_hang", "cpu0", 0.0) is None

    def test_stall_ns(self):
        plan = FaultPlan(seed=1, faults=[
            FaultSpec(kind="xcvr_stall", probability=1.0, stall_ns=123.0)])
        engine = FaultEngine(plan)
        assert engine.stall_ns("xcvr_stall", "x", 0.0) == 123.0
        assert engine.stall_ns("node_hang", "x", 0.0) == 0.0


class TestCrossLayerState:
    def test_corruption_consumed_once(self):
        engine = FaultEngine(FaultPlan())
        engine.mark_corrupt(42)
        assert engine.consume_corrupt(42)
        assert not engine.consume_corrupt(42)
        assert not engine.consume_corrupt(7)

    def test_node_crash_state(self):
        engine = FaultEngine(FaultPlan())
        assert not engine.node_down(3)
        engine.crash_node(3, 1_000.0)
        assert engine.node_down(3)
        assert engine.crashed_nodes() == {3: 1_000.0}
        engine.crash_node(3, 2_000.0)  # idempotent, keeps first time
        assert engine.crashed_nodes() == {3: 1_000.0}

    def test_stats_count_fires(self):
        engine = FaultEngine(make_plan(probability=1.0))
        engine.fires("flit_drop", "l", 0.0)
        engine.fires("flit_drop", "l", 0.0)
        assert engine.stats["flit_drop"] == 2


class TestInjectGuard:
    def test_disabled_by_default(self):
        assert not FAULTS.enabled
        assert FAULTS.engine is None

    def test_inject_scopes_activation(self):
        plan = make_plan()
        with inject(plan) as engine:
            assert FAULTS.enabled
            assert FAULTS.engine is engine
            assert isinstance(engine, FaultEngine)
        assert not FAULTS.enabled
        assert FAULTS.engine is None

    def test_inject_accepts_engine_and_nests(self):
        outer = FaultEngine(make_plan(seed=1))
        inner = FaultEngine(make_plan(seed=2))
        with inject(outer):
            with inject(inner):
                assert FAULTS.engine is inner
            assert FAULTS.engine is outer
        assert not FAULTS.enabled

    def test_restores_even_on_error(self):
        try:
            with inject(make_plan()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not FAULTS.enabled
