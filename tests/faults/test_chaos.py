"""End-to-end chaos harness tests: injection, recovery, rerouting."""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.faults.chaos import (
    build_chaos_world,
    default_flows,
    format_report,
    run_chaos,
)
from repro.network.routing import NoRouteError
from repro.network.topology import node_key


class TestHarnessBasics:
    def test_fault_free_run_delivers_everything(self):
        report = run_chaos(FaultPlan(seed=1), topology="cluster",
                           flows=4, messages=4, nbytes=512)
        assert report.delivered == report.total_messages == 16
        assert report.undelivered == 0
        assert report.goodput_mb_s > 0
        assert report.fault_stats == {}
        assert report.channel_stats.get("retransmissions", 0) == 0

    def test_stopwait_protocol_path(self):
        report = run_chaos(FaultPlan(seed=1), topology="cluster",
                           protocol="stopwait", flows=2, messages=4)
        assert report.protocol == "stopwait"
        assert report.undelivered == 0

    def test_unknown_topology_and_protocol(self):
        with pytest.raises(ValueError):
            run_chaos(FaultPlan(), topology="moebius")
        with pytest.raises(ValueError):
            run_chaos(FaultPlan(), protocol="carrier-pigeon")

    def test_flow_fidelity_topology_rejected(self):
        # Fault injection breaks simulated components; the flow tier
        # does not build any, so chaos must refuse it up front.
        with pytest.raises(ValueError, match="flit fidelity"):
            run_chaos(FaultPlan(),
                      topology="hypercube:dimensions=3,fidelity=flow")

    def test_spec_expression_topology_builds(self):
        report = run_chaos(FaultPlan(seed=2), topology="torus:dims=2x2",
                           flows=2, messages=2)
        assert report.topology == "torus:dims=2x2"
        assert report.delivered > 0

    def test_report_round_trips_to_json(self):
        report = run_chaos(FaultPlan(seed=2), flows=2, messages=2)
        payload = report.to_dict()
        assert payload["delivered"] == report.delivered
        assert format_report(report).startswith("chaos run:")

    def test_default_flows_are_reachable(self):
        for topology in ("cluster", "manna", "grid"):
            _, world = build_chaos_world(topology)
            pairs = default_flows(world, 6)
            assert len(pairs) == 6
            for src, dst in pairs:
                world.routes.path(node_key(src, world.plane),
                                  node_key(dst, world.plane))


class TestDeterminism:
    def test_same_plan_same_seed_identical_report(self):
        plan = FaultPlan(seed=7, faults=[
            FaultSpec(kind="link_corrupt", probability=0.05),
            FaultSpec(kind="flit_drop", probability=0.001),
        ])
        first = run_chaos(plan, flows=4, messages=4)
        second = run_chaos(plan, flows=4, messages=4)
        assert first.to_dict() == second.to_dict()

    def test_seed_changes_outcome(self):
        def run(seed):
            plan = FaultPlan(seed=seed, faults=[
                FaultSpec(kind="link_corrupt", probability=0.2)])
            return run_chaos(plan, flows=2, messages=6).to_dict()

        assert run(1) != run(2)


class TestStochasticRecovery:
    def test_corruption_recovers_with_zero_undelivered(self):
        plan = FaultPlan(seed=7, faults=[
            FaultSpec(kind="link_corrupt", probability=0.1)])
        report = run_chaos(plan, flows=4, messages=4)
        assert report.undelivered == 0
        assert report.channel_stats["retransmissions"] > 0
        assert report.fault_stats["link_corrupt"] > 0

    def test_transceiver_stalls_slow_but_deliver(self):
        # Transceivers only sit on inter-crossbar cables, so this needs
        # the multi-crossbar manna topology (the cluster has none).
        clean = run_chaos(FaultPlan(seed=5), topology="manna",
                          flows=2, messages=4)
        plan = FaultPlan(seed=5, faults=[
            FaultSpec(kind="xcvr_stall", probability=0.2,
                      stall_ns=20_000.0)])
        stalled = run_chaos(plan, topology="manna", flows=2, messages=4)
        assert stalled.undelivered == 0
        assert stalled.fault_stats["xcvr_stall"] > 0
        assert stalled.duration_ns > clean.duration_ns


class TestScheduledFaults:
    def test_port_kill_reroutes_and_completes(self):
        """Killing a spine-facing crossbar port mid-run must reroute the
        affected flows over a surviving spine and still deliver all."""
        plan = FaultPlan(seed=3, faults=[
            FaultSpec(kind="xbar_port_down", site="c0.plane0", port=4,
                      at_ns=100_000.0)])
        report = run_chaos(plan, topology="manna", flows=4, messages=6)
        assert report.undelivered == 0
        assert report.channel_stats["reroutes"] > 0
        assert report.applied == [
            ("xbar_port_down", "c0.plane0", 4, 100_000.0)]

    def test_node_crash_fails_its_flows_fast(self):
        """A crashed destination cannot be delivered to; its flows must
        fail with NoRouteError-driven DeliveryErrors, not hang."""
        _, world = build_chaos_world("cluster")
        pairs = default_flows(world, 4)
        victim = pairs[0][1]
        plan = FaultPlan(seed=9, faults=[
            FaultSpec(kind="node_crash", node=victim, at_ns=0.0)])
        report = run_chaos(plan, topology="cluster", flows=4, messages=2)
        assert report.undelivered > 0
        assert report.failures
        # Flows not involving the victim still complete.
        untouched = sum(1 for src, dst in report.flows
                        if victim not in (src, dst))
        assert report.delivered >= untouched * report.messages_per_flow

    def test_bad_site_raises(self):
        plan = FaultPlan(seed=1, faults=[
            FaultSpec(kind="xbar_port_down", site="nonesuch", port=0,
                      at_ns=10.0)])
        with pytest.raises(KeyError):
            run_chaos(plan, flows=1, messages=1)


class TestGridTopology:
    def test_grid_plane_skips_cross_row_pairs(self):
        _, world = build_chaos_world("grid")
        nodes = world.fabric.node_ids()
        with pytest.raises(NoRouteError):
            # Row 0 and row 1 share no plane-0 crossbar in the 2x2 grid.
            world.routes.path(node_key(nodes[0], world.plane),
                              node_key(nodes[-1], world.plane))
        report = run_chaos(FaultPlan(seed=4), topology="grid",
                           flows=4, messages=2)
        assert report.undelivered == 0
