"""Combined in-sim faults: ack-path loss during a scheduled reroute.

PR 2 exercised ``ack_error_rate`` (the protocol-level reverse-path
injector) and ``xbar_port_down`` (a scheduled topology fault) each on
their own.  Driving them *together* is the interesting case: while the
port kill forces flows onto longer spine routes, lost acks keep firing
retransmission timeouts, so the sender's RTT estimator must obey Karn's
rule (never sample a retransmitted exchange) right when the true RTT is
shifting under it.  Delivery must still be total, and the run must stay
bit-reproducible."""

from repro.faults import FaultPlan, FaultSpec
from repro.faults.chaos import run_chaos

PORT_KILL = dict(kind="xbar_port_down", site="c0.plane0", port=4,
                 at_ns=100_000.0)

#: High enough that Go-back-N's cumulative acks cannot paper over the
#: losses — below ~0.3 a later clean ack retires the corrupted one before
#: the sender's timer fires and no extra retransmission ever happens.
ACK_LOSS = 0.35


def _run(ack_error_rate=ACK_LOSS, seed=3):
    plan = FaultPlan(seed=seed, faults=[FaultSpec(**PORT_KILL)])
    return run_chaos(plan, topology="manna", protocol="sliding",
                     flows=4, messages=6, ack_error_rate=ack_error_rate)


class TestCombinedFaults:
    def test_delivers_everything_through_both_faults(self):
        report = _run()
        assert report.undelivered == 0
        assert report.delivered == report.total_messages == 24
        assert report.applied == [
            ("xbar_port_down", "c0.plane0", 4, 100_000.0)]
        # Both failure modes left their fingerprints on the channel.
        assert report.channel_stats["reroutes"] > 0
        assert report.channel_stats["acks_corrupted"] > 0
        assert report.channel_stats["retransmissions"] > 0
        assert report.channel_stats["timeouts"] > 0

    def test_ack_loss_adds_recovery_work_beyond_the_reroute(self):
        reroute_only = _run(ack_error_rate=None)
        combined = _run()
        assert combined.undelivered == reroute_only.undelivered == 0
        # Lost acks force timeout-driven Go-back-N resends on top of the
        # reroute's, and the receiver sees the duplicates they create.
        assert (combined.channel_stats["retransmissions"]
                > reroute_only.channel_stats.get("retransmissions", 0))
        assert (combined.channel_stats["timeouts"]
                > reroute_only.channel_stats.get("timeouts", 0))
        assert combined.channel_stats.get("duplicates", 0) > 0
        assert combined.duration_ns > reroute_only.duration_ns

    def test_same_seed_is_bit_identical(self):
        assert _run().to_dict() == _run().to_dict()

    def test_seed_changes_the_recovery_trajectory(self):
        assert _run(seed=3).to_dict() != _run(seed=4).to_dict()


class TestAckRateDefaults:
    def test_none_mirrors_error_rate(self):
        from repro.msg.reliable import ReliableConfig
        from repro.msg.sliding_window import SlidingWindowConfig

        for cls in (SlidingWindowConfig, ReliableConfig):
            assert cls(error_rate=0.1).effective_ack_error_rate == 0.1
            assert cls(error_rate=0.1,
                       ack_error_rate=0.3).effective_ack_error_rate == 0.3
