"""Tests for fault plans: validation, serialisation, site matching."""

import math

import pytest

from repro.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    uniform_error_plan,
)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="gamma_ray")

    def test_probability_bounds(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="link_corrupt", probability=1.5)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="flit_drop", probability=-0.1)

    def test_window_must_be_ordered(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="link_corrupt", probability=0.1,
                      start_ns=100.0, end_ns=50.0)

    def test_scheduled_needs_at_ns(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="node_crash", node=3)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="xbar_port_down", port=1, at_ns=-5.0)

    def test_port_and_node_required(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="xbar_port_down", at_ns=10.0)
        with pytest.raises(FaultPlanError):
            FaultSpec(kind="node_crash", at_ns=10.0)

    def test_site_glob_matching(self):
        spec = FaultSpec(kind="xcvr_stall", site="*row0*", probability=0.5)
        assert spec.matches("xcvr.row0.p3")
        assert not spec.matches("xcvr.row1.p3")

    def test_active_window(self):
        spec = FaultSpec(kind="link_corrupt", probability=0.1,
                         start_ns=100.0, end_ns=200.0)
        assert not spec.active(50.0)
        assert spec.active(100.0)
        assert not spec.active(200.0)
        always = FaultSpec(kind="link_corrupt", probability=0.1)
        assert always.active(0.0) and always.end_ns == math.inf


class TestPlanSerialisation:
    def plan(self):
        return FaultPlan(seed=42, faults=[
            FaultSpec(kind="link_corrupt", site="*spine*", probability=0.02,
                      start_ns=1000.0, end_ns=2e6),
            FaultSpec(kind="xcvr_stall", probability=0.05, stall_ns=7_500.0),
            FaultSpec(kind="xbar_port_down", site="c0.plane0", port=4,
                      at_ns=100_000.0),
            FaultSpec(kind="node_crash", node=5, at_ns=200_000.0),
        ])

    def test_dict_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_stochastic_scheduled_split(self):
        plan = self.plan()
        assert [s.kind for s in plan.stochastic] == ["link_corrupt",
                                                     "xcvr_stall"]
        assert [s.kind for s in plan.scheduled] == ["xbar_port_down",
                                                    "node_crash"]

    def test_with_seed(self):
        plan = self.plan()
        reseeded = plan.with_seed(7)
        assert reseeded.seed == 7
        assert reseeded.faults == plan.faults

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "faults": [
                {"kind": "flit_drop", "probability": 0.1, "severity": 9}]})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "extra": True})

    def test_bad_json_reported(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.load(str(path))


class TestUniformErrorPlan:
    def test_zero_rate_is_empty(self):
        assert uniform_error_plan(0.0, seed=3) == FaultPlan(seed=3)

    def test_positive_rate(self):
        plan = uniform_error_plan(0.07, seed=5, site="*fwd*")
        assert len(plan.faults) == 1
        spec = plan.faults[0]
        assert spec.kind == "link_corrupt"
        assert spec.probability == 0.07
        assert spec.matches("cable.fwd")
