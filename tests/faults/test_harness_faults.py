"""Harness fault plans: validation, matching, env loading, corruption."""

import json

import pytest

from repro.faults import (
    HARNESS_FAULTS_ENV,
    HARNESS_KINDS,
    HarnessFaultError,
    HarnessFaultPlan,
    HarnessFaultSpec,
    load_harness_plan,
)
from repro.faults.harness import corrupt_result


class TestSpecValidation:
    def test_known_kinds_construct(self):
        for kind in HARNESS_KINDS:
            HarnessFaultSpec(kind=kind)

    def test_unknown_kind_raises(self):
        with pytest.raises(HarnessFaultError):
            HarnessFaultSpec(kind="meteor_strike")

    def test_negative_hang_raises(self):
        with pytest.raises(HarnessFaultError):
            HarnessFaultSpec(kind="worker_hang", hang_s=-1.0)

    def test_negative_after_points_raises(self):
        with pytest.raises(HarnessFaultError):
            HarnessFaultSpec(kind="run_interrupt", after_points=-1)

    def test_unknown_field_raises(self):
        with pytest.raises(HarnessFaultError):
            HarnessFaultSpec.from_dict({"kind": "worker_crash", "pont": 3})

    def test_missing_kind_raises(self):
        with pytest.raises(HarnessFaultError):
            HarnessFaultSpec.from_dict({"point": 3})


class TestMatching:
    def test_default_attempt_hits_only_first_try(self):
        spec = HarnessFaultSpec(kind="worker_crash", point=1)
        assert spec.hits(1, 0)
        assert not spec.hits(1, 1)  # the retry succeeds
        assert not spec.hits(0, 0)

    def test_wildcard_point_hits_every_point(self):
        spec = HarnessFaultSpec(kind="worker_crash", point=None)
        assert spec.hits(0, 0) and spec.hits(7, 0)
        assert not spec.hits(0, 1)

    def test_wildcard_attempt_hits_every_attempt(self):
        spec = HarnessFaultSpec(kind="worker_crash", point=2, attempt=None)
        assert spec.hits(2, 0) and spec.hits(2, 5)

    def test_supervisor_kind_never_matches_workers(self):
        spec = HarnessFaultSpec(kind="run_interrupt", after_points=2)
        assert not spec.hits(0, 0)
        plan = HarnessFaultPlan(faults=[spec])
        assert plan.worker_faults(0, 0) == []
        assert plan.interrupt_after() == 2

    def test_interrupt_after_takes_the_minimum(self):
        plan = HarnessFaultPlan(faults=[
            HarnessFaultSpec(kind="run_interrupt", after_points=5),
            HarnessFaultSpec(kind="run_interrupt", after_points=2),
        ])
        assert plan.interrupt_after() == 2

    def test_no_interrupt_specs_means_none(self):
        assert HarnessFaultPlan().interrupt_after() is None


class TestPlanSerialization:
    def test_round_trips(self):
        plan = HarnessFaultPlan(faults=[
            HarnessFaultSpec(kind="worker_crash", point=1),
            HarnessFaultSpec(kind="worker_hang", point=2, hang_s=60.0),
            HarnessFaultSpec(kind="result_corrupt", point=0, attempt=None),
            HarnessFaultSpec(kind="run_interrupt", after_points=3),
        ])
        again = HarnessFaultPlan.from_dict(json.loads(plan.to_json()))
        assert again == plan

    def test_unknown_plan_field_raises(self):
        with pytest.raises(HarnessFaultError):
            HarnessFaultPlan.from_dict({"faults": [], "retries": 2})

    def test_faults_must_be_a_list(self):
        with pytest.raises(HarnessFaultError):
            HarnessFaultPlan.from_dict({"faults": "worker_crash"})


class TestEnvLoading:
    def test_unset_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(HARNESS_FAULTS_ENV, raising=False)
        assert load_harness_plan() is None

    def test_inline_json(self, monkeypatch):
        monkeypatch.setenv(HARNESS_FAULTS_ENV, json.dumps(
            {"faults": [{"kind": "worker_crash", "point": 1}]}))
        plan = load_harness_plan()
        assert plan.faults[0].kind == "worker_crash"
        assert plan.faults[0].point == 1

    def test_file_path(self, monkeypatch, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(
            {"faults": [{"kind": "worker_hang", "hang_s": 5.0}]}))
        monkeypatch.setenv(HARNESS_FAULTS_ENV, str(path))
        plan = load_harness_plan()
        assert plan.faults[0].kind == "worker_hang"
        assert plan.faults[0].hang_s == 5.0

    def test_memoized_per_raw_value(self, monkeypatch):
        raw = json.dumps({"faults": [{"kind": "worker_crash"}]})
        monkeypatch.setenv(HARNESS_FAULTS_ENV, raw)
        assert load_harness_plan() is load_harness_plan()


class TestResultCorruption:
    def test_flips_the_first_byte_when_hit(self):
        plan = HarnessFaultPlan(faults=[
            HarnessFaultSpec(kind="result_corrupt", point=0)])
        blob = b"\x00rest"
        assert corrupt_result(plan, 0, 0, blob) == b"\xffrest"

    def test_untouched_when_no_spec_hits(self):
        plan = HarnessFaultPlan(faults=[
            HarnessFaultSpec(kind="result_corrupt", point=0)])
        blob = b"\x00rest"
        assert corrupt_result(plan, 1, 0, blob) == blob
        assert corrupt_result(plan, 0, 1, blob) == blob
        assert corrupt_result(None, 0, 0, blob) == blob
        assert corrupt_result(plan, 0, 0, b"") == b""
