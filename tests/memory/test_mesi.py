"""Tests for the MESI coherence protocol engine."""

import pytest

from repro.memory.cache import AccessType, Cache, CacheGeometry, MESIState
from repro.memory.mesi import BusOp, CoherenceDomain


def make_domain(cpus=2):
    caches = [Cache(CacheGeometry(4096, 64, 2), name=f"l2.{i}")
              for i in range(cpus)]
    return CoherenceDomain(caches)


ADDR = 0x4000


class TestReadSharing:
    def test_first_read_installs_exclusive(self):
        domain = make_domain()
        outcome = domain.access(0, ADDR, AccessType.READ)
        assert not outcome.hit_local
        assert outcome.bus_op == BusOp.READ
        assert outcome.final_state == MESIState.EXCLUSIVE

    def test_second_reader_shares_and_downgrades(self):
        domain = make_domain()
        domain.access(0, ADDR, AccessType.READ)
        outcome = domain.access(1, ADDR, AccessType.READ)
        assert outcome.final_state == MESIState.SHARED
        assert outcome.supplied_by == 0          # E line supplied c2c
        assert domain.caches[0].state_of(ADDR) == MESIState.SHARED

    def test_read_of_remote_modified_flushes(self):
        domain = make_domain()
        domain.access(0, ADDR, AccessType.WRITE)
        outcome = domain.access(1, ADDR, AccessType.READ)
        assert outcome.supplied_by == 0
        assert ADDR in outcome.writebacks
        assert domain.caches[0].state_of(ADDR) == MESIState.SHARED
        assert domain.caches[1].state_of(ADDR) == MESIState.SHARED

    def test_local_hit_needs_no_bus_op(self):
        domain = make_domain()
        domain.access(0, ADDR, AccessType.READ)
        outcome = domain.access(0, ADDR, AccessType.READ)
        assert outcome.hit_local
        assert outcome.bus_op is None


class TestWriteOwnership:
    def test_write_miss_is_rwitm(self):
        domain = make_domain()
        outcome = domain.access(0, ADDR, AccessType.WRITE)
        assert outcome.bus_op == BusOp.READ_EXCLUSIVE
        assert outcome.final_state == MESIState.MODIFIED

    def test_write_invalidates_sharers(self):
        domain = make_domain(cpus=3)
        domain.access(0, ADDR, AccessType.READ)
        domain.access(1, ADDR, AccessType.READ)
        outcome = domain.access(2, ADDR, AccessType.WRITE)
        assert set(outcome.invalidated) == {0, 1}
        assert domain.caches[0].state_of(ADDR) == MESIState.INVALID
        assert domain.caches[1].state_of(ADDR) == MESIState.INVALID
        assert domain.caches[2].state_of(ADDR) == MESIState.MODIFIED

    def test_upgrade_on_shared_write_hit(self):
        domain = make_domain()
        domain.access(0, ADDR, AccessType.READ)
        domain.access(1, ADDR, AccessType.READ)
        outcome = domain.access(0, ADDR, AccessType.WRITE)
        assert outcome.hit_local
        assert outcome.bus_op == BusOp.UPGRADE
        assert outcome.invalidated == (1,)
        assert outcome.final_state == MESIState.MODIFIED

    def test_write_to_remote_modified_transfers_ownership(self):
        domain = make_domain()
        domain.access(0, ADDR, AccessType.WRITE)
        outcome = domain.access(1, ADDR, AccessType.WRITE)
        assert outcome.supplied_by == 0
        assert ADDR in outcome.writebacks
        assert domain.caches[0].state_of(ADDR) == MESIState.INVALID
        assert domain.caches[1].state_of(ADDR) == MESIState.MODIFIED

    def test_exclusive_write_hit_silently_modifies(self):
        domain = make_domain()
        domain.access(0, ADDR, AccessType.READ)     # E
        outcome = domain.access(0, ADDR, AccessType.WRITE)
        assert outcome.bus_op is None               # silent E->M transition
        assert outcome.final_state == MESIState.MODIFIED


class TestInvariants:
    def test_invariant_checker_accepts_valid_states(self):
        CoherenceDomain.assert_line_coherent(
            ADDR, [MESIState.SHARED, MESIState.SHARED, MESIState.INVALID])

    def test_invariant_checker_rejects_two_owners(self):
        from repro.memory.mesi import CoherenceError
        with pytest.raises(CoherenceError):
            CoherenceDomain.assert_line_coherent(
                ADDR, [MESIState.MODIFIED, MESIState.EXCLUSIVE])

    def test_invariant_checker_rejects_owner_plus_sharer(self):
        from repro.memory.mesi import CoherenceError
        with pytest.raises(CoherenceError):
            CoherenceDomain.assert_line_coherent(
                ADDR, [MESIState.MODIFIED, MESIState.SHARED])

    def test_check_all_coherent_after_traffic(self):
        domain = make_domain(cpus=4)
        import random
        rng = random.Random(1)
        for _ in range(500):
            cpu = rng.randrange(4)
            addr = rng.randrange(64) * 64
            access = AccessType.WRITE if rng.random() < 0.3 else AccessType.READ
            domain.access(cpu, addr, access)
        domain.check_all_coherent()

    def test_unknown_cpu_rejected(self):
        domain = make_domain()
        with pytest.raises(IndexError):
            domain.access(5, ADDR, AccessType.READ)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            CoherenceDomain([])

    def test_stats_track_c2c(self):
        domain = make_domain()
        domain.access(0, ADDR, AccessType.WRITE)
        domain.access(1, ADDR, AccessType.READ)
        assert domain.stats["cache_to_cache"] == 1
