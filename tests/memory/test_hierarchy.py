"""Tests for the single-CPU memory hierarchy timing stack."""

import pytest

from repro.memory.cache import AccessType, CacheGeometry
from repro.memory.dram import DramConfig
from repro.memory.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    ServiceLevel,
)
from repro.memory.tlb import TlbConfig
from repro.sim.clock import Clock


def make_config(**overrides):
    defaults = dict(
        cpu_clock=Clock(180.0),
        bus_clock=Clock(60.0),
        l1=CacheGeometry(1024, 64, 2),
        l2=CacheGeometry(8192, 64, 2),
        dram=DramConfig(num_banks=4, interleave_bytes=64,
                        access_ns=60.0, bandwidth_mb_s=640.0),
        tlb=TlbConfig(entries=1024, page_bytes=4096, miss_cycles=50.0),
        l1_hit_cycles=1.0,
        l2_hit_cycles=6.0,
        bus_overhead_bus_cycles=4.0,
    )
    defaults.update(overrides)
    return HierarchyConfig(**defaults)


class TestConfig:
    def test_latency_conversions(self):
        config = make_config()
        assert config.l1_hit_ns == pytest.approx(1000.0 / 180.0)
        assert config.l2_hit_ns == pytest.approx(6000.0 / 180.0)
        assert config.bus_overhead_ns == pytest.approx(4000.0 / 60.0)
        assert config.tlb_miss_ns == pytest.approx(50000.0 / 180.0)

    def test_line_sizes_must_match(self):
        with pytest.raises(ValueError):
            make_config(l2=CacheGeometry(8192, 32, 2))

    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(ValueError):
            make_config(l1=CacheGeometry(16384, 64, 2))

    def test_scaled_shrinks_everything_proportionally(self):
        config = make_config().scaled(4)
        assert config.l1.size_bytes == 256
        assert config.l2.size_bytes == 2048
        assert config.tlb.page_bytes == 1024
        assert config.l1.line_bytes == 64


class TestServiceLevels:
    def test_first_touch_goes_to_memory(self):
        mem = MemoryHierarchy(make_config())
        outcome = mem.access(0.0, 0x1000)
        assert outcome.level == ServiceLevel.MEMORY
        # TLB miss + L1 + L2 + bus + DRAM access + line transfer.
        expected = (50.0 + 1.0 + 6.0) * (1000.0 / 180.0) + 4000.0 / 60.0 \
            + 60.0 + 64 * 1000.0 / 640.0
        assert outcome.latency_ns == pytest.approx(expected)

    def test_second_touch_hits_l1(self):
        mem = MemoryHierarchy(make_config())
        mem.access(0.0, 0x1000)
        outcome = mem.access(500.0, 0x1008)
        assert outcome.level == ServiceLevel.L1
        assert outcome.latency_ns == pytest.approx(1000.0 / 180.0)

    def test_l1_victim_found_in_l2(self):
        config = make_config()
        mem = MemoryHierarchy(config)
        # L1 is 1 KB 2-way with 64B lines -> 8 sets; 0x0 and 0x400 conflict.
        mem.access(0.0, 0x0)
        mem.access(0.0, 0x200)
        mem.access(0.0, 0x400)       # evicts 0x0 from L1, stays in L2
        outcome = mem.access(0.0, 0x0)
        assert outcome.level == ServiceLevel.L2

    def test_inclusion_backinvalidates_l1(self):
        config = make_config(l1=CacheGeometry(128, 64, 1),
                             l2=CacheGeometry(256, 64, 1))
        mem = MemoryHierarchy(config)
        mem.access(0.0, 0x0)
        # 0x100 maps to the same L2 set (256B direct-mapped -> 4 sets? no:
        # 4 lines).  Evicting 0x0 from L2 must also remove it from L1.
        mem.access(0.0, 0x100)
        assert not mem.l1.contains(0x0)

    def test_level_counts(self):
        mem = MemoryHierarchy(make_config())
        mem.access(0.0, 0x0)
        mem.access(0.0, 0x8)
        l1, l2, memory = mem.level_counts()
        assert (l1, l2, memory) == (1, 0, 1)

    def test_flush_forgets_everything(self):
        mem = MemoryHierarchy(make_config())
        mem.access(0.0, 0x0)
        mem.flush()
        assert mem.access(0.0, 0x0).level == ServiceLevel.MEMORY


class TestTlbCharging:
    def test_tlb_miss_charged_once_per_page(self):
        mem = MemoryHierarchy(make_config())
        mem.access(0.0, 0x1000)
        base = mem.access(0.0, 0x1008).latency_ns   # L1 hit, TLB hit
        far = mem.access(0.0, 0x1040)               # same page, L1 miss
        assert far.latency_ns < make_config().tlb_miss_ns + base + 1000
        assert mem.stats["tlb_misses"] == 1

    def test_strided_pages_thrash_tlb(self):
        config = make_config(tlb=TlbConfig(entries=4, page_bytes=4096,
                                           miss_cycles=50.0))
        mem = MemoryHierarchy(config)
        for i in range(16):
            mem.access(0.0, i * 4096)
        for i in range(16):
            mem.access(0.0, i * 4096)
        assert mem.stats["tlb_misses"] == 32   # every access a new page


class TestDramIntegration:
    def test_writeback_consumes_bank_time(self):
        config = make_config(l1=CacheGeometry(128, 64, 1),
                             l2=CacheGeometry(128, 64, 1))
        mem = MemoryHierarchy(config)
        mem.access(0.0, 0x0, AccessType.WRITE)
        mem.access(0.0, 0x1000, AccessType.READ)   # evicts dirty 0x0
        assert mem.stats["l2_writebacks"] == 1

    def test_shared_dram_contends(self):
        config = make_config()
        from repro.memory.dram import InterleavedDram
        shared = InterleavedDram(config.dram)
        a = MemoryHierarchy(config, name="a", shared_dram=shared)
        b = MemoryHierarchy(config, name="b", shared_dram=shared)
        first = a.access(0.0, 0x0)
        second = b.access(0.0, 0x0)    # same bank, must queue
        assert second.latency_ns > first.latency_ns
